"""Supplementary experiment: cost of the uninitialized-read extension.

The paper sketches uninit-read detection via ECC (end of Section 4)
but does not implement it.  We do -- and this benchmark shows why it
stays off by default: arming one watch per buffer *line* at every
allocation (each disarmed by the first write to that line) multiplies
the watch/unwatch syscall traffic, pushing the overhead well past the
production band, while leak + corruption detection stay cheap.
"""

from conftest import publish
from repro.analysis.runner import overhead_percent, run_workload
from repro.analysis.tables import render_table
from repro.core.config import SafeMemConfig
from repro.core.safemem import SafeMem

APP = "ypserv2"
REQUESTS = 150


def config_for(mode):
    if mode == "ml+mc":
        return SafeMemConfig().validate()
    if mode == "ml+mc+uninit":
        return SafeMemConfig(detect_uninit_reads=True).validate()
    raise ValueError(mode)


def test_uninit_mode_cost(benchmark):
    native = run_workload(APP, "native", requests=REQUESTS)
    rows = []
    overheads = {}
    for mode in ("ml+mc", "ml+mc+uninit"):
        run = run_workload(APP, f"safemem-{mode}", requests=REQUESTS,
                           monitor=SafeMem(config_for(mode)))
        assert run.truth.detection is None
        overhead = overhead_percent(run.cycles, native.cycles)
        overheads[mode] = overhead
        rows.append((mode, f"{overhead:.2f}%",
                     run.metrics["safemem.watch.arms"]))

    publish("extra_uninit_mode", render_table(
        f"Supplementary: uninitialized-read extension cost ({APP})",
        ["SafeMem mode", "overhead", "watch arms"],
        rows,
        note="per-line uninit watches multiply syscall traffic; the "
             "paper leaves this extension unimplemented",
    ))

    assert overheads["ml+mc+uninit"] > 1.5 * overheads["ml+mc"]

    # Functional check rides along: uninit reads are actually caught.
    from repro.common.errors import MonitorError
    from repro.machine.machine import Machine
    from repro.machine.program import Program

    machine = Machine(dram_size=8 * 1024 * 1024)
    safemem = SafeMem(config_for("ml+mc+uninit"))
    program = Program(machine, monitor=safemem,
                      heap_size=2 * 1024 * 1024)
    buffer = program.malloc(64)
    try:
        program.load(buffer, 8)
        raised = False
    except MonitorError as error:
        raised = "uninitialized_read" in str(error)
    assert raised

    benchmark(lambda: run_workload(
        APP, "safemem-uninit", requests=20,
        monitor=SafeMem(config_for("ml+mc+uninit")),
    ))
