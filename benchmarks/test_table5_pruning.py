"""Table 5: leak false positives before and after ECC pruning.

Paper numbers: ypserv1 7->0, proftpd 9->0, squid1 13->1, ypserv2 2->0;
and zero false positives for corruption detection.
"""

from conftest import publish
from repro.analysis import paper
from repro.analysis.experiments import experiment_table5
from repro.analysis.runner import run_workload


def test_table5_false_positive_pruning(benchmark):
    result = experiment_table5()
    publish("table5", result.render())

    rows = {row.workload: row for row in result.rows}
    for app, (ref_before, ref_after) in \
            paper.TABLE5_FALSE_POSITIVES.items():
        row = rows[app]
        # Pruning must eliminate (nearly) everything.
        assert row.after_pruning <= max(ref_after, 1)
        assert row.before_pruning >= row.after_pruning
        # The before-pruning counts land on the paper's values: they
        # are structural (the number of long-lived-but-used objects in
        # churning groups), not tuned constants.
        assert row.before_pruning == ref_before, (
            f"{app}: {row.before_pruning} false positives before "
            f"pruning, paper reports {ref_before}"
        )
        assert row.after_pruning == ref_after, (
            f"{app}: {row.after_pruning} false positives after "
            f"pruning, paper reports {ref_after}"
        )
        # The true bug is still found.
        assert row.true_leaks_reported > 0

    benchmark(lambda: run_workload("ypserv2", "safemem", buggy=True,
                                   requests=120))


def test_no_corruption_false_positives(benchmark):
    """Paper Section 6.4: guard hits are true corruption by definition;
    a clean run must produce zero corruption reports."""
    def clean_runs():
        reports = 0
        for app in ("gzip", "tar", "squid2"):
            result = run_workload(app, "safemem-mc", requests=60)
            reports += len(result.monitor.corruption_reports)
        return reports

    assert benchmark(clean_runs) == 0
