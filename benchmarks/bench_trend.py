"""Micro-benchmark for the streaming trend-analytics hot-path cost.

The :class:`TrendEngine` is a pure sample listener: it runs only when
the profiler captures a sample, never on loads or stores, so its whole
production cost is the per-sample Python time spent updating the
per-series detector state (Theil-Sen window, CUSUM sum, Page-Hinkley
statistics).  This benchmark measures simulator throughput (real
ops/sec) for the unwatched fast-path hot loop in two configurations:

- ``trend_off`` -- the full sampling stack (profiler + alert engine on
  the default rules) with no trend analytics: the PR-before baseline,
- ``trend_on``  -- the same stack plus a :class:`TrendEngine`
  observing every sample and the default trend rules evaluated by the
  alert engine.

The acceptance bar is that the trend-enabled hot path stays within 10%
of the trend-off numbers (``ratio >= 0.9``).  Writes
``BENCH_trend.json`` at the repo root.  Run directly
(``python benchmarks/bench_trend.py``) or through pytest (marked
``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine
from repro.obs.alerts import AlertEngine, default_rules, default_trend_rules
from repro.obs.sampler import SamplingProfiler
from repro.obs.trend import TrendEngine

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_trend.json"

#: operations per timed phase.
HOT_OPS = 40_000

#: sampling interval under test (small enough that the timed loop
#: takes many samples, so the trend engine really runs).
SAMPLE_EVERY = 50_000


def _make_machine():
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    return machine


def _attach_stack(machine, trend_on):
    sampler = SamplingProfiler(machine, interval_cycles=SAMPLE_EVERY)
    rules = default_rules()
    trend = None
    if trend_on:
        trend = TrendEngine(machine)
        for detector in ("theil-sen", "cusum", "page-hinkley"):
            rules.extend(default_trend_rules(detector))
    engine = AlertEngine(rules, events=machine.events,
                         metrics=machine.metrics, trend_source=trend)
    if trend is not None:
        sampler.add_listener(trend.observe)
    sampler.add_listener(engine.evaluate)
    sampler.start()
    return sampler, trend


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_hot_loads(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))

    def run():
        load = machine.load
        for i in range(HOT_OPS):
            load(addresses[i & 15], 8)
        return HOT_OPS

    return _time(run)


def _bench_hot_stores(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))
    payload = b"\xa5" * 8

    def run():
        store = machine.store
        for i in range(HOT_OPS):
            store(addresses[i & 15], payload)
        return HOT_OPS

    return _time(run)


def run_benchmark():
    off = _make_machine()
    off_sampler, _ = _attach_stack(off, trend_on=False)
    off_loads = _bench_hot_loads(off)
    off_stores = _bench_hot_stores(off)
    off_sampler.stop()

    on = _make_machine()
    on_sampler, trend = _attach_stack(on, trend_on=True)
    on_loads = _bench_hot_loads(on)
    on_stores = _bench_hot_stores(on)
    on_sampler.stop()

    report = {
        "benchmark": "trend",
        "hot_ops": HOT_OPS,
        "sample_every": SAMPLE_EVERY,
        "samples_taken": on_sampler.samples_taken,
        "trend_evaluations": trend.evaluations,
        "configs": {
            "trend_off": {
                "hot_loads_ops_per_sec": off_loads,
                "hot_stores_ops_per_sec": off_stores,
            },
            "trend_on": {
                "hot_loads_ops_per_sec": on_loads,
                "hot_stores_ops_per_sec": on_stores,
            },
        },
        "trend_ratio_loads": on_loads / off_loads,
        "trend_ratio_stores": on_stores / off_stores,
    }
    write_bench_json("trend", report)
    return report


def test_bench_trend():
    report = run_benchmark()
    # The run must actually have fed the trend engine -- a zero-sample
    # run would "pass" by measuring nothing.
    assert report["samples_taken"] > 0
    assert report["trend_evaluations"] == report["samples_taken"]
    assert report["trend_ratio_loads"] >= 0.9
    assert report["trend_ratio_stores"] >= 0.9


def main():
    report = run_benchmark()
    off = report["configs"]["trend_off"]
    on = report["configs"]["trend_on"]
    print(f"wrote {RESULT_PATH}")
    for phase in ("hot_loads", "hot_stores"):
        key = f"{phase}_ops_per_sec"
        print(
            f"{phase:>10}: trend off {off[key]:>10.0f} ops/s | "
            f"on {on[key]:>10.0f} ops/s"
        )
    print(
        f"trend-on ratio: loads "
        f"{report['trend_ratio_loads']:.3f}, stores "
        f"{report['trend_ratio_stores']:.3f} "
        f"({report['samples_taken']} samples, "
        f"{report['trend_evaluations']} trend evaluations)"
    )


if __name__ == "__main__":
    main()
