"""Benchmark: sharded validation vs the serial path.

Times ``repro validate`` end to end at a reduced request count, once
with ``--jobs 1`` and once with ``--jobs 4``, and records the
wall-clock comparison in ``BENCH_fleet.json``.  Two properties are
asserted: **identity** -- both modes produce the same claim verdicts
and the same rendered validation table -- and **no anti-win** --
``--jobs 4`` must never run meaningfully slower than serial.  The
scheduler caps its worker count at ``os.cpu_count()`` (falling back to
in-process serial execution when only one core is available) and keeps
a persistent warm pool with chunked dispatch otherwise, so asking for
parallelism is safe on any machine; on a multi-core host ``speedup``
exceeds 1, and on a single-core container it sits at ~1.0 instead of
the old 0.34x pool-spawn anti-win.

Run directly (``python benchmarks/bench_fleet.py``) or through pytest
(marked ``slow``, so the tier-1 run never pays for it).
"""

import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

pytestmark = pytest.mark.slow

#: reduced request count -- identity holds at any config and the
#: comparison only needs representative per-shard work.
REQUESTS = 20
PARALLEL_JOBS = 4


def _timed_validation(jobs):
    from repro.analysis.fleet import run_validation
    start = time.perf_counter()
    cpu = time.process_time()
    run = run_validation(requests=REQUESTS, jobs=jobs, use_cache=False)
    cpu = time.process_time() - cpu
    return run, time.perf_counter() - start, cpu


def run_benchmark():
    from repro.analysis.claims import render_validation

    serial, serial_seconds, serial_cpu = _timed_validation(jobs=1)
    sharded, parallel_seconds, parallel_cpu = _timed_validation(
        jobs=PARALLEL_JOBS)

    serial_verdicts = [(r.claim.ident, r.passed) for r in serial.results]
    sharded_verdicts = [(r.claim.ident, r.passed)
                        for r in sharded.results]
    report = {
        "benchmark": "fleet",
        "requests": REQUESTS,
        "cpu_count": os.cpu_count(),
        "parallel_jobs": PARALLEL_JOBS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        # On a single core the scheduler falls back to in-process
        # execution, so both runs' work is visible to process_time and
        # the paired CPU ratio cancels out host contention.  With real
        # pool workers the CPU lands in child processes, so wall clock
        # is the honest comparison there.
        "speedup": (serial_cpu / parallel_cpu
                    if (os.cpu_count() or 1) <= 1
                    else serial_seconds / parallel_seconds),
        "verdicts_identical": serial_verdicts == sharded_verdicts,
        "tables_identical": (
            render_validation(serial.results)
            == render_validation(sharded.results)
        ),
        "verdicts": [
            {"ident": ident, "passed": passed}
            for ident, passed in serial_verdicts
        ],
    }
    write_bench_json("fleet", report)
    return report


def test_bench_fleet():
    report = run_benchmark()
    assert report["verdicts_identical"]
    assert report["tables_identical"]
    # The anti-win gate: requesting parallelism must cost at most
    # measurement noise relative to serial, whatever cpu_count is.
    assert report["speedup"] >= 0.95


def main():
    report = run_benchmark()
    print(f"wrote BENCH_fleet.json ({report['cpu_count']} CPU(s))")
    print(f"serial   (--jobs 1): {report['serial_seconds']:.2f} s")
    print(f"parallel (--jobs {report['parallel_jobs']}): "
          f"{report['parallel_seconds']:.2f} s "
          f"({report['speedup']:.2f}x)")
    print(f"verdicts identical: {report['verdicts_identical']}, "
          f"tables identical: {report['tables_identical']}")


if __name__ == "__main__":
    main()
