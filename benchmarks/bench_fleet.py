"""Benchmark: sharded validation vs the serial path.

Times ``repro validate`` end to end at a reduced request count, once
with ``--jobs 1`` and once with ``--jobs 4``, and records the
wall-clock comparison in ``BENCH_fleet.json``.  The asserted property
is **identity** -- both modes must produce the same claim verdicts and
the same rendered validation table -- not speedup: on a single-CPU
container the pool's process spawn + pickle traffic makes the parallel
run *slower*, and that is a legitimate, machine-dependent result the
report captures honestly (``cpu_count`` is recorded next to the
timings; on a multi-core machine ``speedup`` exceeds 1).

Run directly (``python benchmarks/bench_fleet.py``) or through pytest
(marked ``slow``, so the tier-1 run never pays for it).
"""

import os
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

pytestmark = pytest.mark.slow

#: reduced request count -- identity holds at any config and the
#: comparison only needs representative per-shard work.
REQUESTS = 20
PARALLEL_JOBS = 4


def _timed_validation(jobs):
    from repro.analysis.fleet import run_validation
    start = time.perf_counter()
    run = run_validation(requests=REQUESTS, jobs=jobs, use_cache=False)
    return run, time.perf_counter() - start


def run_benchmark():
    from repro.analysis.claims import render_validation

    serial, serial_seconds = _timed_validation(jobs=1)
    sharded, parallel_seconds = _timed_validation(jobs=PARALLEL_JOBS)

    serial_verdicts = [(r.claim.ident, r.passed) for r in serial.results]
    sharded_verdicts = [(r.claim.ident, r.passed)
                        for r in sharded.results]
    report = {
        "benchmark": "fleet",
        "requests": REQUESTS,
        "cpu_count": os.cpu_count(),
        "parallel_jobs": PARALLEL_JOBS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "verdicts_identical": serial_verdicts == sharded_verdicts,
        "tables_identical": (
            render_validation(serial.results)
            == render_validation(sharded.results)
        ),
        "verdicts": [
            {"ident": ident, "passed": passed}
            for ident, passed in serial_verdicts
        ],
    }
    write_bench_json("fleet", report)
    return report


def test_bench_fleet():
    report = run_benchmark()
    assert report["verdicts_identical"]
    assert report["tables_identical"]


def main():
    report = run_benchmark()
    print(f"wrote BENCH_fleet.json ({report['cpu_count']} CPU(s))")
    print(f"serial   (--jobs 1): {report['serial_seconds']:.2f} s")
    print(f"parallel (--jobs {report['parallel_jobs']}): "
          f"{report['parallel_seconds']:.2f} s "
          f"({report['speedup']:.2f}x)")
    print(f"verdicts identical: {report['verdicts_identical']}, "
          f"tables identical: {report['tables_identical']}")


if __name__ == "__main__":
    main()
