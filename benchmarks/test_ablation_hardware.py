"""Ablation: where SafeMem's overhead comes from, via cost-model sweeps.

The paper's Section 2.2.3 wish list: a software-friendly ECC interface
(direct check-bit writes, precise interrupts) would remove most of the
WatchMemory cost, and iWatcher-style hardware watchpoints would remove
it entirely.  Sweeping the cost model quantifies how much of SafeMem's
ML+MC overhead is the watch/unwatch syscall machinery versus its own
bookkeeping.
"""

from dataclasses import replace

from conftest import publish
from repro.analysis.runner import overhead_percent, run_workload
from repro.analysis.tables import render_table
from repro.common.costs import default_cost_model
from repro.core.config import full_config
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.program import Program
from repro.workloads.registry import get_workload

APP = "tar"          # allocation-heavy: watch costs dominate
REQUESTS = 200


def run_with_costs(costs, monitor=None):
    machine = Machine(dram_size=64 * 1024 * 1024,
                      cache_size=2 * 1024 * 1024, cache_ways=16,
                      cost_model=costs)
    program = Program(machine, monitor=monitor,
                      heap_size=24 * 1024 * 1024)
    workload = get_workload(APP, requests=REQUESTS)
    workload.run(program, buggy=False)
    return machine.clock.cycles


def scenario_costs(name):
    costs = default_cost_model()
    if name == "paper-hw":
        return costs
    if name == "friendly-ecc":
        # Direct check-bit writes: no bus-locked disable/enable window,
        # no scramble pass; the trap and pin remain.
        return replace(costs, ecc_toggle=0, scramble_line=0,
                       restore_fixed=0, restore_line=0)
    if name == "iwatcher":
        # Hardware watchpoint registers: arming is a user-mode
        # instruction -- no trap, no pin, no flush.
        return replace(costs, ecc_toggle=0, scramble_line=0,
                       restore_fixed=0, restore_line=0,
                       syscall_trap=0, pin_page=0, flush_line=0)
    raise ValueError(name)


def test_ablation_hardware_interface(benchmark):
    rows = []
    overheads = {}
    for scenario in ("paper-hw", "friendly-ecc", "iwatcher"):
        costs = scenario_costs(scenario)
        native = run_with_costs(costs)
        monitored = run_with_costs(costs, SafeMem(full_config()))
        overhead = overhead_percent(monitored, native)
        overheads[scenario] = overhead
        rows.append((scenario, f"{overhead:.2f}%"))

    publish("ablation_hardware", render_table(
        f"Ablation: ECC interface vs SafeMem ML+MC overhead ({APP})",
        ["hardware interface", "SafeMem overhead"],
        rows,
        note="friendly-ecc = direct check-bit writes (paper Sec 2.2.3 "
             "wish); iwatcher = user-mode watchpoints (related work)",
    ))

    # Each interface improvement strictly reduces the overhead...
    assert overheads["paper-hw"] > overheads["friendly-ecc"] > \
        overheads["iwatcher"]
    # ... and with free watchpoints almost nothing is left: SafeMem's
    # own bookkeeping is cheap (the paper's core design point).
    assert overheads["iwatcher"] < 0.25 * overheads["paper-hw"]

    benchmark(lambda: run_with_costs(default_cost_model()))
