"""Table 4: guard-space waste, ECC-protection vs page-protection.

Paper shape: page-protection wastes 64x-74x more memory than
ECC-protection for the same guard functionality; the mechanism is the
granularity ratio PAGE_SIZE / CACHE_LINE_SIZE = 64, modulated by
per-buffer rounding.
"""

from conftest import publish
from repro.analysis.experiments import experiment_table4
from repro.analysis.runner import run_workload

REQUESTS = 200


def test_table4_guard_space_waste(benchmark):
    result = experiment_table4(requests=REQUESTS)
    publish("table4", result.render())

    for row in result.rows:
        # Page protection always wastes dramatically more.
        assert row.page_overhead_pct > row.ecc_overhead_pct
        # The reduction factor sits around the 64x granularity ratio
        # (paper band 64-74; small-object apps run somewhat above it
        # because page *rounding* also scales with the granularity).
        assert 55.0 < row.reduction_factor < 110.0, (
            f"{row.workload}: reduction {row.reduction_factor:.1f}x "
            "far from the granularity ratio"
        )

    # gzip allocates exact-page buffers: the pure-granularity case.
    gzip_row = next(r for r in result.rows if r.workload == "gzip")
    assert abs(gzip_row.reduction_factor - 64.0) < 2.0

    benchmark(lambda: run_workload("gzip", "pageprot", requests=10))
