"""Micro-benchmark for the forensic flight recorder's hot-path cost.

A :class:`ForensicRecorder` is armed for the whole production run, but
until something fires it is only an event-log subscription (PANIC, and
ALERT when ``--dump-on-alert``).  The acceptance bar from the issue is
that an armed-but-idle recorder keeps the unwatched hot path within
10% of a dumps-off machine (``ratio >= 0.9``).  Actual capture cost is
paid at most ``max_bundles`` times per run, so it is reported as a
latency (seconds per bundle, capture + JSON write) but not gated as
throughput.

Writes ``BENCH_forensics.json`` at the repo root.  Run directly
(``python benchmarks/bench_forensics.py``) or through pytest (marked
``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine
from repro.obs.forensics import ForensicRecorder, capture_bundle, \
    write_bundle

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_forensics.json"

#: operations per timed phase.
HOT_OPS = 40_000

#: bundle captures timed for the latency figure.
CAPTURE_REPS = 10


def _make_machine():
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    return machine


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_hot_loads(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))

    def run():
        load = machine.load
        for i in range(HOT_OPS):
            load(addresses[i & 15], 8)
        return HOT_OPS

    return _time(run)


def _bench_hot_stores(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))
    payload = b"\xa5" * 8

    def run():
        store = machine.store
        for i in range(HOT_OPS):
            store(addresses[i & 15], payload)
        return HOT_OPS

    return _time(run)


def _bench_capture_latency(machine, tmp_dir):
    start = time.perf_counter()
    for index in range(CAPTURE_REPS):
        bundle = capture_bundle(machine, reason="manual")
        write_bundle(bundle, tmp_dir / f"bench-{index}.dump.json")
    return (time.perf_counter() - start) / CAPTURE_REPS


def run_benchmark(tmp_dir):
    off = _make_machine()
    off_loads = _bench_hot_loads(off)
    off_stores = _bench_hot_stores(off)

    on = _make_machine()
    recorder = ForensicRecorder(on, dump_dir=tmp_dir, label="bench",
                                on_alert=True)
    on_loads = _bench_hot_loads(on)
    on_stores = _bench_hot_stores(on)
    recorder.detach()
    assert recorder.bundle_paths == []  # armed but idle, as intended

    capture_latency = _bench_capture_latency(on, tmp_dir)

    report = {
        "benchmark": "forensics",
        "hot_ops": HOT_OPS,
        "configs": {
            "dumps_off": {
                "hot_loads_ops_per_sec": off_loads,
                "hot_stores_ops_per_sec": off_stores,
            },
            "recorder_armed": {
                "hot_loads_ops_per_sec": on_loads,
                "hot_stores_ops_per_sec": on_stores,
            },
        },
        "armed_ratio_loads": on_loads / off_loads,
        "armed_ratio_stores": on_stores / off_stores,
        "capture_latency_seconds": capture_latency,
    }
    write_bench_json("forensics", report)
    return report


def test_bench_forensics(tmp_path):
    report = run_benchmark(tmp_path)
    assert report["armed_ratio_loads"] >= 0.9
    assert report["armed_ratio_stores"] >= 0.9
    # A capture is a heavyweight one-off, but still sub-second.
    assert report["capture_latency_seconds"] < 1.0


def main():
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        report = run_benchmark(pathlib.Path(tmp))
    off = report["configs"]["dumps_off"]
    on = report["configs"]["recorder_armed"]
    print(f"wrote {RESULT_PATH}")
    for phase in ("hot_loads", "hot_stores"):
        key = f"{phase}_ops_per_sec"
        print(
            f"{phase:>10}: dumps off {off[key]:>10.0f} ops/s | "
            f"armed {on[key]:>10.0f} ops/s"
        )
    print(
        f"armed ratio: loads {report['armed_ratio_loads']:.3f}, "
        f"stores {report['armed_ratio_stores']:.3f} | capture "
        f"{report['capture_latency_seconds'] * 1000:.1f} ms/bundle"
    )


if __name__ == "__main__":
    main()
