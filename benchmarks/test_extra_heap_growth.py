"""Supplementary experiment: continuous leaks grow the heap unboundedly.

Not a numbered table in the paper, but its central motivation
(Sections 1 and 3): "continuous memory leaks (non-stop leaking) can
cause programs to run out of virtual memory and eventually crash".
This benchmark profiles live heap bytes over time for each leak
application under normal and buggy inputs and checks the divergence.
"""

from conftest import publish
from repro.analysis.memory_profile import profile_heap
from repro.analysis.tables import render_table
from repro.workloads.registry import LEAK_WORKLOADS


def test_heap_growth_divergence(benchmark):
    rows = []
    outcomes = {}
    for app in LEAK_WORKLOADS:
        normal = profile_heap(app, requests=400)
        buggy = profile_heap(app, buggy=True, requests=400)
        outcomes[app] = (normal, buggy)
        rows.append((
            app,
            f"{normal.final_live_bytes:,}",
            f"{buggy.final_live_bytes:,}",
            f"{normal.second_half_growth():,}",
            f"{buggy.second_half_growth():,}",
        ))

    publish("extra_heap_growth", render_table(
        "Supplementary: live heap bytes, normal vs buggy input "
        "(400 requests)",
        ["App", "final (normal)", "final (buggy)",
         "2nd-half growth (normal)", "2nd-half growth (buggy)"],
        rows,
        note="continuous leaks keep climbing after warm-up; healthy "
             "runs plateau (the paper's motivation)",
    ))

    for app, (normal, buggy) in outcomes.items():
        # The buggy run ends with a strictly larger heap...
        assert buggy.final_live_bytes > normal.final_live_bytes, app
        # ... and keeps growing after warm-up while the normal run
        # plateaus (tolerate small steady-state wobble).
        assert buggy.second_half_growth() > 0, app
        assert normal.second_half_growth() <= \
            buggy.second_half_growth() / 4, app
        # Growth rate is positive for every buggy leak app.
        assert buggy.growth_rate_bytes_per_second() > 0, app

    benchmark(lambda: profile_heap("ypserv1", buggy=True, requests=50))
