"""Micro-benchmark for the live-monitoring stack's hot-path cost.

Sampling is observation-only -- it never advances the simulated clock
-- so its entire production cost is the real (Python) time spent in the
clock's timer check and the periodic sample capture.  This benchmark
measures simulator throughput (real ops/sec) for the unwatched
fast-path hot loop in two configurations:

- ``sampler_off`` -- a plain machine, no timers registered (the
  tier-1 default: sampling is off unless started),
- ``sampler_on``  -- the full production monitoring stack: a
  :class:`SamplingProfiler` sampling every ``SAMPLE_EVERY`` cycles
  plus an :class:`AlertEngine` running the default rule set on every
  sample.

The acceptance bar is that the sampler-enabled hot path stays within
10% of the fast-path numbers (``ratio >= 0.9``).  Writes
``BENCH_monitor.json`` at the repo root.  Run directly
(``python benchmarks/bench_monitor.py``) or through pytest (marked
``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.sampler import SamplingProfiler

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_monitor.json"

#: operations per timed phase.
HOT_OPS = 40_000

#: sampling interval under test (the `repro monitor` default order of
#: magnitude; small enough that the timed loop takes many samples).
SAMPLE_EVERY = 50_000


def _make_machine():
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    return machine


def _attach_monitoring(machine):
    sampler = SamplingProfiler(machine, interval_cycles=SAMPLE_EVERY)
    engine = AlertEngine(default_rules(), events=machine.events,
                         metrics=machine.metrics)
    sampler.add_listener(engine.evaluate)
    sampler.start()
    return sampler


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_hot_loads(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))

    def run():
        load = machine.load
        for i in range(HOT_OPS):
            load(addresses[i & 15], 8)
        return HOT_OPS

    return _time(run)


def _bench_hot_stores(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))
    payload = b"\xa5" * 8

    def run():
        store = machine.store
        for i in range(HOT_OPS):
            store(addresses[i & 15], payload)
        return HOT_OPS

    return _time(run)


def run_benchmark():
    off = _make_machine()
    off_loads = _bench_hot_loads(off)
    off_stores = _bench_hot_stores(off)

    on = _make_machine()
    sampler = _attach_monitoring(on)
    on_loads = _bench_hot_loads(on)
    on_stores = _bench_hot_stores(on)
    sampler.stop()

    report = {
        "benchmark": "monitor",
        "hot_ops": HOT_OPS,
        "sample_every": SAMPLE_EVERY,
        "samples_taken": sampler.samples_taken,
        "configs": {
            "sampler_off": {
                "hot_loads_ops_per_sec": off_loads,
                "hot_stores_ops_per_sec": off_stores,
            },
            "sampler_on": {
                "hot_loads_ops_per_sec": on_loads,
                "hot_stores_ops_per_sec": on_stores,
            },
        },
        "sampler_ratio_loads": on_loads / off_loads,
        "sampler_ratio_stores": on_stores / off_stores,
    }
    write_bench_json("monitor", report)
    return report


def test_bench_monitor():
    report = run_benchmark()
    # The run must actually have sampled -- a zero-sample run would
    # "pass" by measuring nothing.
    assert report["samples_taken"] > 0
    assert report["sampler_ratio_loads"] >= 0.9
    assert report["sampler_ratio_stores"] >= 0.9


def main():
    report = run_benchmark()
    off = report["configs"]["sampler_off"]
    on = report["configs"]["sampler_on"]
    print(f"wrote {RESULT_PATH}")
    for phase in ("hot_loads", "hot_stores"):
        key = f"{phase}_ops_per_sec"
        print(
            f"{phase:>10}: sampler off {off[key]:>10.0f} ops/s | "
            f"on {on[key]:>10.0f} ops/s"
        )
    print(
        f"sampler-on ratio: loads "
        f"{report['sampler_ratio_loads']:.3f}, stores "
        f"{report['sampler_ratio_stores']:.3f} "
        f"({report['samples_taken']} samples)"
    )


if __name__ == "__main__":
    main()
