"""Ablation: checking-period sensitivity.

The leak detector scans for outliers at most once per checking-period,
and only at malloc/free time (paper Section 3.2.2, "this step has a
very small overhead").  A shorter period finds leaks sooner but scans
more often; this ablation quantifies both sides on ypserv2.
"""

from conftest import publish
from repro.analysis.runner import overhead_percent, run_workload
from repro.analysis.tables import render_table
from repro.core.config import leak_only_config
from repro.core.safemem import SafeMem

APP = "ypserv2"
REQUESTS = 300
PERIODS_S = (0.001, 0.005, 0.02)


def run_with_period(period_s, buggy):
    config = leak_only_config(checking_period_s=period_s)
    return run_workload(APP, f"safemem-p{period_s}", buggy=buggy,
                        requests=REQUESTS, monitor=SafeMem(config))


def first_report_cycle(result):
    reports = result.monitor.leak_reports
    return min(r.reported_at_cycle for r in reports) if reports else None


def test_ablation_checking_period(benchmark):
    native = run_workload(APP, "native", requests=REQUESTS)

    rows = []
    overheads = {}
    latencies = {}
    for period in PERIODS_S:
        normal = run_with_period(period, buggy=False)
        buggy = run_with_period(period, buggy=True)
        overhead = overhead_percent(normal.cycles, native.cycles)
        latency = first_report_cycle(buggy)
        overheads[period] = overhead
        latencies[period] = latency
        rows.append((
            f"{period * 1000:.0f} ms",
            f"{overhead:.3f}%",
            f"{latency / 2.4e9:.4f}s" if latency else "no report",
        ))

    publish("ablation_period", render_table(
        "Ablation: checking-period vs overhead and detection latency",
        ["checking period", "ML overhead", "first leak reported at"],
        rows,
        note=f"{APP}, {REQUESTS} requests; scans run only at "
             "malloc/free time",
    ))

    # Overhead grows (weakly) as the period shrinks...
    assert overheads[PERIODS_S[0]] >= overheads[PERIODS_S[-1]]
    # ... every setting still finds the leak ...
    assert all(latency is not None for latency in latencies.values())
    # ... and a tighter period never reports later.
    assert latencies[PERIODS_S[0]] <= latencies[PERIODS_S[-1]]
    # Even the tightest period stays far below Purify territory.
    assert overheads[PERIODS_S[0]] < 5.0

    benchmark(lambda: run_with_period(0.005, buggy=False))
