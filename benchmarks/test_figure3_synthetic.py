"""Supplementary experiment: Figure 3 at a realistic group population.

The seven behavioural workload models have a handful of allocation
sites each; real servers have dozens to hundreds.  This benchmark
re-runs the lifetime-stability study on a synthetic server trace with
~33 object groups and checks the paper's claim at that scale: the vast
majority of groups stabilize early, and the detector's premise holds.
"""

from conftest import publish
from repro.analysis.tables import render_series
from repro.core.profiler import LifetimeProfiler
from repro.machine.machine import Machine
from repro.machine.program import Program
from repro.workloads.traces import SyntheticTraceGenerator, TraceReplayer


def run_synthetic_profile(events=15_000, seed=11):
    generator = SyntheticTraceGenerator(events=events, seed=seed)
    trace, _leaked = generator.generate()
    machine = Machine(dram_size=64 * 1024 * 1024)
    profiler = LifetimeProfiler()
    program = Program(machine, monitor=profiler,
                      heap_size=24 * 1024 * 1024)
    TraceReplayer(trace).run(program)
    return profiler, machine


def test_figure3_synthetic_population(benchmark):
    profiler, machine = run_synthetic_profile()
    warmups = profiler.warmup_times_seconds(min_frees=5)
    run_s = machine.clock.cpu_seconds

    points = [
        (warmup, (index + 1) / len(warmups) * 100.0)
        for index, warmup in enumerate(warmups)
    ]
    publish("figure3_synthetic", render_series(
        f"Figure 3 (synthetic server): {len(warmups)} groups, "
        f"run {run_s:.3f}s CPU",
        points,
        x_label="WarmUpTime (s)",
        y_label="% stable groups",
    ))

    assert len(warmups) >= 25  # a real population, not a toy
    # 90% of groups stabilize in the first quarter of the execution;
    # exponential lifetimes have heavy tails, so the last percentile
    # may wander (which is exactly why the detector also requires a
    # stable_time before trusting a group).
    stable_by_quarter = sum(1 for w in warmups if w < 0.25 * run_s)
    assert stable_by_quarter / len(warmups) >= 0.9

    benchmark(lambda: run_synthetic_profile(events=2000, seed=5))
