"""Ablation: the SLeak lifetime-threshold multiplier.

The paper flags an object once it lives longer than 2x its group's
stable maximal lifetime (Section 3.2.2).  A smaller multiplier flags
eagerly (more false positives for the pruner to absorb); a larger one
flags late (leaks confirmed later, possibly fewer reported within a
fixed run).  This ablation sweeps the multiplier on squid1, the app
with the richest false-positive structure.
"""

from conftest import publish
from repro.analysis.runner import run_workload
from repro.analysis.tables import render_table
from repro.core.config import full_config
from repro.core.safemem import SafeMem

APP = "squid1"
MULTIPLIERS = (1.2, 2.0, 6.0)


def run_with_multiplier(multiplier):
    config = full_config(sleak_lifetime_multiplier=multiplier)
    return run_workload(APP, f"safemem-x{multiplier}", buggy=True,
                        monitor=SafeMem(config))


def test_ablation_lifetime_multiplier(benchmark):
    rows = []
    fp_before = {}
    true_reported = {}
    for multiplier in MULTIPLIERS:
        result = run_with_multiplier(multiplier)
        leak = result.monitor.leak
        truth = result.truth
        flagged = {s.object_address for s in leak.suspect_records}
        reported = {r.object_address for r in leak.reports}
        fp_before[multiplier] = len(flagged - truth.leaked_addresses)
        true_reported[multiplier] = len(reported
                                        & truth.leaked_addresses)
        rows.append((
            f"{multiplier}x",
            fp_before[multiplier],
            len(reported - truth.leaked_addresses),
            true_reported[multiplier],
            len(leak.pruned),
        ))

    publish("ablation_threshold", render_table(
        "Ablation: SLeak lifetime multiplier (squid1, buggy input)",
        ["multiplier", "FP flagged", "FP reported", "true leaks",
         "pruned"],
        rows,
        note="paper uses 2x; eager flagging leans on ECC pruning, "
             "lazy flagging delays detection",
    ))

    # Eager flagging flags at least as many false positives...
    assert fp_before[1.2] >= fp_before[2.0] >= fp_before[6.0]
    # ... and the paper's 2x still catches the bug.
    assert true_reported[2.0] > 0

    benchmark(lambda: run_with_multiplier(2.0))
