"""Ablation: the object-grouping key.

The paper groups objects by (size, call-stack signature) and remarks
that "our grouping mechanism works well" (Section 3).  This ablation
shows why both components matter: two call sites that allocate the
same size but with very different lifetimes get merged under size-only
grouping, the long-lived site inflates the merged group's maximal
lifetime, and the short-lived site's leak escapes detection.
"""

from conftest import publish
from repro.analysis.tables import render_table
from repro.core.config import leak_only_config
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.program import Program

SHORT_SITE = 0xAAAA     # fast-churning group that leaks sometimes
LONG_SITE = 0xBBBB      # legitimately long-lived group, same size
SIZE = 64
ITERATIONS = 2500
WORK = 100_000


def run_grouping(grouping):
    machine = Machine(dram_size=64 * 1024 * 1024)
    safemem = SafeMem(leak_only_config(grouping=grouping))
    program = Program(machine, monitor=safemem,
                      heap_size=16 * 1024 * 1024)

    # Long-lived site: a rolling window of session objects that each
    # live for ~400 iterations -- legitimate, and freed eventually.
    long_window = []
    leaked = []
    for i in range(ITERATIONS):
        with program.frame(LONG_SITE):
            long_window.append(program.malloc(SIZE))
        if len(long_window) > 400:
            program.free(long_window.pop(0))

        # Short-lived site: freed within one iteration, except the 2%
        # that leak.
        with program.frame(SHORT_SITE):
            short = program.malloc(SIZE)
        program.store(short, b"req")
        if i % 50 == 49:
            leaked.append(short)
        else:
            program.free(short)
        program.compute(WORK)
    program.exit()

    reported = {r.object_address for r in safemem.leak_reports}
    return {
        "true_leaks": len(leaked),
        "true_reported": len(reported & set(leaked)),
        "false_reported": len(reported - set(leaked)),
        "groups": len(safemem.leak.groups),
    }


def test_ablation_grouping_key(benchmark):
    outcomes = {g: run_grouping(g) for g in
                ("size_callsig", "size", "callsig")}

    rows = [
        (grouping, o["groups"], o["true_leaks"], o["true_reported"],
         o["false_reported"])
        for grouping, o in outcomes.items()
    ]
    publish("ablation_grouping", render_table(
        "Ablation: grouping key (two same-size sites, different "
        "lifetimes)",
        ["grouping", "groups", "true leaks", "reported true",
         "reported false"],
        rows,
        note="size-only merges the sites; the long-lived site inflates "
             "the merged maximal lifetime and hides the leak",
    ))

    full = outcomes["size_callsig"]
    size_only = outcomes["size"]
    # The full key separates the sites and finds the leak.
    assert full["groups"] == 2
    assert full["true_reported"] > 0
    assert full["false_reported"] == 0
    # Size-only merges them and detects strictly less.
    assert size_only["groups"] == 1
    assert size_only["true_reported"] < full["true_reported"]
    # callsig-only still separates these two sites (sizes equal), so
    # it behaves like the full key *here* -- the converse failure
    # (same site, different sizes) is covered by unit tests.
    assert outcomes["callsig"]["groups"] == 2

    benchmark(lambda: run_grouping("size_callsig"))
