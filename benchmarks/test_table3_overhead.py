"""Table 3: overhead comparison between SafeMem and Purify.

Paper shape to reproduce:
- SafeMem detects all seven bugs;
- SafeMem ML+MC overhead stays in the production-run band (paper:
  1.6%-14.4%, gzip named at 3.0%);
- Purify slows every application down by integer factors (paper:
  4.8x-49.3x), orders of magnitude more than SafeMem;
- memory-corruption detection costs more than leak detection (it pays
  watch/unwatch syscalls on every allocation; leak detection only on
  rare suspects).
"""

from conftest import publish
from repro.analysis.experiments import experiment_table3
from repro.analysis.runner import run_workload

#: request count for the overhead runs; large enough that warm-up
#: effects and the leak detector's periodic scans are all exercised.
REQUESTS = 250


def test_table3_overhead_comparison(benchmark):
    result = experiment_table3(requests=REQUESTS)
    publish("table3", result.render())

    # Every bug is detected (paper: "SafeMem can detect all the tested
    # bugs").
    assert all(row.detected for row in result.rows)

    # SafeMem stays in the production-run band.
    for row in result.rows:
        assert 0.0 < row.full_overhead < 16.0, (
            f"{row.workload}: ML+MC overhead {row.full_overhead:.2f}% "
            "outside the production-run band"
        )

    # gzip is the paper's named low point (3.0%); ours must be close.
    gzip_row = next(r for r in result.rows if r.workload == "gzip")
    assert 2.0 < gzip_row.full_overhead < 5.0

    # Purify's floor is the instrumentation dilation (paper: 4.8x) and
    # every app is far above SafeMem.
    for row in result.rows:
        assert row.purify_slowdown > 4.5, row.workload
        purify_overhead_pct = (row.purify_slowdown - 1.0) * 100.0
        assert purify_overhead_pct > 20 * row.full_overhead, (
            f"{row.workload}: Purify should be >20x SafeMem's overhead"
        )

    # Corruption detection dominates leak detection (paper Section 6.2).
    for row in result.rows:
        assert row.mc_overhead > row.ml_overhead, row.workload

    # Copy-heavy squid is Purify's worst case among the seven.
    slowdowns = {row.workload: row.purify_slowdown for row in result.rows}
    assert max(slowdowns, key=slowdowns.get) in ("squid1", "squid2")

    # Timed kernel: one short monitored run of the cheapest app.
    benchmark(lambda: run_workload("gzip", "safemem", requests=10))
