"""Micro-benchmark for the tiered-history hot-path cost and the
checkpoint capture/resume latency.

The :class:`HistoryStore` is a pure sample listener, exactly like the
trend engine: it runs only when the profiler captures a sample, never
on loads or stores, so its whole production cost is the per-sample
Python time spent folding the sample into the retention tiers.  The
first half of this benchmark measures simulator throughput (real
ops/sec) for the unwatched fast-path hot loop in two configurations:

- ``history_off`` -- the full sampling stack (profiler + alert engine
  on the default rules) with no history store: the PR-before baseline,
- ``history_on``  -- the same stack plus a :class:`HistoryStore`
  observing every sample at the default tier layout.

The acceptance bar is that the history-enabled hot path stays within
10% of the history-off numbers (``ratio >= 0.9``).

The second half times the long-horizon maintenance operations as plain
latencies (``*_seconds`` keys, excluded from regression comparison):
one ``capture_checkpoint`` of a monitored run, and one verified
``resume_checkpoint`` (which replays the recorded prefix, so it scales
with the recorded horizon).  Writes ``BENCH_history.json`` at the repo
root.  Run directly (``python benchmarks/bench_history.py``) or
through pytest (marked ``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.analysis.runner import run_workload
from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.checkpoint import (
    capture_checkpoint,
    load_checkpoint,
    resume_checkpoint,
)
from repro.obs.history import HistoryStore
from repro.obs.sampler import SamplingProfiler
from repro.obs.stack import MonitorStackConfig, build_monitor_stack

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_history.json"

#: operations per timed phase.
HOT_OPS = 40_000

#: sampling interval under test (small enough that the timed loop
#: takes many samples, so the history store really runs).
SAMPLE_EVERY = 50_000

#: requests in the checkpointed run the latency half times.
CHECKPOINT_REQUESTS = 30


def _make_machine():
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    return machine


def _attach_stack(machine, history_on):
    sampler = SamplingProfiler(machine, interval_cycles=SAMPLE_EVERY)
    engine = AlertEngine(default_rules(), events=machine.events,
                         metrics=machine.metrics)
    history = None
    sampler.add_listener(engine.evaluate)
    if history_on:
        history = HistoryStore()
        sampler.add_listener(history.observe)
    sampler.start()
    return sampler, history


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_hot_loads(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))

    def run():
        load = machine.load
        for i in range(HOT_OPS):
            load(addresses[i & 15], 8)
        return HOT_OPS

    return _time(run)


def _bench_hot_stores(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))
    payload = b"\xa5" * 8

    def run():
        store = machine.store
        for i in range(HOT_OPS):
            store(addresses[i & 15], payload)
        return HOT_OPS

    return _time(run)


def _bench_checkpoint_latency():
    """Time one capture and one verified resume of a monitored run."""
    with tempfile.TemporaryDirectory() as tmp:
        config = MonitorStackConfig(
            sample_every=SAMPLE_EVERY, trend="theil-sen", history=True,
            checkpoint_every=5_000_000, checkpoint_dir=tmp)
        run_info = {"workload": "ypserv1", "monitor": "safemem",
                    "buggy": True, "requests": CHECKPOINT_REQUESTS,
                    "seed": 0}
        stack = build_monitor_stack(config, run_info=run_info)
        stack.start()
        try:
            run_workload("ypserv1", "safemem", buggy=True,
                         requests=CHECKPOINT_REQUESTS,
                         machine=stack.machine, monitor=stack.monitor,
                         request_hook=stack.request_hook)
            start = time.perf_counter()
            capture_checkpoint(
                stack.machine, monitor=stack.monitor, run_info=run_info,
                request_index=CHECKPOINT_REQUESTS,
                sampler=stack.sampler, engine=stack.engine,
                trend=stack.trend, history=stack.history)
            capture_seconds = time.perf_counter() - start
            written = sorted(pathlib.Path(tmp).glob("*.ckpt.json"))
        finally:
            stack.stop()
            stack.close()
        checkpoint = load_checkpoint(written[-1])
        start = time.perf_counter()
        resumed = resume_checkpoint(checkpoint, verify=True)
        resume_seconds = time.perf_counter() - start
        assert resumed.verified
        return capture_seconds, resume_seconds, len(written)


def run_benchmark():
    off = _make_machine()
    off_sampler, _ = _attach_stack(off, history_on=False)
    off_loads = _bench_hot_loads(off)
    off_stores = _bench_hot_stores(off)
    off_sampler.stop()

    on = _make_machine()
    on_sampler, history = _attach_stack(on, history_on=True)
    on_loads = _bench_hot_loads(on)
    on_stores = _bench_hot_stores(on)
    on_sampler.stop()

    capture_seconds, resume_seconds, checkpoints = \
        _bench_checkpoint_latency()

    report = {
        "benchmark": "history",
        "hot_ops": HOT_OPS,
        "sample_every": SAMPLE_EVERY,
        "samples_taken": on_sampler.samples_taken,
        "history_observations": history.observations,
        "configs": {
            "history_off": {
                "hot_loads_ops_per_sec": off_loads,
                "hot_stores_ops_per_sec": off_stores,
            },
            "history_on": {
                "hot_loads_ops_per_sec": on_loads,
                "hot_stores_ops_per_sec": on_stores,
            },
        },
        "history_ratio_loads": on_loads / off_loads,
        "history_ratio_stores": on_stores / off_stores,
        "checkpoint_requests": CHECKPOINT_REQUESTS,
        "checkpoints_written": checkpoints,
        "checkpoint_capture_seconds": capture_seconds,
        "checkpoint_resume_seconds": resume_seconds,
    }
    write_bench_json("history", report)
    return report


def test_bench_history():
    report = run_benchmark()
    # The run must actually have fed the history store -- a zero-sample
    # run would "pass" by measuring nothing.
    assert report["samples_taken"] > 0
    assert report["history_observations"] == report["samples_taken"]
    assert report["history_ratio_loads"] >= 0.9
    assert report["history_ratio_stores"] >= 0.9
    assert report["checkpoints_written"] > 0


def main():
    report = run_benchmark()
    off = report["configs"]["history_off"]
    on = report["configs"]["history_on"]
    print(f"wrote {RESULT_PATH}")
    for phase in ("hot_loads", "hot_stores"):
        key = f"{phase}_ops_per_sec"
        print(
            f"{phase:>10}: history off {off[key]:>10.0f} ops/s | "
            f"on {on[key]:>10.0f} ops/s"
        )
    print(
        f"history-on ratio: loads "
        f"{report['history_ratio_loads']:.3f}, stores "
        f"{report['history_ratio_stores']:.3f} "
        f"({report['samples_taken']} samples)"
    )
    print(
        f"checkpoint: capture "
        f"{report['checkpoint_capture_seconds'] * 1000:.1f} ms, "
        f"verified resume "
        f"{report['checkpoint_resume_seconds'] * 1000:.1f} ms "
        f"({report['checkpoints_written']} written over "
        f"{report['checkpoint_requests']} requests)"
    )


if __name__ == "__main__":
    main()
