"""Benchmark for the sampled always-on production mode.

The point of allocation sampling is that an unsampled allocation must
cost what a native run pays: the sampler's decision is a host-side
integer countdown and never touches the watch machinery, so at a
production rate of 1/1000 the whole SafeMem stack should be nearly
free.  This benchmark prices that claim on a full workload run in both
currencies:

- **simulated cycles** (deterministic): sampled SafeMem at rate 1/1000
  must stay within 5% of the monitor-off (native) run, while classic
  always-on SafeMem pays its usual Table 3 overhead;
- **wall clock** (informational): real requests/sec per configuration,
  compared against the committed baseline by ``tools/bench_check.py``.

Writes ``BENCH_sampling.json`` at the repo root.  Run directly
(``python benchmarks/bench_sampling.py``) or through pytest (marked
``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.analysis.runner import make_monitor, run_workload
from repro.core.sampling import SamplingPolicy

pytestmark = pytest.mark.slow

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_sampling.json"

WORKLOAD = "gzip"

#: the production sampling rate under test (GWP-ASan territory).
PRODUCTION_RATE = 1.0 / 1000.0

#: acceptance bar: sampled-mode cycle overhead over monitor-off.
MAX_SAMPLED_OVERHEAD_PCT = 5.0


def _run(monitor_name, sampling=None):
    monitor = (make_monitor(monitor_name, sampling=sampling)
               if sampling is not None else None)
    start = time.perf_counter()
    result = run_workload(WORKLOAD, monitor_name, monitor=monitor)
    elapsed = time.perf_counter() - start
    return result, result.requests / elapsed


def run_benchmark():
    native, native_rps = _run("native")
    sampled, sampled_rps = _run(
        "safemem", sampling=SamplingPolicy(rate=PRODUCTION_RATE))
    full, full_rps = _run("safemem")

    def overhead_pct(result):
        return (result.cycles / native.cycles - 1.0) * 100.0

    report = {
        "benchmark": "sampling",
        "workload": WORKLOAD,
        "requests": native.requests,
        "production_rate": PRODUCTION_RATE,
        "cycles": {
            "native": native.cycles,
            "sampled": sampled.cycles,
            "always_on": full.cycles,
        },
        "overhead_pct": {
            "sampled": overhead_pct(sampled),
            "always_on": overhead_pct(full),
        },
        "sampling_counters": {
            "sampled": sampled.metrics.get("safemem.sampling.sampled"),
            "skipped": sampled.metrics.get("safemem.sampling.skipped"),
        },
        # Deterministic cycle efficiency (higher is better; 1.0 means
        # sampling is free): native cycles over sampled cycles.
        "sampled_cycle_efficiency_ratio": native.cycles / sampled.cycles,
        "configs": {
            "native": {"requests_ops_per_sec": native_rps},
            "sampled": {"requests_ops_per_sec": sampled_rps},
            "always_on": {"requests_ops_per_sec": full_rps},
        },
    }
    write_bench_json("sampling", report)
    return report


def test_bench_sampling():
    report = run_benchmark()
    counters = report["sampling_counters"]
    # The run must actually have skipped the bulk of its allocations --
    # an always-on short-circuit would "pass" by not sampling at all.
    assert counters["skipped"] > 0
    assert counters["skipped"] > 100 * max(counters["sampled"], 1)
    # The production gate: rate 1/1000 rides the native fast path.
    assert report["overhead_pct"]["sampled"] < MAX_SAMPLED_OVERHEAD_PCT
    # Sanity: classic always-on SafeMem still pays real overhead, so
    # the gate above is measuring a difference that exists.
    assert report["overhead_pct"]["always_on"] > \
        report["overhead_pct"]["sampled"]


def main():
    report = run_benchmark()
    print(f"wrote {RESULT_PATH}")
    for config, numbers in report["configs"].items():
        rps = numbers["requests_ops_per_sec"]
        print(f"{config:>10}: {rps:>8.1f} requests/s")
    print(
        f"cycle overhead vs native: sampled "
        f"{report['overhead_pct']['sampled']:.3f}% "
        f"(rate {report['production_rate']:g}, "
        f"{report['sampling_counters']['sampled']} sampled / "
        f"{report['sampling_counters']['skipped']} skipped), "
        f"always-on {report['overhead_pct']['always_on']:.3f}%"
    )


if __name__ == "__main__":
    main()
