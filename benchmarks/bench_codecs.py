"""Micro-benchmark for the pluggable ECC codec backends.

Measures real encode/decode throughput (simulator ops/sec) for every
registered codec, plus the batched whole-line machine path under each
chipset profile -- the numbers behind the README's codec table and the
"which profile can afford which codec" guidance in docs/HARDWARE.md.

Per codec:

- ``encode_ops_per_sec``       -- single-word check-bit generation,
- ``encode_words_ops_per_sec`` -- the batched line path (groups/sec),
- ``decode_clean_ops_per_sec`` -- decode of an error-free group,
- ``decode_correct_ops_per_sec`` -- decode + correction of a
  single-bit error (the scrubber's hot path).

Per profile, ``line_loads_ops_per_sec`` measures whole-line machine
loads (``run_ops``-style traffic) with the profile's codec installed.

Writes ``BENCH_codecs.json`` at the repo root and prints a summary.
Run directly (``python benchmarks/bench_codecs.py``) or through pytest
(marked ``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import random
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.ecc.codec import codec_names, get_codec
from repro.ecc.profile import get_profile, profile_names
from repro.machine.machine import Machine

pytestmark = pytest.mark.slow

BASE = 0x4000_0000

#: operations per timed phase.
CODEC_OPS = 20_000
LINE_OPS = 4_000


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_codec(name):
    codec = get_codec(name)
    rng = random.Random(f"bench:{name}")
    words = [rng.getrandbits(64) for _ in range(256)]
    checks = [codec.encode(word) for word in words]
    line = rng.randbytes(CACHE_LINE_SIZE)

    def run_encode():
        encode = codec.encode
        for i in range(CODEC_OPS):
            encode(words[i & 255])
        return CODEC_OPS

    def run_encode_words():
        encode_words = codec.encode_words
        groups = CACHE_LINE_SIZE // 8
        for _ in range(CODEC_OPS // groups):
            encode_words(line)
        return CODEC_OPS // groups * groups

    def run_decode_clean():
        decode = codec.decode
        for i in range(CODEC_OPS):
            decode(words[i & 255], checks[i & 255])
        return CODEC_OPS

    def run_decode_correct():
        decode = codec.decode
        for i in range(CODEC_OPS):
            decode(words[i & 255] ^ (1 << (i % 64)), checks[i & 255])
        return CODEC_OPS

    return {
        "check_bits": codec.check_bits,
        "overhead_percent": codec.overhead_percent,
        "double_bit_guarantee": codec.double_bit_guarantee,
        "encode_ops_per_sec": _time(run_encode),
        "encode_words_ops_per_sec": _time(run_encode_words),
        "decode_clean_ops_per_sec": _time(run_decode_clean),
        "decode_correct_ops_per_sec": _time(run_decode_correct),
    }


def _bench_profile(name):
    profile = get_profile(name)
    machine = Machine(dram_size=8 * 1024 * 1024, profile=name)
    machine.kernel.mmap(BASE, 16 * PAGE_SIZE)
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(64)]
    for address in addresses:
        machine.store(address, bytes(CACHE_LINE_SIZE))

    def run():
        load = machine.load
        for i in range(LINE_OPS):
            load(addresses[i & 63], CACHE_LINE_SIZE)
        return LINE_OPS

    return {
        "codec": profile.codec,
        "line_loads_ops_per_sec": _time(run),
    }


def build_report():
    return {
        "benchmark": "codecs",
        "codec_ops": CODEC_OPS,
        "line_ops": LINE_OPS,
        "codecs": {name: _bench_codec(name) for name in codec_names()},
        "profiles": {name: _bench_profile(name)
                     for name in profile_names()},
    }


def test_bench_codecs():
    report = build_report()
    # Throughput shape, not absolute speed: every backend must sustain
    # real work on both the scalar and the batched path.
    for name, stats in report["codecs"].items():
        assert stats["encode_ops_per_sec"] > 0, name
        assert stats["decode_clean_ops_per_sec"] > 0, name
    path = write_bench_json("codecs", report)
    print(f"\nwrote {path}")
    for name, stats in sorted(report["codecs"].items()):
        print(f"  {name:10s} encode {stats['encode_ops_per_sec']:>12,.0f}"
              f"/s  decode {stats['decode_clean_ops_per_sec']:>12,.0f}/s"
              f"  correct {stats['decode_correct_ops_per_sec']:>12,.0f}/s")
    for name, stats in sorted(report["profiles"].items()):
        print(f"  {name:16s} line loads "
              f"{stats['line_loads_ops_per_sec']:>12,.0f}/s")


if __name__ == "__main__":
    test_bench_codecs()
