"""Micro-benchmark for the fast-path memory system.

Measures simulator throughput (real ops/sec, not simulated cycles) for
load/store traffic in three configurations:

- ``fastpath``          -- normal machine, zero armed lines: the
  short-circuit path + TLB + batched codec all active,
- ``fastpath_disabled`` -- same machine with the short-circuit path
  forced off: every access takes the full fault-retry walk,
- ``armed_line``        -- one unrelated line is ECC-watched, which is
  what disables the fast path in production (the paper's armed state).

Writes ``BENCH_memfast.json`` at the repo root and prints a summary.
Run directly (``python benchmarks/bench_memfast.py``) or through pytest
(marked ``slow``, so the tier-1 run never pays for it).
"""

import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine
from repro.obs.export import snapshot_document

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_memfast.json"

#: operations per timed phase.
HOT_OPS = 40_000
MISS_OPS = 4_000


def _make_machine(armed=False, disable_fast_path=False):
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    if armed:
        # Watch one line far from the benchmark's working set; arming
        # any line is what flips the machine off the short-circuit path.
        victim = BASE + 63 * PAGE_SIZE
        machine.store(victim, bytes(CACHE_LINE_SIZE))
        machine.kernel.register_ecc_fault_handler(lambda info: False)
        machine.kernel.watch_memory(victim, CACHE_LINE_SIZE)
    if disable_fast_path:
        machine._fast_path_enabled = False
    return machine


def _time(fn):
    start = time.perf_counter()
    ops = fn()
    return ops / (time.perf_counter() - start)


def _bench_hot_loads(machine):
    # 16 hot lines in one page: after warmup every access is a TLB hit
    # plus a cache hit -- the pure common-path cost.
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))

    def run():
        load = machine.load
        for i in range(HOT_OPS):
            load(addresses[i & 15], 8)
        return HOT_OPS

    return _time(run)


def _bench_hot_stores(machine):
    addresses = [BASE + i * CACHE_LINE_SIZE for i in range(16)]
    for address in addresses:
        machine.store(address, bytes(8))
    payload = b"\xa5" * 8

    def run():
        store = machine.store
        for i in range(HOT_OPS):
            store(addresses[i & 15], payload)
        return HOT_OPS

    return _time(run)


def _bench_miss_loads(machine):
    # Working set far larger than the 256 KiB cache: every access is a
    # line fill (plus eventual dirty write-backs), so throughput is
    # dominated by the ECC codec -- the batched-codec showcase.
    span = 48 * PAGE_SIZE
    stride = 17 * CACHE_LINE_SIZE

    def run():
        load = machine.load
        cursor = 0
        for _ in range(MISS_OPS):
            load(BASE + cursor, 8)
            cursor = (cursor + stride) % span
        return MISS_OPS

    return _time(run)


def _bench_config(name, **kwargs):
    results = {}
    machine = _make_machine(**kwargs)
    start = machine.metrics.snapshot()
    results["hot_loads_ops_per_sec"] = _bench_hot_loads(machine)
    results["hot_stores_ops_per_sec"] = _bench_hot_stores(machine)
    results["miss_loads_ops_per_sec"] = _bench_miss_loads(machine)
    # The timed phases' counters, as a repro.metrics/v1 document
    # (snapshot delta, so setup traffic from _make_machine and the
    # warmup stores is excluded).
    results["metrics"] = snapshot_document(
        machine.metrics.snapshot() - start,
        meta={"benchmark": "memfast", "config": name},
    )
    return results


def run_benchmark():
    configs = {
        "fastpath": _bench_config("fastpath"),
        "fastpath_disabled": _bench_config("fastpath_disabled",
                                           disable_fast_path=True),
        "armed_line": _bench_config("armed_line", armed=True),
    }
    fast = configs["fastpath"]
    slow = configs["fastpath_disabled"]
    report = {
        "benchmark": "memfast",
        "hot_ops": HOT_OPS,
        "miss_ops": MISS_OPS,
        "configs": configs,
        "speedup_unwatched_loads": (
            fast["hot_loads_ops_per_sec"] / slow["hot_loads_ops_per_sec"]
        ),
        "speedup_unwatched_stores": (
            fast["hot_stores_ops_per_sec"] / slow["hot_stores_ops_per_sec"]
        ),
    }
    write_bench_json("memfast", report)
    return report


def test_bench_memfast():
    report = run_benchmark()
    assert report["speedup_unwatched_loads"] >= 2.0
    assert report["speedup_unwatched_stores"] >= 2.0


def main():
    report = run_benchmark()
    fast = report["configs"]["fastpath"]
    slow = report["configs"]["fastpath_disabled"]
    armed = report["configs"]["armed_line"]
    print(f"wrote {RESULT_PATH}")
    for phase in ("hot_loads", "hot_stores", "miss_loads"):
        key = f"{phase}_ops_per_sec"
        print(
            f"{phase:>11}: fastpath {fast[key]:>10.0f} ops/s | "
            f"disabled {slow[key]:>10.0f} ops/s | "
            f"armed {armed[key]:>10.0f} ops/s"
        )
    print(
        f"unwatched speedup: loads "
        f"{report['speedup_unwatched_loads']:.2f}x, stores "
        f"{report['speedup_unwatched_stores']:.2f}x"
    )


if __name__ == "__main__":
    main()
