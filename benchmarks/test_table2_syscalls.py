"""Table 2: cost of the ECC monitoring system calls.

Paper: WatchMemory 2.0 us, DisableWatchMemory 1.5 us, mprotect 1.02 us;
the ECC calls are slightly more expensive than mprotect because they
pin/unpin the page.
"""

import pytest

from conftest import publish
from repro.analysis.experiments import experiment_table2


def test_table2_syscall_microbenchmark(benchmark):
    result = benchmark(experiment_table2)
    publish("table2", result.render())

    measured = {name: value for name, value, _paper in result.rows}
    reference = {name: value for name, _measured, value in result.rows}

    for call in ("WatchMemory", "DisableWatchMemory", "mprotect"):
        assert measured[call] == pytest.approx(reference[call], rel=0.10)

    # The paper's ordering: mprotect < DisableWatchMemory < WatchMemory.
    assert measured["mprotect"] < measured["DisableWatchMemory"]
    assert measured["DisableWatchMemory"] < measured["WatchMemory"]
