"""Figure 3: stability of maximal lifetime for the three leak servers.

Paper claim: "for all three programs, all memory object groups reach
their stable maximal lifetime quickly in the very beginning of the
program execution" -- the observation that makes lifetime-based SLeak
detection viable.
"""

from conftest import publish
from repro.analysis.experiments import experiment_figure3
from repro.analysis.runner import run_workload


def test_figure3_lifetime_stability(benchmark):
    result = experiment_figure3()
    publish("figure3", result.render())

    for series in result.series:
        run_s = result.run_seconds[series.workload]
        # Every measured group stabilizes...
        assert series.final_percent == 100.0, series.workload
        # ... and does so in the very beginning of the execution
        # (within the first 10% of the run).
        assert series.last_warmup_seconds < 0.10 * run_s, (
            f"{series.workload}: groups stabilized at "
            f"{series.last_warmup_seconds:.4f}s of a {run_s:.3f}s run"
        )
        # Enough groups for the claim to be non-trivial.
        assert series.total_groups >= 2

    benchmark(lambda: run_workload("ypserv1", "profiler", requests=60))
