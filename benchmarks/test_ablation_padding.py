"""Ablation: guard padding width.

The paper uses one cache line of padding per side and notes it "could
easily use longer paddings, but our experiments ... show that the
current setting is good enough" (Section 4).  This ablation quantifies
the trade: wider pads catch overflows that jump further, at a linear
space cost -- and one line already catches the contiguous overflows
that dominate real bugs.
"""

import pytest

from conftest import publish
from repro.analysis.runner import run_workload
from repro.analysis.tables import render_table
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import MonitorError
from repro.core.config import corruption_only_config
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.program import Program


def overflow_reach(pad_lines):
    """How far past the buffer a write can land and still be caught."""
    machine = Machine(dram_size=16 * 1024 * 1024)
    safemem = SafeMem(corruption_only_config(pad_lines=pad_lines))
    program = Program(machine, monitor=safemem,
                      heap_size=4 * 1024 * 1024)
    buffer = program.malloc(CACHE_LINE_SIZE)
    caught = 0
    # Probe successive lines past the end until a write goes unseen.
    for distance in range(1, pad_lines + 3):
        target = buffer + distance * CACHE_LINE_SIZE
        try:
            program.store(target, b"!")
            break
        except MonitorError:
            caught = distance
            # Re-arm by rebuilding (the guard fired and stopped us).
            machine = Machine(dram_size=16 * 1024 * 1024)
            safemem = SafeMem(corruption_only_config(
                pad_lines=pad_lines))
            program = Program(machine, monitor=safemem,
                              heap_size=4 * 1024 * 1024)
            buffer = program.malloc(CACHE_LINE_SIZE)
    return caught


def space_overhead(pad_lines, requests=120):
    run = run_workload(
        "ypserv2", f"safemem-pad{pad_lines}", requests=requests,
        monitor=SafeMem(corruption_only_config(pad_lines=pad_lines)),
    )
    return run.monitor.space_overhead_fraction() * 100


def test_ablation_padding_width(benchmark):
    rows = []
    reaches = {}
    spaces = {}
    for pad_lines in (1, 2, 4):
        reach = overflow_reach(pad_lines)
        space = space_overhead(pad_lines)
        reaches[pad_lines] = reach
        spaces[pad_lines] = space
        rows.append((
            pad_lines,
            f"{reach} line(s) ({reach * CACHE_LINE_SIZE} B)",
            f"{space:.1f}%",
        ))

    publish("ablation_padding", render_table(
        "Ablation: guard-pad width (ypserv2 space, synthetic reach)",
        ["pad lines/side", "overflow reach caught", "space overhead"],
        rows,
        note="paper uses 1 line per side and reports it sufficient "
             "for the tested bugs",
    ))

    for pad_lines in (1, 2, 4):
        # The guard catches exactly as far as it extends.
        assert reaches[pad_lines] == pad_lines
    # Space cost grows monotonically with the pad width.
    assert spaces[1] < spaces[2] < spaces[4]
    # One line already catches a contiguous (distance-1) overflow.
    assert reaches[1] >= 1

    benchmark(lambda: overflow_reach(1))
