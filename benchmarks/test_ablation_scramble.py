"""Ablation: why the scramble flips exactly these three bits.

The paper's design note (Section 2.2.2): the scrambled data must
trigger a *multi-bit* fault, because single-bit mismatches are silently
corrected.  With a real SEC-DED code there is a third hazard the paper
does not spell out: an unlucky 3-bit pattern whose codeword positions
XOR to a *valid* position gets **mis-corrected** -- no fault, and the
line silently changes value.  This ablation demonstrates all three
regimes on the live controller.
"""

from conftest import publish
from repro.analysis.tables import render_table
from repro.common.constants import CACHE_LINE_SIZE, SCRAMBLE_BIT_POSITIONS
from repro.ecc.codec import DATA_POSITIONS, MAX_POSITION, POSITION_TO_DATA
from repro.ecc.controller import MemoryController
from repro.ecc.dram import PhysicalMemory
from repro.ecc.faults import UncorrectableEccError

PAYLOAD = bytes(range(CACHE_LINE_SIZE))


def scrambled_outcome(bit_positions):
    """Arm a line with the given flip pattern; classify the next read."""
    controller = MemoryController(PhysicalMemory(4096))
    controller.write_line(0, PAYLOAD)
    mask = 0
    for bit in bit_positions:
        mask |= 1 << bit
    word = int.from_bytes(PAYLOAD[:8], "little") ^ mask
    scrambled = word.to_bytes(8, "little") + PAYLOAD[8:]
    controller.lock_bus()
    controller.disable_ecc()
    controller.write_line(0, scrambled)
    controller.enable_ecc()
    controller.unlock_bus()
    try:
        data = controller.read_line(0)
    except UncorrectableEccError:
        return "FAULT (watchpoint fires)"
    if data == PAYLOAD:
        return "silently corrected (watchpoint never fires)"
    return "MIS-CORRECTED (silent data corruption!)"


def find_miscorrecting_triple():
    """A 3-bit pattern whose position-XOR is a valid data position."""
    for a in range(8):
        for b in range(a + 1, 16):
            syndrome = DATA_POSITIONS[a] ^ DATA_POSITIONS[b]
            target = POSITION_TO_DATA.get(syndrome)
            if target is not None and target not in (a, b):
                return (a, b, target)
    raise AssertionError("no miscorrecting triple found")


def test_ablation_scramble_width(benchmark):
    one_bit = scrambled_outcome((0,))
    two_bit = scrambled_outcome((0, 8))
    paper_three = scrambled_outcome(SCRAMBLE_BIT_POSITIONS)
    bad_triple = find_miscorrecting_triple()
    unlucky_three = scrambled_outcome(bad_triple)

    rows = [
        ("1 bit", "(0,)", one_bit),
        ("2 bits", "(0, 8)", two_bit),
        ("3 bits (chosen)", str(SCRAMBLE_BIT_POSITIONS), paper_three),
        ("3 bits (unlucky)", str(bad_triple), unlucky_three),
    ]
    publish("ablation_scramble", render_table(
        "Ablation: scramble pattern vs. fault behaviour",
        ["flips", "data bits", "outcome on first read"],
        rows,
        note="the chosen triple's codeword positions XOR above "
             f"{MAX_POSITION}, guaranteeing an uncorrectable fault",
    ))

    # The paper's requirements, verified against the real code:
    assert "silently corrected" in one_bit
    assert "FAULT" in two_bit
    assert "FAULT" in paper_three
    # The hazard that motivates *choosing* the positions:
    assert "MIS-CORRECTED" in unlucky_three

    benchmark(lambda: scrambled_outcome(SCRAMBLE_BIT_POSITIONS))
