"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it (captured into the pytest output / bench_output.txt), writes
it to ``results/``, and asserts the paper's qualitative shape.  The
``benchmark`` fixture times a short representative kernel of the same
experiment so `--benchmark-only` also yields meaningful wall-clock
numbers for the simulator itself.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(name, rendered):
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)
