"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it (captured into the pytest output / bench_output.txt), writes
it to ``results/``, and asserts the paper's qualitative shape.  The
``benchmark`` fixture times a short representative kernel of the same
experiment so `--benchmark-only` also yields meaningful wall-clock
numbers for the simulator itself.
"""

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"


def publish(name, rendered):
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)


def write_bench_json(name, report):
    """Persist a machine-readable benchmark report at the repo root.

    Convention shared by the ``bench_*`` modules: one
    ``BENCH_<name>.json`` per benchmark, overwritten on every run.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
