"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
prints it (captured into the pytest output / bench_output.txt), writes
it to ``results/``, and asserts the paper's qualitative shape.  The
``benchmark`` fixture times a short representative kernel of the same
experiment so `--benchmark-only` also yields meaningful wall-clock
numbers for the simulator itself.
"""

import json
import os
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"

sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_check import check_report  # noqa: E402


def publish(name, rendered):
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print()
    print(rendered)


def write_bench_json(name, report):
    """Persist a machine-readable benchmark report at the repo root.

    Convention shared by the ``bench_*`` modules: one
    ``BENCH_<name>.json`` per benchmark, overwritten on every run.
    Before overwriting, the fresh report is compared against the
    committed baseline (``tools/bench_check.py``); regressions print a
    warning, or fail the benchmark when ``REPRO_BENCH_STRICT=1``.
    """
    regressions = check_report(name, report, root=REPO_ROOT)
    if regressions and os.environ.get("REPRO_BENCH_STRICT") == "1":
        details = ", ".join(
            f"{r.path} {r.change:+.1%}" for r in regressions
        )
        raise AssertionError(
            f"benchmark {name} regressed vs committed baseline: "
            f"{details}"
        )
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
