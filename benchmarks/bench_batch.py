"""Micro-benchmark for the batched execution engine.

Measures simulator throughput (real ops/sec) for the same bulk access
plans executed two ways:

- ``scalar``  -- one ``machine.load``/``machine.store`` call per
  operation: the per-access fast path, paying Python dispatch, TLB
  lookup, and fault-retry framing on every op,
- ``batched`` -- the whole plan through ``machine.run_ops``: one
  translation per page run, resident lines touched directly in the L1
  set, whole-line spans moved through the hierarchy in one call.

Both paths are cycle- and event-identical by contract (pinned by
``tests/test_machine_batch.py``); this benchmark shows the real-time
win and asserts it stays >= 2x for bulk word traffic.

Writes ``BENCH_batch.json`` at the repo root and prints a summary.
Run directly (``python benchmarks/bench_batch.py``) or through pytest
(marked ``slow``, so the tier-1 run never pays for it).
"""

import gc
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import pytest

from conftest import write_bench_json

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.machine.machine import Machine

pytestmark = pytest.mark.slow

BASE = 0x4000_0000
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_batch.json"

#: operations per timed phase.
WORD_OPS = 30_000
BLOCK_OPS = 1_500
#: timed repetitions per phase; best-of keeps the numbers stable.
REPEATS = 5


def _make_machine():
    machine = Machine(dram_size=8 * 1024 * 1024)
    machine.kernel.mmap(BASE, 64 * PAGE_SIZE)
    return machine


def _word_load_plan():
    # 512 hot lines across 8 pages, revisited: the steady-state shape
    # of gzip's block reads after warmup.
    addresses = [BASE + (i * 8) % (8 * PAGE_SIZE) for i in range(WORD_OPS)]
    return [("load", address, 8) for address in addresses]


def _word_store_plan():
    payload = b"\xa5" * 8
    addresses = [BASE + (i * 8) % (8 * PAGE_SIZE) for i in range(WORD_OPS)]
    return [("store", address, payload) for address in addresses]


def _block_plan():
    # Whole-buffer moves (4 KiB spans), the tar/gzip bulk-copy shape:
    # the span path's one-translation-per-page + line-sized codec calls.
    block = b"\x42" * (4 * PAGE_SIZE)
    plan = []
    for i in range(BLOCK_OPS):
        offset = (i % 8) * 4 * PAGE_SIZE
        plan.append(("store", BASE + offset, block))
        plan.append(("load", BASE + offset, len(block)))
    return plan


def _warmup(machine, plan):
    # Touch every page once so both paths start demand-filled.
    pages = {vaddr - (vaddr % PAGE_SIZE) for _, vaddr, _ in plan}
    for page in sorted(pages):
        machine.store(page, bytes(8))


def _run_scalar(machine, plan):
    load = machine.load
    store = machine.store
    for kind, vaddr, arg in plan:
        if kind == "load":
            load(vaddr, arg)
        else:
            store(vaddr, arg)
    return len(plan)


def _run_batched(machine, plan):
    machine.run_ops(plan)
    return len(plan)


def _time_phase(plan_factory):
    """Best-of-N ops/sec for the same plan, scalar vs batched.

    Fresh machines per repetition so LRU/dirty state never leaks
    between timings; cycle identity across the two paths is asserted
    on every repetition.  The speedup is the best of the *paired*
    per-repetition ratios, computed from process CPU time -- both
    modes run back to back inside each repetition and contention from
    other processes never counts against either side, so the ratio is
    stable even on a loaded host.  The reported ops/sec stay
    wall-clock, like the other benchmarks.
    """
    plan = plan_factory()
    best = {"scalar": 0.0, "batched": 0.0, "speedup": 0.0}
    for _ in range(REPEATS):
        rates = {}
        cpu = {}
        cycles = {}
        for mode, runner in (("scalar", _run_scalar),
                             ("batched", _run_batched)):
            machine = _make_machine()
            _warmup(machine, plan)
            gc.collect()
            gc.disable()
            try:
                wall = time.perf_counter()
                used = time.process_time()
                ops = runner(machine, plan)
                cpu[mode] = time.process_time() - used
                rates[mode] = ops / (time.perf_counter() - wall)
            finally:
                gc.enable()
            best[mode] = max(best[mode], rates[mode])
            cycles[mode] = machine.clock.cycles
        assert cycles["scalar"] == cycles["batched"], (
            f"cycle divergence: {cycles}")
        best["speedup"] = max(best["speedup"],
                              cpu["scalar"] / cpu["batched"])
    return best


def run_benchmark():
    phases = {
        "word_loads": _word_load_plan,
        "word_stores": _word_store_plan,
        "block_copies": _block_plan,
    }
    report = {"benchmark": "batch", "word_ops": WORD_OPS,
              "block_ops": BLOCK_OPS}
    for phase, factory in phases.items():
        best = _time_phase(factory)
        report[f"{phase}_scalar_ops_per_sec"] = best["scalar"]
        report[f"{phase}_batched_ops_per_sec"] = best["batched"]
        report[f"{phase}_speedup"] = best["speedup"]
    write_bench_json("batch", report)
    return report


def test_bench_batch():
    report = run_benchmark()
    # The acceptance gate: bulk word traffic through run_ops must be at
    # least 2x the scalar fast path.
    assert report["word_loads_speedup"] >= 2.0
    assert report["word_stores_speedup"] >= 2.0
    assert report["block_copies_speedup"] >= 1.5


def main():
    report = run_benchmark()
    print(f"wrote {RESULT_PATH}")
    for phase in ("word_loads", "word_stores", "block_copies"):
        print(
            f"{phase:>12}: scalar "
            f"{report[f'{phase}_scalar_ops_per_sec']:>10.0f} ops/s | "
            f"batched "
            f"{report[f'{phase}_batched_ops_per_sec']:>10.0f} ops/s | "
            f"{report[f'{phase}_speedup']:.2f}x"
        )


if __name__ == "__main__":
    main()
