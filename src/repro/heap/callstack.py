"""Call-stack signatures for memory object grouping.

The paper groups memory objects by ``(size, callsite)`` where the
callsite signature is "calculated by individually applying the
exclusive-or and rotate functions to the return addresses of the most
recent four functions in the current stack" (Section 3, footnote 1).
"""

SIGNATURE_BITS = 32
SIGNATURE_MASK = (1 << SIGNATURE_BITS) - 1
STACK_DEPTH = 4
ROTATE_STEP = 7


def _rotate_left(value, amount):
    amount %= SIGNATURE_BITS
    value &= SIGNATURE_MASK
    return ((value << amount) | (value >> (SIGNATURE_BITS - amount))) \
        & SIGNATURE_MASK


def call_stack_signature(return_addresses):
    """XOR-and-rotate signature of the most recent four return addresses.

    Each address is rotated by a depth-dependent amount before being
    XORed in, so the signature distinguishes the same addresses in a
    different order (A calls B vs. B calls A).
    """
    signature = 0
    recent = list(return_addresses)[-STACK_DEPTH:]
    for depth, address in enumerate(recent):
        signature ^= _rotate_left(address & SIGNATURE_MASK,
                                  depth * ROTATE_STEP)
    return signature


class CallStack:
    """The simulated program's stack of return addresses."""

    def __init__(self, entry_pc=0x400000):
        self._frames = [entry_pc]

    def push(self, return_address):
        self._frames.append(return_address)

    def pop(self):
        if len(self._frames) <= 1:
            raise IndexError("cannot pop the entry frame")
        return self._frames.pop()

    @property
    def depth(self):
        return len(self._frames)

    def signature(self):
        """Signature of the current call context."""
        return call_stack_signature(self._frames)

    def frames(self):
        return tuple(self._frames)
