"""Heap substrate: allocator and call-stack signatures."""

from repro.heap.allocator import MIN_ALIGNMENT, Allocation, Allocator
from repro.heap.callstack import CallStack, call_stack_signature
from repro.heap.pool import PoolAllocator

__all__ = [
    "MIN_ALIGNMENT",
    "Allocation",
    "Allocator",
    "CallStack",
    "call_stack_signature",
    "PoolAllocator",
]
