"""Pool (slab) allocator: a program-private custom allocator.

Real servers (apache, squid) often bypass malloc with pools; the paper
notes that SafeMem handles them by wrapping the program's own
allocation functions.  This pool carves fixed-size objects out of
slabs obtained from the program's regular ``malloc`` (so the slabs
themselves are guarded like any buffer), and exposes the alloc/free
hook surface SafeMem's wrapper needs.
"""

from repro.common.constants import CACHE_LINE_SIZE, align_up
from repro.common.errors import ConfigurationError, DoubleFree, InvalidFree


class PoolAllocator:
    """Fixed-size object pool over slab buffers.

    Objects are spaced at a cache-line-aligned stride so every object
    can carry its own ECC watchpoint without false sharing -- the
    property SafeMem's leak pruning needs.
    """

    #: capacity of the in-memory slab directory.
    MAX_SLABS = 64

    def __init__(self, program, object_size, objects_per_slab=32,
                 site=0x900C, root_slot=None):
        if object_size <= 0:
            raise ConfigurationError(
                f"pool object size must be positive: {object_size}"
            )
        self.program = program
        self.object_size = object_size
        self.stride = align_up(object_size, CACHE_LINE_SIZE)
        self.objects_per_slab = objects_per_slab
        self.site = site
        self._slabs = []
        self._free = []
        self._live = set()
        self.slab_allocations = 0
        # Like a real pool, the slab directory lives in program memory
        # (so conservative pointer scans see the slabs as reachable).
        # ``root_slot`` anchors it in the program's globals.
        with program.frame(site):
            self._directory = program.malloc(8 * self.MAX_SLABS)
        program.zero_memory(self._directory, 8 * self.MAX_SLABS)
        if root_slot is not None:
            program.set_global(root_slot, self._directory)

    # ------------------------------------------------------------------
    # the custom allocation functions SafeMem wraps
    # ------------------------------------------------------------------
    def alloc(self):
        """Take one object from the pool (grows by a slab if empty)."""
        if not self._free:
            self._grow()
        address = self._free.pop()
        self._live.add(address)
        return address

    def release(self, address):
        """Return one object to the pool."""
        if address not in self._live:
            if any(self._owns(address, slab) for slab in self._slabs):
                raise DoubleFree(
                    f"pool double free of {address:#x}"
                )
            raise InvalidFree(
                f"{address:#x} does not belong to this pool"
            )
        self._live.remove(address)
        self._free.append(address)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def live_count(self):
        return len(self._live)

    @property
    def capacity(self):
        return len(self._slabs) * self.objects_per_slab

    def is_live(self, address):
        return address in self._live

    def destroy(self):
        """Free every slab (and the directory) back to the allocator."""
        for slab in self._slabs:
            self.program.free(slab)
        self.program.free(self._directory)
        self._slabs.clear()
        self._free.clear()
        self._live.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grow(self):
        if len(self._slabs) >= self.MAX_SLABS:
            raise ConfigurationError(
                f"pool slab directory full ({self.MAX_SLABS} slabs)"
            )
        with self.program.frame(self.site):
            slab = self.program.malloc(
                self.stride * self.objects_per_slab
            )
        self.program.store_word(
            self._directory + 8 * len(self._slabs), slab
        )
        self.slab_allocations += 1
        self._slabs.append(slab)
        for index in reversed(range(self.objects_per_slab)):
            self._free.append(slab + index * self.stride)

    def _owns(self, address, slab):
        span = self.stride * self.objects_per_slab
        return slab <= address < slab + span and \
            (address - slab) % self.stride == 0
