"""First-fit heap allocator over the simulated address space.

Plays the role of the interposed ``malloc``/``free`` in the paper: the
monitoring tools wrap these entry points (SafeMem is "implemented as a
shared library and can be dynamically preloaded", Section 5.1).  The
allocator supports per-request alignment because both SafeMem and the
page-protection baseline need aligned buffers with guard padding.

Block metadata is kept host-side (a real allocator would embed headers
in the heap); what the paper's evaluation depends on is the *address
layout* -- alignment, padding, fragmentation -- and the per-operation
cost, both of which are modelled.
"""

import bisect

from repro.common.constants import align_up
from repro.common.errors import (
    ConfigurationError,
    DoubleFree,
    InvalidFree,
    OutOfMemory,
)

#: Minimum alignment of any allocation, like glibc malloc.
MIN_ALIGNMENT = 16


class Allocation:
    """One live allocation."""

    __slots__ = ("address", "size", "requested_size", "sampled")

    def __init__(self, address, size, requested_size):
        self.address = address
        self.size = size
        self.requested_size = requested_size
        #: whether a sampling monitor admitted this allocation to its
        #: detectors.  True by default (always-on mode monitors every
        #: allocation); SafeMem flips it to False on the unsampled fast
        #: path so ``free``/``realloc`` can route in O(1) without
        #: consulting any watch machinery.
        self.sampled = True

    @property
    def end(self):
        return self.address + self.size


class Allocator:
    """First-fit allocator with address-ordered free list and coalescing."""

    def __init__(self, base, size, clock=None, costs=None, metrics=None):
        if size <= 0:
            raise ConfigurationError(f"heap size must be positive: {size}")
        self.base = base
        self.size = size
        self.clock = clock
        self.costs = costs
        # Parallel, address-sorted arrays of free extents.
        self._free_addrs = [base]
        self._free_sizes = [size]
        self._live = {}
        self._freed_history = set()
        self.total_allocs = 0
        self.total_frees = 0
        self.peak_live_bytes = 0
        self.live_bytes = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``heap.*`` probes into a metrics registry."""
        metrics.probe("heap.allocs", lambda: self.total_allocs,
                      kind="counter")
        metrics.probe("heap.frees", lambda: self.total_frees,
                      kind="counter")
        metrics.probe("heap.live_bytes", lambda: self.live_bytes,
                      kind="gauge")
        metrics.probe("heap.peak_live_bytes",
                      lambda: self.peak_live_bytes, kind="gauge")

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def malloc(self, size, alignment=MIN_ALIGNMENT):
        """Allocate ``size`` bytes aligned to ``alignment``.

        Returns the address.  Raises :class:`OutOfMemory` when no free
        extent fits.
        """
        if size <= 0:
            raise ConfigurationError(f"allocation size must be positive: "
                                     f"{size}")
        if alignment < MIN_ALIGNMENT or alignment & (alignment - 1):
            raise ConfigurationError(
                f"alignment must be a power of two >= {MIN_ALIGNMENT}: "
                f"{alignment}"
            )
        self._charge()
        granted = align_up(size, MIN_ALIGNMENT)
        for index in range(len(self._free_addrs)):
            extent_addr = self._free_addrs[index]
            extent_size = self._free_sizes[index]
            aligned = align_up(extent_addr, alignment)
            waste_front = aligned - extent_addr
            if waste_front + granted > extent_size:
                continue
            self._carve(index, aligned, granted)
            allocation = Allocation(aligned, granted, size)
            self._live[aligned] = allocation
            self._freed_history.discard(aligned)
            self.total_allocs += 1
            self.live_bytes += granted
            self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
            return aligned
        raise OutOfMemory(
            f"cannot satisfy malloc({size}, align={alignment}); "
            f"{self.free_bytes()} bytes free but fragmented or insufficient"
        )

    def free(self, address):
        """Release the allocation at ``address``."""
        self._charge()
        allocation = self._live.pop(address, None)
        if allocation is None:
            if address in self._freed_history:
                raise DoubleFree(f"double free of {address:#x}")
            raise InvalidFree(f"free of non-allocated address {address:#x}")
        self._freed_history.add(address)
        self.total_frees += 1
        self.live_bytes -= allocation.size
        self._release(allocation.address, allocation.size)
        return allocation

    def realloc(self, address, new_size):
        """Classic realloc semantics; returns the (possibly new) address.

        The caller is responsible for copying user data if it cares --
        data movement happens in simulated memory, which the monitor
        layer orchestrates.
        """
        if address is None:
            return self.malloc(new_size)
        allocation = self._live.get(address)
        if allocation is None:
            raise InvalidFree(f"realloc of non-allocated address "
                              f"{address:#x}")
        if new_size <= allocation.size:
            allocation.requested_size = new_size
            return address
        self.free(address)
        return self.malloc(new_size)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, address):
        """Return the :class:`Allocation` starting at ``address`` or None."""
        return self._live.get(address)

    def block_containing(self, address):
        """Return the live allocation containing ``address``, or None."""
        index = bisect.bisect_right(self._live_sorted_addrs(), address) - 1
        if index < 0:
            return None
        candidate = self._live[self._live_sorted_addrs()[index]]
        if candidate.address <= address < candidate.end:
            return candidate
        return None

    def live_allocations(self):
        """All live allocations, unordered."""
        return list(self._live.values())

    def free_bytes(self):
        return sum(self._free_sizes)

    def is_live(self, address):
        return address in self._live

    def was_freed(self, address):
        """True if ``address`` was the start of a now-freed allocation."""
        return address in self._freed_history

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _carve(self, index, aligned, granted):
        extent_addr = self._free_addrs[index]
        extent_size = self._free_sizes[index]
        front = aligned - extent_addr
        back = extent_size - front - granted
        replacements_addr = []
        replacements_size = []
        if front:
            replacements_addr.append(extent_addr)
            replacements_size.append(front)
        if back:
            replacements_addr.append(aligned + granted)
            replacements_size.append(back)
        self._free_addrs[index:index + 1] = replacements_addr
        self._free_sizes[index:index + 1] = replacements_size

    def _release(self, address, size):
        index = bisect.bisect_left(self._free_addrs, address)
        # Coalesce with the following extent.
        if index < len(self._free_addrs) and \
                address + size == self._free_addrs[index]:
            size += self._free_sizes[index]
            del self._free_addrs[index]
            del self._free_sizes[index]
        # Coalesce with the preceding extent.
        if index > 0 and \
                self._free_addrs[index - 1] + self._free_sizes[index - 1] \
                == address:
            self._free_sizes[index - 1] += size
        else:
            self._free_addrs.insert(index, address)
            self._free_sizes.insert(index, size)

    def _live_sorted_addrs(self):
        # Small enough at our scale; recompute on demand.
        return sorted(self._live)

    def _charge(self):
        if self.clock is not None and self.costs is not None:
            self.clock.tick(self.costs.heap_op)
