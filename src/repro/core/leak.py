"""Continuous-memory-leak detection (paper Section 3).

Three steps, all driven from malloc/free time (never per access):

1. **Behaviour collection** -- group statistics in
   :class:`~repro.core.groups.GroupTable`.
2. **Outlier detection** -- at most once per checking-period:
   ALeak (group never frees, grows fast, still allocating) and
   SLeak (object outlives ``k x`` the group's stable maximal lifetime).
3. **False-positive pruning** -- suspects get ECC watchpoints; the
   first access prunes, a confirmation timeout reports a leak.
"""

from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE, align_up, line_base
from repro.common.events import EventKind
from repro.core.groups import GroupTable
from repro.core.reports import LeakReport, PrunedSuspect
from repro.core.watcher import WatchTag


@dataclass
class SuspectRecord:
    """One suspicion event (kept for the Table 5 before/after counts)."""

    object_address: int
    group_size: int
    call_signature: int
    kind: str
    flagged_at_cycle: int


class LeakDetector:
    """Lifetime-outlier leak detection with ECC pruning."""

    def __init__(self, program, watcher, config, event_log):
        self.program = program
        self.machine = program.machine
        self.watcher = watcher
        self.config = config
        self.events = event_log
        self.groups = GroupTable(tolerance=config.lifetime_tolerance)
        self.reports = []
        self.pruned = []
        #: every suspicion ever raised -- the "before pruning" number.
        self.suspect_records = []
        self._watched = {}
        self._last_check_cycle = 0
        self.skipped_watches = 0

    def register_metrics(self, metrics):
        """Publish ``safemem.leak.*`` probes into a metrics registry."""
        metrics.probe("safemem.leak.suspects",
                      lambda: len(self.suspect_records), kind="counter",
                      description="suspicions ever raised (pre-pruning)")
        metrics.probe("safemem.leak.pruned",
                      lambda: len(self.pruned), kind="counter")
        metrics.probe("safemem.leak.reports",
                      lambda: len(self.reports), kind="counter")
        metrics.probe("safemem.leak.skipped_watches",
                      lambda: self.skipped_watches, kind="counter")
        metrics.probe("safemem.leak.watched",
                      lambda: len(self._watched), kind="gauge",
                      description="suspects currently under ECC watch")
        metrics.probe("safemem.leak.groups",
                      lambda: len(self.groups), kind="gauge")

    # ------------------------------------------------------------------
    # step 1: behaviour collection at allocation/deallocation time
    # ------------------------------------------------------------------
    def on_alloc(self, address, size, call_signature):
        now = self.machine.clock.cycles
        self.machine.clock.tick(self.machine.costs.safemem_alloc_update)
        self.groups.on_alloc(address, size, call_signature, now,
                             key=self._group_key(size, call_signature))
        self._maybe_scan(now)

    def _group_key(self, size, call_signature):
        """Project the (size, callsig) pair per the configured grouping.

        The paper uses both components (Section 3); the ablation modes
        collapse one of them, merging groups that the full key keeps
        apart.
        """
        if self.config.grouping == "size":
            return size, 0
        if self.config.grouping == "callsig":
            return 0, call_signature
        return size, call_signature

    def on_free(self, address):
        now = self.machine.clock.cycles
        self.machine.clock.tick(self.machine.costs.safemem_alloc_update)
        group, obj = self.groups.on_free(address, now)
        if obj is not None and obj.address in self._watched:
            # A watched suspect was freed: the program still held its
            # pointer, so it was not a leak.  Quietly disarm.
            watch = self._watched.pop(obj.address)
            self.watcher.unwatch(watch)
        self._maybe_scan(now)
        return group, obj

    # ------------------------------------------------------------------
    # step 2: periodic outlier detection
    # ------------------------------------------------------------------
    def _maybe_scan(self, now):
        if now < self.config.warmup_cycles:
            return
        if now - self._last_check_cycle < self.config.checking_period_cycles:
            return
        self._last_check_cycle = now
        self.scan(now)

    def scan(self, now=None):
        """Run one outlier-detection pass (normally period-driven)."""
        if now is None:
            now = self.machine.clock.cycles
        cost = self.machine.costs.safemem_scan_per_group
        for group in self.groups:
            self.machine.clock.tick(cost)
            if group.ever_freed:
                self._check_sleak(group, now)
            else:
                self._check_aleak(group, now)
        self._check_confirmations(now)

    def _check_aleak(self, group, now):
        threshold = self.config.aleak_live_threshold * group.aleak_backoff
        if group.live_count < threshold:
            return
        if now - group.last_alloc_cycle > \
                self.config.aleak_recent_window_cycles:
            # Not actively growing: likely init-time allocations that
            # live for the whole run (explicitly not a leak, Sec 3.2.2).
            return
        for obj in group.oldest_live(self.config.max_suspects_per_group):
            if not obj.state:
                self._suspect(group, obj, "aleak", now)

    def _check_sleak(self, group, now):
        if group.max_lifetime == 0:
            return
        if group.stable_time < self.config.sleak_stable_time_cycles:
            # Condition 2 of Section 3.2.2: without a stable maximum the
            # detection confidence is too low; flag nothing.
            return
        limit = self.config.sleak_lifetime_multiplier * group.max_lifetime
        for obj in group.oldest_live(self.config.max_suspects_per_group):
            if obj.state:
                continue
            if obj.age(now) > limit:
                self._suspect(group, obj, "sleak", now)

    # ------------------------------------------------------------------
    # step 3: ECC pruning
    # ------------------------------------------------------------------
    def _suspect(self, group, obj, kind, now):
        if len(self._watched) >= self.config.max_watched_suspects:
            self.skipped_watches += 1
            return
        start = line_base(obj.address)
        end = align_up(obj.address + obj.size, CACHE_LINE_SIZE)
        watch = self.watcher.watch(
            start, end - start, WatchTag.LEAK_SUSPECT, self._on_suspect_hit,
            payload={"group": group, "object": obj, "kind": kind},
        )
        if watch is None:
            self.skipped_watches += 1
            return
        obj.state = "suspect"
        obj.watch_started_cycle = now
        self._watched[obj.address] = watch
        self.suspect_records.append(SuspectRecord(
            object_address=obj.address,
            group_size=group.size,
            call_signature=group.call_signature,
            kind=kind,
            flagged_at_cycle=now,
        ))
        self.events.emit(EventKind.LEAK_SUSPECT, address=obj.address,
                         size=obj.size, leak_kind=kind)

    def _on_suspect_hit(self, watch, info):
        """First access to a suspect: a pruned false positive."""
        group = watch.payload["group"]
        obj = watch.payload["object"]
        kind = watch.payload["kind"]
        now = self.machine.clock.cycles
        self.watcher.unwatch(watch)
        self._watched.pop(obj.address, None)
        lived = obj.age(now)
        if kind == "sleak":
            # Adopt this lifetime as the new expected maximum so similar
            # objects do not get re-flagged (Section 3.2.3).
            group.raise_max_lifetime(lived, now)
        else:
            # An ALeak suspect that is still in use: back the group's
            # threshold off so it is not immediately re-flagged.
            group.aleak_backoff *= 2
        group.refresh_object(obj, now)
        obj.prune_count += 1
        self.pruned.append(PrunedSuspect(
            object_address=obj.address,
            group_size=group.size,
            call_signature=group.call_signature,
            kind=kind,
            watched_for_cycles=now - obj.watch_started_cycle,
        ))
        self.events.emit(EventKind.LEAK_PRUNED, address=obj.address,
                         leak_kind=kind)
        return True

    def _check_confirmations(self, now):
        confirm = self.config.leak_confirm_cycles
        for address, watch in list(self._watched.items()):
            obj = watch.payload["object"]
            if now - obj.watch_started_cycle < confirm:
                continue
            group = watch.payload["group"]
            kind = watch.payload["kind"]
            self.watcher.unwatch(watch)
            del self._watched[address]
            obj.state = "reported"
            group.retire(obj)
            report = LeakReport(
                object_address=obj.address,
                object_size=obj.size,
                group_size=group.size,
                call_signature=group.call_signature,
                kind=kind,
                allocated_at_cycle=obj.alloc_cycle,
                reported_at_cycle=now,
            )
            self.reports.append(report)
            self.events.emit(EventKind.LEAK_REPORT, address=obj.address,
                             size=obj.size, leak_kind=kind)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_exit(self):
        """Final confirmation pass, then disarm everything."""
        self._check_confirmations(self.machine.clock.cycles)
        for address, watch in list(self._watched.items()):
            self.watcher.unwatch(watch)
            watch.payload["object"].state = ""
        self._watched.clear()

    # ------------------------------------------------------------------
    # introspection for experiments
    # ------------------------------------------------------------------
    def suspects_before_pruning(self):
        """Distinct objects ever flagged (the Table 5 'before' count)."""
        return len({r.object_address for r in self.suspect_records})

    def watched_suspects(self):
        return dict(self._watched)
