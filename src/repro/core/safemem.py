"""SafeMem: the monitor that implements the paper's contribution.

Attach it to a :class:`~repro.machine.program.Program` and it wraps the
allocation calls (like the preloaded shared library of Section 5.1),
arms ECC watchpoints through the kernel's three new syscalls, and
detects:

- continuous memory leaks (ALeak / SLeak) with ECC-pruned false
  positives,
- buffer overflows and accesses to freed memory via guarded padding
  and freed-buffer watches,
- optionally, uninitialized reads (the Section 4 extension).

Crucially it never intercepts individual loads/stores and never dilates
computation -- the properties that keep its overhead at production-run
levels (Table 3).
"""

import warnings

from repro.common.constants import CACHE_LINE_SIZE, align_up
from repro.core.config import SafeMemConfig
from repro.core.corruption import CorruptionDetector
from repro.core.leak import LeakDetector
from repro.core.watcher import EccWatchManager
from repro.machine.machine import PERF_COUNTER_METRICS
from repro.machine.monitor import Monitor
from repro.obs.metrics import MetricsRegistry

#: Legacy ``statistics()`` key -> registry metric name (the watcher,
#: leak, and corruption slices; perf-counter keys come from
#: :data:`~repro.machine.machine.PERF_COUNTER_METRICS`).
STATISTICS_METRICS = {
    "watch_arms": "safemem.watch.arms",
    "watch_disarms": "safemem.watch.disarms",
    "pin_failures": "safemem.watch.pin_failures",
    "hardware_errors_repaired": "safemem.watch.hw_repaired",
    "leak_reports": "safemem.leak.reports",
    "pruned_suspects": "safemem.leak.pruned",
    "suspects_flagged": "safemem.leak.suspects",
    "groups": "safemem.leak.groups",
    "corruption_reports": "safemem.corruption.reports",
}


class SafeMem(Monitor):
    """Production-run leak and corruption detector."""

    name = "safemem"

    def __init__(self, config=None, /):
        super().__init__()
        self.config = (config or SafeMemConfig()).validate()
        #: allocation sampler, or None in classic always-on mode.  A
        #: rate-1.0/no-budget policy is *deliberately* mapped to None:
        #: the hot path is then the historic one, instruction for
        #: instruction, which the twin-machine equivalence test pins.
        policy = self.config.sampling
        self.sampler = (policy.sampler()
                        if policy is not None and not policy.always_on
                        else None)
        self.watcher = None
        self.leak = None
        self.corruption = None
        #: cumulative space accounting for Table 4 (alignment waste in
        #: leak-only mode; padding + alignment with corruption on).
        self.requested_bytes = 0
        self.monitor_waste_bytes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_attach(self):
        machine = self.program.machine
        metrics = getattr(machine, "metrics", None)
        self.watcher = EccWatchManager(machine)
        if self.config.detect_leaks:
            self.leak = LeakDetector(
                self.program, self.watcher, self.config, machine.events
            )
            if metrics is not None:
                self.leak.register_metrics(metrics)
        if self.config.detect_corruption or self.config.detect_uninit_reads:
            self.corruption = CorruptionDetector(
                self.program, self.watcher, self.config, machine.events
            )
            if metrics is not None:
                self.corruption.register_metrics(metrics)
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``safemem.space.*`` probes into a metrics registry."""
        metrics.probe("safemem.space.requested_bytes",
                      lambda: self.requested_bytes, kind="counter")
        metrics.probe("safemem.space.waste_bytes",
                      lambda: self._total_waste_bytes(), kind="counter")
        metrics.probe("safemem.space.overhead",
                      self.space_overhead_fraction, kind="gauge",
                      description="monitoring bytes / requested bytes "
                                  "(Table 4 metric)")
        if self.sampler is not None:
            self.sampler.register_metrics(metrics)

    def on_exit(self):
        if self.leak is not None:
            self.leak.on_exit()
        if self.corruption is not None:
            self.corruption.on_exit()
        if self.watcher is not None:
            # A monitor that was never attached has no watch manager
            # (and nothing armed); exiting must not crash.
            self.watcher.unwatch_all()

    # ------------------------------------------------------------------
    # allocation interposition
    # ------------------------------------------------------------------
    def malloc(self, size, call_signature):
        if self.sampler is not None and not self.sampler.should_sample():
            # Unsampled fast path: a plain native allocation.  No
            # guards, no leak tracking, no line alignment -- and thus
            # no armed watchpoints, so the machine's zero-armed-lines
            # load/store short-circuit stays enabled.  The sampling
            # decision itself is host-side (a countdown decrement) and
            # never ticks the simulated clock.
            address = self.program.allocator.malloc(size)
            self.program.allocator.lookup(address).sampled = False
            self.requested_bytes += size
            return address
        if self.corruption is not None:
            address = self.corruption.allocate(size, call_signature)
        else:
            # Leak-only mode still needs line-aligned, line-sized
            # buffers so suspects can be ECC-watched without false
            # sharing; the rounding is the mode's only space cost.
            granted = align_up(size, CACHE_LINE_SIZE)
            address = self.program.allocator.malloc(
                granted, alignment=CACHE_LINE_SIZE
            )
            self.monitor_waste_bytes += granted - size
        self.requested_bytes += size
        if self.leak is not None:
            self.leak.on_alloc(address, size, call_signature)
        return address

    def free(self, address):
        if self.sampler is not None and not self._is_sampled(address):
            # The allocation bypassed the detectors at malloc time, so
            # its free must too: no leak bookkeeping (it was never
            # grouped), no quarantine, and the reclaimed memory goes
            # straight back to the heap.
            self.program.allocator.free(address)
            return
        if self.leak is not None:
            self.leak.on_free(address)
        if self.corruption is not None:
            self.corruption.release(address)
        else:
            self.program.allocator.free(address)
        if self.sampler is not None:
            self.sampler.release_slot()

    def _is_sampled(self, address):
        """Did the sampler admit the allocation at ``address``?

        Host-side O(1): corruption mode keys on the layout table (the
        user address of a guarded buffer is interior to its block, so
        the allocator can't resolve it); otherwise the allocation
        record carries the flag.  Unknown addresses report as sampled
        so invalid frees keep raising through the historic path.
        """
        if self.corruption is not None:
            return self.corruption.owns(address)
        allocation = self.program.allocator.lookup(address)
        return allocation is None or allocation.sampled

    def realloc(self, address, new_size, call_signature):
        if address is None:
            return self.malloc(new_size, call_signature)
        old_size = self._user_size(address)
        keep = min(old_size, new_size)
        data = self.program.load(address, keep) if keep else b""
        self.free(address)
        new_address = self.malloc(new_size, call_signature)
        if data:
            self.program.store(new_address, data)
        return new_address

    def _user_size(self, address):
        if self.corruption is not None:
            layout = self.corruption.layout_of(address)
            if layout is not None:
                return layout.user_size
        allocation = self.program.allocator.lookup(address)
        if allocation is not None:
            return allocation.requested_size
        return 0

    # ------------------------------------------------------------------
    # custom-allocator wrapping (paper Section 3.2.1: "For programs
    # that use their own memory allocators, we wrap their allocation
    # and free functions")
    # ------------------------------------------------------------------
    def wrap_allocator(self, alloc_fn, free_fn, object_size):
        """Wrap a custom allocator's alloc/free pair for leak tracking.

        Returns ``(wrapped_alloc, wrapped_free)``.  Objects handed out
        by the wrapped functions participate fully in leak detection
        (grouping, lifetime statistics, ECC suspect watching and
        pruning).  Corruption guarding stays at the granularity of the
        underlying slabs, which already flow through ``malloc``.
        """
        if self.leak is None:
            return alloc_fn, free_fn

        def wrapped_alloc(*args, **kwargs):
            address = alloc_fn(*args, **kwargs)
            if address is None:
                # Failed allocation (e.g. exhausted pool): nothing to
                # track, and the caller sees the failure unchanged.
                return None
            self.leak.on_alloc(address, object_size,
                               self.program.stack.signature())
            return address

        def wrapped_free(address, *args, **kwargs):
            if address is None:
                # Mirror libc's free(NULL): a guaranteed no-op.  Without
                # this, a failed wrapped_alloc whose None return is
                # passed back to free would register a phantom free and
                # hit the underlying allocator with an address it never
                # issued.
                return None
            self.leak.on_free(address)
            return free_fn(address, *args, **kwargs)

        return wrapped_alloc, wrapped_free

    def wrap_pool(self, pool):
        """Convenience: wrap a :class:`~repro.heap.pool.PoolAllocator`.

        Returns the wrapped ``(alloc, release)`` pair; the pool's
        line-aligned strides make its objects ECC-watchable.
        """
        return self.wrap_allocator(pool.alloc, pool.release,
                                   pool.object_size)

    # ------------------------------------------------------------------
    # results / accounting
    # ------------------------------------------------------------------
    @property
    def leak_reports(self):
        return list(self.leak.reports) if self.leak is not None else []

    @property
    def pruned_suspects(self):
        return list(self.leak.pruned) if self.leak is not None else []

    @property
    def corruption_reports(self):
        if self.corruption is not None:
            return list(self.corruption.reports)
        return []

    def _total_waste_bytes(self):
        waste = self.monitor_waste_bytes
        if self.corruption is not None:
            waste += self.corruption.monitor_waste_bytes
        return waste

    def space_overhead_fraction(self):
        """Monitoring bytes over requested bytes (Table 4's metric)."""
        requested = self.requested_bytes
        if requested == 0:
            return 0.0
        return self._total_waste_bytes() / requested

    def telemetry(self):
        """Cycle-stamped :class:`~repro.obs.metrics.Snapshot` of every
        registered metric on the attached machine.

        The replacement for the old flat ``statistics()`` dict: read
        named metrics from ``snapshot.values`` (``safemem.*`` for this
        monitor's slice; the namespace is documented in
        docs/OBSERVABILITY.md).  Safe to call before attach, when it
        returns an empty snapshot.
        """
        if self.program is None:
            return MetricsRegistry().snapshot()
        return self.program.machine.metrics.snapshot()

    def statistics(self):
        """Deprecated flat summary dict; use :meth:`telemetry`.

        Kept as a versioned view over the metrics registry: every key
        maps onto a registered metric (see :data:`STATISTICS_METRICS`),
        so the legacy keys and values are bit-identical to the historic
        hand-rolled dict.
        """
        warnings.warn(
            "SafeMem.statistics() is deprecated; use SafeMem.telemetry() "
            "and read the safemem.* names instead (see "
            "docs/OBSERVABILITY.md#metric-namespace, and "
            "STATISTICS_METRICS for the key-to-metric mapping)",
            DeprecationWarning,
            stacklevel=2,
        )
        snap = self.telemetry()

        def value(name):
            return snap.values.get(name, 0)

        stats = {
            "watch_arms": value("safemem.watch.arms"),
            "watch_disarms": value("safemem.watch.disarms"),
            "pin_failures": value("safemem.watch.pin_failures"),
            "hardware_errors_repaired": value("safemem.watch.hw_repaired"),
            "space_overhead": self.space_overhead_fraction(),
        }
        if self.program is not None:
            stats.update({
                key: value(name)
                for key, name in PERF_COUNTER_METRICS.items()
            })
        if self.leak is not None:
            stats.update(
                leak_reports=value("safemem.leak.reports"),
                pruned_suspects=value("safemem.leak.pruned"),
                suspects_flagged=value("safemem.leak.suspects"),
                groups=value("safemem.leak.groups"),
            )
        if self.corruption is not None:
            stats["corruption_reports"] = value("safemem.corruption.reports")
        return stats
