"""Lifetime profiler: group statistics without any detection.

This is the instrument behind the paper's Figure 3 study (Section 3.1):
it observes allocation/deallocation behaviour and records, per memory
object group, when the maximal lifetime stabilized -- without arming
watchpoints or flagging suspects, so the statistics are unperturbed.
"""

from repro.common.constants import CYCLES_PER_SECOND
from repro.core.groups import GroupTable
from repro.machine.monitor import Monitor


class LifetimeProfiler(Monitor):
    """Pass-through monitor that only collects group lifetime stats."""

    name = "lifetime-profiler"

    def __init__(self, tolerance=0.25):
        super().__init__()
        self.groups = GroupTable(tolerance=tolerance)

    def malloc(self, size, call_signature):
        address = self.program.allocator.malloc(size)
        self.groups.on_alloc(address, size, call_signature,
                             self.program.machine.clock.cycles)
        return address

    def free(self, address):
        self.groups.on_free(address, self.program.machine.clock.cycles)
        self.program.allocator.free(address)

    def realloc(self, address, new_size, call_signature):
        if address is None:
            return self.malloc(new_size, call_signature)
        self.groups.on_free(address, self.program.machine.clock.cycles)
        new_address = self.program.allocator.realloc(address, new_size)
        self.groups.on_alloc(new_address, new_size, call_signature,
                             self.program.machine.clock.cycles)
        return new_address

    # ------------------------------------------------------------------
    # Figure 3 statistics
    # ------------------------------------------------------------------
    def warmup_times_seconds(self, min_frees=3):
        """Per-group WarmUpTime: when its maximal lifetime last grew.

        Only groups with at least ``min_frees`` deallocations have a
        meaningful maximal lifetime.
        """
        return sorted(
            group.last_max_update_cycle / CYCLES_PER_SECOND
            for group in self.groups
            if group.total_freed >= min_frees
        )
