"""User-level ECC watch manager.

This is SafeMem's private library layer over the three kernel calls
(Section 2.2): it saves the original contents of every watched region
in SafeMem's private memory, owns the single registered ECC fault
handler, and -- on each fault -- performs the paper's discrimination
step: recompute the scrambled value from the saved original and compare
it with what is actually in memory.  A match means *access fault*
(watchpoint hit, dispatched to the owner's callback); a mismatch means
a *genuine hardware error*.

For hardware errors inside watched regions the paper observes that the
stored data "is not critical" because SafeMem holds the original copy;
we follow its suggestion and transparently repair the line from the
saved original instead of panicking.
"""

from dataclasses import dataclass, field
from enum import Enum

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import PinLimitExceeded, SyscallError


class WatchTag(Enum):
    """Why a region is being watched."""

    LEAK_SUSPECT = "leak_suspect"
    PAD = "pad"
    FREED = "freed"
    UNINIT = "uninit"


@dataclass
class Watch:
    """One armed region plus its saved original contents."""

    vaddr: int
    size: int
    tag: WatchTag
    original: bytes
    on_hit: object
    started_cycle: int
    payload: dict = field(default_factory=dict)

    def line_bases(self):
        return range(self.vaddr, self.vaddr + self.size, CACHE_LINE_SIZE)

    def original_line(self, vline):
        offset = vline - self.vaddr
        return self.original[offset:offset + CACHE_LINE_SIZE]


class EccWatchManager:
    """All of SafeMem's active watchpoints, indexed by cache line."""

    def __init__(self, machine):
        self.machine = machine
        self.kernel = machine.kernel
        # Expected-scramble computation must use the same codec the
        # kernel armed the lines with (chipset profiles vary it).
        self._scramble_bytes = self.kernel.controller.codec.scramble_bytes
        self._by_region = {}
        self._by_line = {}
        self.arm_count = 0
        self.disarm_count = 0
        self.pin_failures = 0
        self.hardware_errors_repaired = 0
        self.unclaimed_faults = 0
        self._suspended = []
        self.kernel.register_ecc_fault_handler(self._handle_fault)
        self.kernel.add_scrub_listener(pre=self.suspend_all,
                                       post=self.resume_all)
        metrics = getattr(machine, "metrics", None)
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``safemem.watch.*`` probes into a metrics registry."""
        metrics.probe("safemem.watch.arms", lambda: self.arm_count,
                      kind="counter")
        metrics.probe("safemem.watch.disarms", lambda: self.disarm_count,
                      kind="counter")
        metrics.probe("safemem.watch.pin_failures",
                      lambda: self.pin_failures, kind="counter")
        metrics.probe("safemem.watch.hw_repaired",
                      lambda: self.hardware_errors_repaired,
                      kind="counter",
                      description="hardware errors repaired from the "
                                  "saved originals")
        metrics.probe("safemem.watch.unclaimed_faults",
                      lambda: self.unclaimed_faults, kind="counter")
        metrics.probe("safemem.watch.armed",
                      lambda: len(self._by_region), kind="gauge",
                      description="regions currently armed")

    # ------------------------------------------------------------------
    # arming / disarming
    # ------------------------------------------------------------------
    def watch(self, vaddr, size, tag, on_hit, payload=None):
        """Arm a watchpoint.  Returns the Watch, or ``None`` when the
        kernel refused (pin budget, overlap) -- monitoring degrades
        gracefully rather than breaking the program."""
        original = self.machine.read_virtual_raw(vaddr, size)
        try:
            self.kernel.watch_memory(vaddr, size)
        except PinLimitExceeded:
            self.pin_failures += 1
            return None
        except SyscallError:
            return None
        watch = Watch(
            vaddr=vaddr,
            size=size,
            tag=tag,
            original=original,
            on_hit=on_hit,
            started_cycle=self.machine.clock.cycles,
            payload=payload or {},
        )
        self._by_region[vaddr] = watch
        for vline in watch.line_bases():
            self._by_line[vline] = watch
        self.arm_count += 1
        return watch

    def unwatch(self, watch, restore=True):
        """Disarm; by default the saved original contents are restored."""
        if self._by_region.pop(watch.vaddr, None) is None:
            return
        for vline in watch.line_bases():
            self._by_line.pop(vline, None)
        self.kernel.disable_watch_memory(
            watch.vaddr,
            restore_data=watch.original if restore else None,
        )
        self.disarm_count += 1

    def is_watched(self, vaddr):
        vline = vaddr - (vaddr % CACHE_LINE_SIZE)
        return vline in self._by_line

    def watch_for(self, vaddr):
        vline = vaddr - (vaddr % CACHE_LINE_SIZE)
        return self._by_line.get(vline)

    def active_watches(self):
        return list(self._by_region.values())

    def unwatch_all(self, restore=True):
        for watch in self.active_watches():
            self.unwatch(watch, restore=restore)

    # ------------------------------------------------------------------
    # scrub coordination (Section 2.2.2)
    # ------------------------------------------------------------------
    def suspend_all(self):
        """Temporarily disarm everything (called before a scrub pass)."""
        self._suspended = self.active_watches()
        for watch in self._suspended:
            self.unwatch(watch, restore=True)

    def resume_all(self):
        """Re-arm the regions suspended for scrubbing."""
        suspended, self._suspended = self._suspended, []
        for watch in suspended:
            self.watch(watch.vaddr, watch.size, watch.tag, watch.on_hit,
                       payload=watch.payload)

    # ------------------------------------------------------------------
    # the user-level ECC fault handler
    # ------------------------------------------------------------------
    def _handle_fault(self, info):
        self.machine.clock.tick(self.machine.costs.safemem_handler_check)
        if not info.watched or info.vaddr is None:
            # Not one of ours: a genuine hardware error on an unwatched
            # line.  Decline; the kernel panics, as stock systems do.
            self.unclaimed_faults += 1
            return False
        vline = info.vaddr - (info.vaddr % CACHE_LINE_SIZE)
        watch = self._by_line.get(vline)
        if watch is None:
            self.unclaimed_faults += 1
            return False
        current = self.kernel.peek_watched_line(vline)
        expected = self._scramble_bytes(watch.original_line(vline))
        if current != expected:
            # The line does not carry the scramble signature: a real
            # hardware error struck a watched (non-critical) region.
            # Repair it from the saved original and keep watching.
            self._repair_line(watch, vline)
            self.hardware_errors_repaired += 1
            return True
        return watch.on_hit(watch, info)

    def _repair_line(self, watch, vline):
        # Rewrite the faulted line with the scrambled original so the
        # watchpoint stays armed with consistent contents: disarm the
        # whole region and re-arm it.
        self.unwatch(watch, restore=True)
        self.watch(watch.vaddr, watch.size, watch.tag, watch.on_hit,
                   payload=watch.payload)
