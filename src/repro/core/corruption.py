"""Memory-corruption detection (paper Section 4).

Buffer overflow: every allocation is laid out as

    [guard line(s)] [cache-line-aligned user buffer] [guard line(s)]

and the guard lines carry ECC watchpoints.  The first access to a guard
is, by construction, a bug; SafeMem "pauses program execution" -- here,
raises :class:`MonitorError` carrying the report.

Access to freed memory: a freed buffer is quarantined and its user
region stays watched until the quarantine recycles it (the paper's
"until the buffer is reallocated" window).

Uninitialized reads (the Section 4 extension): each fresh buffer line
is watched; the first *write* silently disarms that line, the first
*read* is reported.
"""

from collections import deque

from repro.common.constants import CACHE_LINE_SIZE, align_up
from repro.common.errors import InvalidFree, MonitorError
from repro.common.events import EventKind
from repro.core.reports import CorruptionKind, CorruptionReport
from repro.core.watcher import WatchTag


class BufferLayout:
    """Guarded layout of one allocation."""

    __slots__ = ("block_address", "block_size", "user_address",
                 "user_size", "user_span", "pad_bytes",
                 "left_watch", "right_watch", "uninit_watches")

    def __init__(self, block_address, block_size, user_address, user_size,
                 user_span, pad_bytes):
        self.block_address = block_address
        self.block_size = block_size
        self.user_address = user_address
        self.user_size = user_size
        self.user_span = user_span
        self.pad_bytes = pad_bytes
        self.left_watch = None
        self.right_watch = None
        self.uninit_watches = []

    @property
    def waste_bytes(self):
        """Padding + alignment bytes this layout spends on monitoring."""
        return self.block_size - self.user_size


class CorruptionDetector:
    """Guards allocations with ECC watchpoints; reports true positives."""

    def __init__(self, program, watcher, config, event_log):
        self.program = program
        self.allocator = program.allocator
        self.watcher = watcher
        self.config = config
        self.events = event_log
        self.reports = []
        self._layouts = {}
        self._quarantine = deque()
        self._quarantine_bytes = 0
        #: cumulative space accounting for Table 4.
        self.requested_bytes = 0
        self.monitor_waste_bytes = 0

    def register_metrics(self, metrics):
        """Publish ``safemem.corruption.*`` probes into a registry."""
        metrics.probe("safemem.corruption.reports",
                      lambda: len(self.reports), kind="counter")
        metrics.probe("safemem.corruption.quarantine_bytes",
                      lambda: self._quarantine_bytes, kind="gauge",
                      description="freed bytes held in quarantine")

    # ------------------------------------------------------------------
    # allocation path
    # ------------------------------------------------------------------
    def allocate(self, size, call_signature):
        """Guarded malloc.  Returns the user address."""
        pad = self.config.pad_lines * CACHE_LINE_SIZE
        user_span = align_up(size, CACHE_LINE_SIZE)
        block_size = pad + user_span + pad
        block = self.allocator.malloc(block_size,
                                      alignment=CACHE_LINE_SIZE)
        user = block + pad
        layout = BufferLayout(
            block_address=block,
            block_size=block_size,
            user_address=user,
            user_size=size,
            user_span=user_span,
            pad_bytes=pad,
        )
        layout.left_watch = self.watcher.watch(
            block, pad, WatchTag.PAD, self._on_guard_hit,
            payload={"layout": layout, "side": "left"},
        )
        layout.right_watch = self.watcher.watch(
            user + user_span, pad, WatchTag.PAD, self._on_guard_hit,
            payload={"layout": layout, "side": "right"},
        )
        if self.config.detect_uninit_reads:
            self._arm_uninit(layout)
        self._layouts[user] = layout
        self.requested_bytes += size
        self.monitor_waste_bytes += layout.waste_bytes
        return user

    def release(self, user_address):
        """Guarded free: disarm guards, quarantine + watch the buffer."""
        layout = self._layouts.pop(user_address, None)
        if layout is None:
            raise InvalidFree(
                f"free of address {user_address:#x} not returned by malloc"
            )
        for watch in (layout.left_watch, layout.right_watch):
            if watch is not None:
                self.watcher.unwatch(watch)
        self._disarm_uninit(layout)
        freed_watch = self.watcher.watch(
            layout.user_address, layout.user_span, WatchTag.FREED,
            self._on_freed_hit, payload={"layout": layout},
        )
        self._quarantine.append((layout, freed_watch))
        self._quarantine_bytes += layout.block_size
        self._drain_quarantine()

    def owns(self, user_address):
        return user_address in self._layouts

    def layout_of(self, user_address):
        return self._layouts.get(user_address)

    def live_layouts(self):
        return list(self._layouts.values())

    # ------------------------------------------------------------------
    # fault callbacks
    # ------------------------------------------------------------------
    def _on_guard_hit(self, watch, info):
        layout = watch.payload["layout"]
        report = CorruptionReport(
            kind=CorruptionKind.BUFFER_OVERFLOW,
            access_address=info.vaddr,
            access_type=info.access,
            buffer_address=layout.user_address,
            buffer_size=layout.user_size,
            detected_at_cycle=self.program.machine.clock.cycles,
            detail={"side": watch.payload["side"]},
        )
        self._report(report)
        return True  # unreachable: _report raises

    def _on_freed_hit(self, watch, info):
        layout = watch.payload["layout"]
        report = CorruptionReport(
            kind=CorruptionKind.USE_AFTER_FREE,
            access_address=info.vaddr,
            access_type=info.access,
            buffer_address=layout.user_address,
            buffer_size=layout.user_size,
            detected_at_cycle=self.program.machine.clock.cycles,
        )
        self._report(report)
        return True

    def _on_uninit_hit(self, watch, info):
        layout = watch.payload["layout"]
        if info.access == "write":
            # First write: legitimate initialisation.  Disarm this line
            # and let the store resume.
            self.watcher.unwatch(watch)
            layout.uninit_watches.remove(watch)
            return True
        report = CorruptionReport(
            kind=CorruptionKind.UNINITIALIZED_READ,
            access_address=info.vaddr,
            access_type=info.access,
            buffer_address=layout.user_address,
            buffer_size=layout.user_size,
            detected_at_cycle=self.program.machine.clock.cycles,
        )
        self._report(report)
        return True

    def _report(self, report):
        self.reports.append(report)
        self.events.emit(
            EventKind.CORRUPTION_REPORT,
            address=report.access_address,
            size=report.buffer_size,
            bug=report.kind.value,
        )
        # "SafeMem then simply pauses program execution to allow
        # programmers to attach an interactive debugger" (Sec 2.2.1).
        raise MonitorError(report)

    # ------------------------------------------------------------------
    # uninitialized-read watches (per line, so writes disarm lazily)
    # ------------------------------------------------------------------
    def _arm_uninit(self, layout):
        for vline in range(layout.user_address,
                           layout.user_address + layout.user_span,
                           CACHE_LINE_SIZE):
            watch = self.watcher.watch(
                vline, CACHE_LINE_SIZE, WatchTag.UNINIT,
                self._on_uninit_hit, payload={"layout": layout},
            )
            if watch is not None:
                layout.uninit_watches.append(watch)

    def _disarm_uninit(self, layout):
        for watch in list(layout.uninit_watches):
            self.watcher.unwatch(watch)
        layout.uninit_watches.clear()

    # ------------------------------------------------------------------
    # quarantine of freed buffers
    # ------------------------------------------------------------------
    def _drain_quarantine(self, drain_all=False):
        limit = 0 if drain_all else self.config.freed_quarantine_bytes
        while self._quarantine and self._quarantine_bytes > limit:
            layout, freed_watch = self._quarantine.popleft()
            if freed_watch is not None:
                self.watcher.unwatch(freed_watch)
            self.allocator.free(layout.block_address)
            self._quarantine_bytes -= layout.block_size

    def on_exit(self):
        """Disarm everything and return quarantined blocks to the heap."""
        self._drain_quarantine(drain_all=True)
        for layout in self.live_layouts():
            for watch in (layout.left_watch, layout.right_watch):
                if watch is not None:
                    self.watcher.unwatch(watch)
            self._disarm_uninit(layout)
