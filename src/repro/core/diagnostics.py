"""Operator-facing diagnostics for a running SafeMem instance.

Production tools need introspection: what groups exist, what their
lifetime statistics look like, what is currently watched.  The CLI's
``run --groups`` flag renders these tables.
"""

from repro.analysis.tables import render_table
from repro.common.constants import CYCLES_PER_SECOND


def group_summary_rows(leak_detector, limit=None):
    """Per-group statistics rows, largest live footprint first."""
    groups = sorted(
        leak_detector.groups,
        key=lambda g: g.live_bytes,
        reverse=True,
    )
    if limit is not None:
        groups = groups[:limit]
    rows = []
    for group in groups:
        rows.append((
            f"{group.size}B",
            f"{group.call_signature:#010x}",
            group.live_count,
            f"{group.live_bytes:,}",
            group.total_allocated,
            group.total_freed,
            f"{group.max_lifetime / CYCLES_PER_SECOND * 1000:.2f}ms",
            f"{group.stable_time / CYCLES_PER_SECOND * 1000:.2f}ms",
        ))
    return rows


def render_group_summary(leak_detector, limit=20):
    """A paper-terminology table of the detector's object groups."""
    rows = group_summary_rows(leak_detector, limit=limit)
    return render_table(
        f"Memory object groups ({len(leak_detector.groups)} total, "
        f"top {len(rows)} by live bytes)",
        ["size", "callsig", "live", "live bytes", "allocs", "frees",
         "max lifetime", "stable for"],
        rows,
    )


def watch_summary_rows(watcher):
    """Currently armed watchpoints."""
    rows = []
    for watch in watcher.active_watches():
        rows.append((
            f"{watch.vaddr:#010x}",
            watch.size,
            watch.tag.value,
            watch.started_cycle,
        ))
    return rows


def render_watch_summary(watcher):
    rows = watch_summary_rows(watcher)
    return render_table(
        f"Active ECC watchpoints ({len(rows)})",
        ["address", "bytes", "tag", "armed at cycle"],
        rows,
    )


def render_safemem_diagnostics(safemem, group_limit=20):
    """Everything an operator would want after (or during) a run."""
    sections = []
    if safemem.leak is not None:
        sections.append(render_group_summary(safemem.leak,
                                             limit=group_limit))
    sections.append(render_watch_summary(safemem.watcher))
    snapshot = safemem.telemetry()
    sections.append(render_table(
        f"SafeMem metrics (cycle {snapshot.cycle})",
        ["metric", "value"],
        sorted(snapshot.filtered("safemem.").items()),
    ))
    return "\n\n".join(sections)
