"""Allocation sampling: the always-on production mode.

The paper's SafeMem monitors *every* allocation, which is what its
Table 3 overheads price.  Real production detectors in the same
lineage (GWP-ASan, LeakGuard -- see PAPERS.md) instead sample a tiny
fraction of allocations per process and recover detection probability
from fleet scale: any single machine almost never pays for monitoring,
but across N machines with distinct sample seeds the bug is caught
with probability ``1 - (1 - p)**N`` per vulnerable object.

:class:`SamplingPolicy` is the declarative knob set (rate, seed, guard
budget, backoff); :class:`AllocationSampler` is the per-monitor runtime
that makes the per-allocation decision.  The decision is entirely
host-side -- it never touches the simulated clock -- so a policy of
rate 1.0 with no budget is *bit-identical* to the classic always-on
monitor (SafeMem skips the sampler object outright in that case; a
differential twin-machine test pins the equivalence).

Three mechanisms, mirroring GWP-ASan's design:

- **rate**: allocations are sampled on a geometric schedule with mean
  interval ``1/rate``, driven by a deterministic seeded RNG so fleet
  runs are reproducible per (policy, seed).
- **guard budget**: at most ``budget`` sampled allocations are alive
  (guarded/tracked) at once -- the analogue of GWP-ASan's fixed guard
  slot pool.  Freeing a sampled allocation reclaims its slot.
- **adaptive backoff**: when an allocation comes due while the budget
  is saturated, the effective sampling interval is multiplied by
  ``backoff`` (capped at ``max_backoff``) so a workload that pins its
  sampled objects stops burning RNG draws on a full pool; each
  reclaimed slot decays the backoff one step toward 1.0.
"""

import random
from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError

#: Large odd multipliers decorrelating the per-machine sampling seed
#: stream from the (base_seed + index) workload seed stream.
_SEED_STREAM_MULTIPLIER = 0x9E3779B1  # 2**32 / golden ratio, odd
_SEED_INDEX_STRIDE = 7919            # 1000th prime


def machine_sample_seed(base_seed, index):
    """Sampling seed for fleet machine ``index`` under ``base_seed``.

    Deliberately a *different stream* from the workload seed
    (``base_seed + index``): two fleet machines replaying identical
    traffic must still sample different allocations, which is where a
    sampled fleet's detection probability comes from.  Deterministic
    and pinned by a test, so fleet runs are reproducible.
    """
    mixed = (base_seed + 1) * _SEED_STREAM_MULTIPLIER \
        + index * _SEED_INDEX_STRIDE
    return mixed & 0x7FFF_FFFF


@dataclass(frozen=True)
class SamplingPolicy:
    """Declarative sampling configuration (JSON-able, picklable)."""

    #: fraction of allocations eligible for monitoring, in [0.0, 1.0].
    #: 1.0 monitors everything (the paper's mode); 0.0 never samples.
    rate: float = 1.0
    #: RNG seed for the geometric sampling schedule.
    seed: int = 0
    #: max concurrently live sampled allocations (guard pool slots);
    #: None means unbounded.
    budget: int = None
    #: interval multiplier applied when the budget saturates.
    backoff: float = 2.0
    #: cap on the accumulated backoff factor.
    max_backoff: float = 64.0

    def validate(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"sampling rate must be in [0.0, 1.0], got {self.rate}")
        if self.budget is not None and self.budget < 1:
            raise ConfigurationError(
                f"sampling budget must be >= 1 (or None), got "
                f"{self.budget}")
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"sampling backoff must be >= 1.0, got {self.backoff}")
        if self.max_backoff < self.backoff:
            raise ConfigurationError(
                f"max_backoff ({self.max_backoff}) must be >= backoff "
                f"({self.backoff})")
        return self

    @property
    def always_on(self):
        """True when this policy degenerates to classic SafeMem.

        Rate 1.0 with no budget never skips an allocation, so the
        monitor bypasses the sampler entirely and the hot path is the
        historic one, instruction for instruction.
        """
        return self.rate >= 1.0 and self.budget is None

    def for_machine(self, index):
        """The per-fleet-machine policy: same knobs, derived seed."""
        return replace(self,
                       seed=machine_sample_seed(self.seed, index))

    def sampler(self):
        """Build the runtime decision state for one monitor."""
        return AllocationSampler(self)

    def to_dict(self):
        return {"rate": self.rate, "seed": self.seed,
                "budget": self.budget, "backoff": self.backoff,
                "max_backoff": self.max_backoff}

    @classmethod
    def from_dict(cls, payload):
        return cls(**payload).validate()


class AllocationSampler:
    """Per-monitor sampling state: countdown, guard pool, backoff.

    ``should_sample()`` is called once per allocation *before* any
    monitoring work; everything here is host-side bookkeeping (integer
    countdown decrement on the hot path) and never ticks the simulated
    clock, so unsampled allocations cost exactly what a native run
    pays.
    """

    def __init__(self, policy):
        self.policy = policy.validate()
        self._rng = random.Random(policy.seed)
        #: decision counters, published as ``safemem.sampling.*``.
        self.sampled = 0
        self.skipped = 0
        self.budget_exhausted = 0
        #: currently occupied guard pool slots.
        self.live = 0
        #: accumulated interval multiplier (1.0 = no backoff).
        self.backoff_factor = 1.0
        self._countdown = self._draw()

    @property
    def base_interval(self):
        """Mean allocations between samples, or None at rate 0."""
        if self.policy.rate <= 0.0:
            return None
        return 1.0 / self.policy.rate

    @property
    def effective_interval(self):
        """Backoff-adjusted mean sampling interval (gauge value)."""
        base = self.base_interval
        if base is None:
            return None
        return base * self.backoff_factor

    def _draw(self):
        """Allocations until the next sample comes due (geometric)."""
        interval = self.effective_interval
        if interval is None:
            return -1  # rate 0.0: never due
        if interval <= 1.0:
            return 1   # rate 1.0 (no backoff): every allocation
        return max(1, int(self._rng.expovariate(1.0 / interval)) + 1)

    def should_sample(self):
        """Decide one allocation; True means it enters the guard pool."""
        countdown = self._countdown
        if countdown < 0:
            self.skipped += 1
            return False
        countdown -= 1
        if countdown > 0:
            self._countdown = countdown
            self.skipped += 1
            return False
        # This allocation is due.  A saturated guard pool skips it and
        # backs the schedule off; otherwise it takes a slot.
        if self.policy.budget is not None \
                and self.live >= self.policy.budget:
            self.budget_exhausted += 1
            self.skipped += 1
            self.backoff_factor = min(
                self.backoff_factor * self.policy.backoff,
                self.policy.max_backoff)
            self._countdown = self._draw()
            return False
        self.sampled += 1
        self.live += 1
        self._countdown = self._draw()
        return True

    def release_slot(self):
        """A sampled allocation was freed: reclaim its guard slot.

        Reclamation also decays the adaptive backoff one step, so a
        workload that churns through its pool recovers the configured
        rate instead of staying backed off forever.
        """
        if self.live > 0:
            self.live -= 1
        if self.backoff_factor > 1.0:
            self.backoff_factor = max(
                1.0, self.backoff_factor / self.policy.backoff)

    def register_metrics(self, metrics):
        """Publish ``safemem.sampling.*`` probes into a registry."""
        metrics.probe("safemem.sampling.sampled",
                      lambda: self.sampled, kind="counter",
                      description="allocations admitted to monitoring")
        metrics.probe("safemem.sampling.skipped",
                      lambda: self.skipped, kind="counter",
                      description="allocations that bypassed the "
                                  "monitor entirely")
        metrics.probe("safemem.sampling.budget_exhausted",
                      lambda: self.budget_exhausted, kind="counter",
                      description="due samples dropped on a full "
                                  "guard pool")
        metrics.probe("safemem.sampling.live_slots",
                      lambda: self.live, kind="gauge",
                      description="occupied guard pool slots")
        # Fleet merges sum gauge values, so the probe must stay
        # numeric: 0.0 stands in for "never samples" (rate 0.0).
        metrics.probe("safemem.sampling.backoff_interval",
                      lambda: self.effective_interval or 0.0,
                      kind="gauge",
                      description="current mean allocations between "
                                  "samples (base interval x backoff; "
                                  "0 = rate 0.0, never samples)")
