"""SafeMem core: the paper's contribution."""

from repro.core.config import (
    SafeMemConfig,
    corruption_only_config,
    full_config,
    leak_only_config,
)
from repro.core.corruption import BufferLayout, CorruptionDetector
from repro.core.diagnostics import (
    render_group_summary,
    render_safemem_diagnostics,
    render_watch_summary,
)
from repro.core.profiler import LifetimeProfiler
from repro.core.groups import GroupTable, LiveObject, MemoryObjectGroup
from repro.core.leak import LeakDetector, SuspectRecord
from repro.core.reports import (
    CorruptionKind,
    CorruptionReport,
    LeakReport,
    PrunedSuspect,
)
from repro.core.safemem import SafeMem
from repro.core.watcher import EccWatchManager, Watch, WatchTag

__all__ = [
    "SafeMemConfig",
    "corruption_only_config",
    "full_config",
    "leak_only_config",
    "BufferLayout",
    "CorruptionDetector",
    "render_group_summary",
    "render_safemem_diagnostics",
    "render_watch_summary",
    "LifetimeProfiler",
    "GroupTable",
    "LiveObject",
    "MemoryObjectGroup",
    "LeakDetector",
    "SuspectRecord",
    "CorruptionKind",
    "CorruptionReport",
    "LeakReport",
    "PrunedSuspect",
    "SafeMem",
    "EccWatchManager",
    "Watch",
    "WatchTag",
]
