"""SafeMem configuration: detection thresholds and feature switches.

All time-valued parameters are in *CPU seconds* of the monitored
program (the paper measures lifetimes in the program's CPU time,
Section 3.1); they are converted to cycles once at attach time.
"""

from dataclasses import dataclass

from repro.common.clock import seconds_to_cycles
from repro.common.errors import ConfigurationError
from repro.core.sampling import SamplingPolicy


@dataclass
class SafeMemConfig:
    """Tunable knobs of the SafeMem tool (paper Sections 3-4)."""

    # -- feature switches ----------------------------------------------
    #: enable the memory-leak detector (Section 3).
    detect_leaks: bool = True
    #: enable the memory-corruption detector (Section 4).
    detect_corruption: bool = True
    #: enable the uninitialized-read extension the paper sketches at the
    #: end of Section 4 (watch fresh buffers; first write disarms, first
    #: read reports).
    detect_uninit_reads: bool = False

    # -- leak detection -------------------------------------------------
    #: minimum CPU time between outlier-detection scans (the paper's
    #: "checking-period"); scans only ever run at malloc/free time.
    checking_period_s: float = 0.005
    #: CPU time before the first scan ("triggered after a warm-up
    #: period", Section 3.2.2).
    warmup_s: float = 0.01
    #: live-object count above which a never-freeing group becomes an
    #: ALeak candidate.
    aleak_live_threshold: int = 64
    #: "the last allocation time is very recent": a group only counts as
    #: actively growing if it allocated within this window.
    aleak_recent_window_s: float = 0.01
    #: an object becomes an SLeak suspect once it is alive for more than
    #: this multiple of the group's expected maximal lifetime (paper: 2).
    sleak_lifetime_multiplier: float = 2.0
    #: ... and only if the group's maximal lifetime has been stable for
    #: at least this long (low confidence otherwise, Section 3.2.2).
    sleak_stable_time_s: float = 0.005
    #: deallocations within (1 + tolerance) * max_lifetime do not reset
    #: the stability clock ("within some tolerable range").
    lifetime_tolerance: float = 0.25
    #: a watched suspect untouched for this long is reported as a leak.
    leak_confirm_s: float = 0.02
    #: only the "top few oldest" objects per group are examined/watched.
    max_suspects_per_group: int = 16
    #: cap on concurrently ECC-watched leak suspects (pin budget guard).
    max_watched_suspects: int = 128
    #: how objects are grouped: "size_callsig" (the paper's choice),
    #: "size" (merge across call sites), or "callsig" (merge across
    #: sizes).  Exposed for the grouping-key ablation.
    grouping: str = "size_callsig"

    # -- corruption detection ---------------------------------------------
    #: guard lines on each side of every buffer (paper uses one line).
    pad_lines: int = 1
    #: freed buffers stay quarantined (and watched) until this many bytes
    #: accumulate, then the oldest are recycled, mirroring the paper's
    #: "until the buffer is reallocated" window.
    freed_quarantine_bytes: int = 512 * 1024

    # -- production sampling ----------------------------------------------
    #: allocation sampling policy (GWP-ASan-style production mode).
    #: None -- the default -- monitors every allocation exactly like
    #: the paper; a :class:`~repro.core.sampling.SamplingPolicy` with
    #: rate < 1.0 or a guard budget admits only sampled allocations to
    #: the detectors, leaving the rest on the native allocation path.
    sampling: SamplingPolicy = None

    def validate(self):
        """Raise :class:`ConfigurationError` on nonsensical settings."""
        if not (self.detect_leaks or self.detect_corruption
                or self.detect_uninit_reads):
            raise ConfigurationError("SafeMem with every detector disabled")
        if self.checking_period_s <= 0:
            raise ConfigurationError("checking_period_s must be positive")
        if self.sleak_lifetime_multiplier <= 1.0:
            raise ConfigurationError(
                "sleak_lifetime_multiplier must exceed 1.0"
            )
        if self.pad_lines < 1:
            raise ConfigurationError("pad_lines must be at least 1")
        if self.lifetime_tolerance < 0:
            raise ConfigurationError("lifetime_tolerance must be >= 0")
        if self.max_suspects_per_group < 1:
            raise ConfigurationError("max_suspects_per_group must be >= 1")
        if self.grouping not in ("size_callsig", "size", "callsig"):
            raise ConfigurationError(
                f"unknown grouping mode: {self.grouping!r}"
            )
        if self.sampling is not None:
            self.sampling.validate()
        return self

    # ------------------------------------------------------------------
    # cycle-domain views (computed once at attach)
    # ------------------------------------------------------------------
    @property
    def checking_period_cycles(self):
        return seconds_to_cycles(self.checking_period_s)

    @property
    def warmup_cycles(self):
        return seconds_to_cycles(self.warmup_s)

    @property
    def aleak_recent_window_cycles(self):
        return seconds_to_cycles(self.aleak_recent_window_s)

    @property
    def sleak_stable_time_cycles(self):
        return seconds_to_cycles(self.sleak_stable_time_s)

    @property
    def leak_confirm_cycles(self):
        return seconds_to_cycles(self.leak_confirm_s)


def leak_only_config(**overrides):
    """Config with only the leak detector enabled (Table 3's "Only ML")."""
    return SafeMemConfig(
        detect_leaks=True, detect_corruption=False, **overrides
    ).validate()


def corruption_only_config(**overrides):
    """Config with only corruption detection (Table 3's "Only MC")."""
    return SafeMemConfig(
        detect_leaks=False, detect_corruption=True, **overrides
    ).validate()


def full_config(**overrides):
    """Both detectors on, as in the paper's headline "ML + MC" runs."""
    return SafeMemConfig(
        detect_leaks=True, detect_corruption=True, **overrides
    ).validate()
