"""Bug reports produced by SafeMem (and by the baselines)."""

from dataclasses import dataclass, field
from enum import Enum


class CorruptionKind(Enum):
    """The corruption classes SafeMem detects (Section 4)."""

    BUFFER_OVERFLOW = "buffer_overflow"
    USE_AFTER_FREE = "use_after_free"
    UNINITIALIZED_READ = "uninitialized_read"


@dataclass
class CorruptionReport:
    """An illegal access caught by a guard watchpoint.

    SafeMem has *zero* false positives here by construction: "any
    accesses to padding areas or freed memory buffers are true memory
    corruption" (Section 6.4).
    """

    kind: CorruptionKind
    access_address: int
    access_type: str
    buffer_address: int
    buffer_size: int
    detected_at_cycle: int
    detail: dict = field(default_factory=dict)

    def __str__(self):
        return (
            f"[SafeMem] {self.kind.value}: {self.access_type} of "
            f"{self.access_address:#010x} hit guard of buffer "
            f"{self.buffer_address:#010x} (size {self.buffer_size}) "
            f"at cycle {self.detected_at_cycle}"
        )


@dataclass
class LeakReport:
    """A continuous-leak report: a suspect that stayed untouched."""

    object_address: int
    object_size: int
    group_size: int
    call_signature: int
    kind: str  # "aleak" or "sleak"
    allocated_at_cycle: int
    reported_at_cycle: int

    def __str__(self):
        return (
            f"[SafeMem] memory leak ({self.kind}): object "
            f"{self.object_address:#010x} of size {self.object_size} "
            f"(group size={self.group_size}, "
            f"callsig={self.call_signature:#010x}) allocated at cycle "
            f"{self.allocated_at_cycle}, reported at cycle "
            f"{self.reported_at_cycle}"
        )


@dataclass
class PrunedSuspect:
    """A suspect that was accessed again -- a pruned false positive."""

    object_address: int
    group_size: int
    call_signature: int
    kind: str
    watched_for_cycles: int

    def __str__(self):
        return (
            f"[SafeMem] pruned false positive ({self.kind}): "
            f"{self.object_address:#010x} touched after "
            f"{self.watched_for_cycles} watched cycles"
        )
