"""Memory object groups and per-group lifetime statistics.

Objects are grouped by ``(size, call-stack signature)`` (Section 3).
Each group tracks:

- the current **maximal lifetime** and how long it has been **stable**
  (``stable_time``) -- the basis of SLeak detection,
- live objects in allocation order (a doubly-linked list in the paper;
  an insertion-ordered dict here), so "the top few oldest" are cheap to
  find,
- usage counters (live count, total bytes, last allocation time) -- the
  basis of ALeak detection.
"""

from dataclasses import dataclass, field


@dataclass
class LiveObject:
    """One live allocation as tracked by the leak detector."""

    address: int
    size: int
    alloc_cycle: int
    #: leak-detector state machine: "" (normal), "suspect" (watched),
    #: "reported" (leak already reported).
    state: str = ""
    watch_started_cycle: int = 0
    #: times this object was pruned (touched while watched).
    prune_count: int = 0

    def age(self, now):
        return now - self.alloc_cycle


class MemoryObjectGroup:
    """All bookkeeping for one ``(size, callsig)`` object group."""

    def __init__(self, size, call_signature, tolerance=0.25):
        self.size = size
        self.call_signature = call_signature
        self.tolerance = tolerance
        #: insertion-ordered: oldest allocation first.
        self._live = {}
        #: objects already reported as leaks -- still allocated, but
        #: moved aside so they stop occupying the "oldest live" window.
        self._retired = {}
        self.live_count = 0
        self.live_bytes = 0
        self.total_allocated = 0
        self.total_freed = 0
        self.last_alloc_cycle = 0
        #: current maximal observed lifetime (cycles); 0 = nothing freed.
        self.max_lifetime = 0
        #: accumulated CPU time the maximum has been stable.
        self.stable_time = 0
        #: cycle of the last stability-clock update.
        self._last_stat_cycle = 0
        #: cycle at which max_lifetime last *grew* beyond tolerance --
        #: this group's WarmUpTime sample for Figure 3.
        self.last_max_update_cycle = 0
        #: per-group ALeak threshold backoff (doubles on each pruned
        #: ALeak false positive so the group is not re-flagged at once).
        self.aleak_backoff = 1

    @property
    def key(self):
        return (self.size, self.call_signature)

    @property
    def ever_freed(self):
        return self.total_freed > 0

    # ------------------------------------------------------------------
    # event recording (Step 1 of the detection process)
    # ------------------------------------------------------------------
    def record_alloc(self, address, size, now):
        """Register a new live object; returns the LiveObject."""
        obj = LiveObject(address=address, size=size, alloc_cycle=now)
        self._live[address] = obj
        self.live_count += 1
        self.live_bytes += size
        self.total_allocated += 1
        self.last_alloc_cycle = now
        return obj

    def record_free(self, address, now):
        """Unregister a live object and update lifetime statistics.

        Returns the removed LiveObject (or None for an address this
        group does not own -- the caller indexes objects globally).
        """
        obj = self._live.pop(address, None)
        if obj is None:
            obj = self._retired.pop(address, None)
        if obj is None:
            return None
        self.live_count -= 1
        self.live_bytes -= obj.size
        self.total_freed += 1
        self._observe_lifetime(obj.age(now), now)
        return obj

    def _observe_lifetime(self, lifetime, now):
        ceiling = self.max_lifetime * (1.0 + self.tolerance)
        if self.max_lifetime and lifetime <= ceiling:
            # Within the tolerable range: the maximum stays and its
            # stability clock accumulates the elapsed CPU time.
            self.stable_time += now - self._last_stat_cycle
        else:
            # A new (or first) maximum: reset stability.
            self.max_lifetime = max(self.max_lifetime, lifetime)
            self.stable_time = 0
            self.last_max_update_cycle = now
        self._last_stat_cycle = now

    # ------------------------------------------------------------------
    # queries used by the outlier detector (Step 2)
    # ------------------------------------------------------------------
    def oldest_live(self, count):
        """The ``count`` oldest live objects (allocation order)."""
        out = []
        for obj in self._live.values():
            out.append(obj)
            if len(out) == count:
                break
        return out

    def live_objects(self):
        return list(self._live.values()) + list(self._retired.values())

    def retire(self, obj):
        """Move a reported object out of the oldest-live window."""
        if obj.address in self._live:
            del self._live[obj.address]
            self._retired[obj.address] = obj

    def refresh_object(self, obj, now):
        """Move a pruned suspect to the back of the allocation order and
        restart its lifetime (paper Section 3.2.3: "this object's
        allocation time is reset to the current time")."""
        if obj.address in self._live:
            del self._live[obj.address]
            obj.alloc_cycle = now
            obj.state = ""
            self._live[obj.address] = obj

    def raise_max_lifetime(self, lifetime, now):
        """Adopt a pruned suspect's observed lifetime as the new maximum
        ("updated to be the current living time of this suspect")."""
        if lifetime > self.max_lifetime:
            self.max_lifetime = lifetime
            self.stable_time = 0
            self.last_max_update_cycle = now
            self._last_stat_cycle = now


class GroupTable:
    """All groups of one monitored program plus a global address index."""

    def __init__(self, tolerance=0.25):
        self.tolerance = tolerance
        self._groups = {}
        self._by_address = {}

    def __len__(self):
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups.values())

    def group_for(self, size, call_signature):
        key = (size, call_signature)
        group = self._groups.get(key)
        if group is None:
            group = MemoryObjectGroup(size, call_signature,
                                      tolerance=self.tolerance)
            self._groups[key] = group
        return group

    def on_alloc(self, address, size, call_signature, now, key=None):
        """Register an allocation.

        ``key`` overrides the group key (used by the grouping-key
        ablation); the object itself always records its real size.
        """
        group_size, group_sig = key if key is not None \
            else (size, call_signature)
        group = self.group_for(group_size, group_sig)
        obj = group.record_alloc(address, size, now)
        self._by_address[address] = (group, obj)
        return group, obj

    def on_free(self, address, now):
        """Returns ``(group, obj)`` or ``(None, None)`` for foreign frees."""
        entry = self._by_address.pop(address, None)
        if entry is None:
            return None, None
        group, _obj = entry
        obj = group.record_free(address, now)
        return group, obj

    def lookup_address(self, address):
        return self._by_address.get(address, (None, None))

    def groups(self):
        return list(self._groups.values())
