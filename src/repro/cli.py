"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``table2`` / ``table3`` / ``table4`` / ``table5`` / ``figure3``
  regenerate one experiment and print the paper-style table;
- ``report``  runs everything and prints a combined report;
- ``run``     runs one workload under one monitor and prints a summary;
- ``stats``   runs one workload and prints its metrics snapshot;
- ``list``    shows the available workloads and monitors.

``run`` and ``stats`` accept ``--emit-metrics PATH`` to write the run's
registry snapshot as a ``repro.metrics/v1`` JSON document.
"""

import argparse
import sys

from repro.analysis.experiments import (
    experiment_figure3,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.analysis.report import generate_report
from repro.analysis.runner import (
    MONITOR_FACTORIES,
    overhead_percent,
    run_workload,
    slowdown_factor,
)
from repro.obs.export import (
    render_metrics_table,
    render_span_tree,
    write_metrics_json,
)
from repro.workloads.registry import WORKLOADS, all_workload_names


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeMem (HPCA 2005) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for table in ("table2", "table3", "table4", "table5", "figure3"):
        table_parser = sub.add_parser(
            table, help=f"regenerate the paper's {table}"
        )
        if table in ("table3", "table4"):
            table_parser.add_argument(
                "--requests", type=int, default=250,
                help="requests per overhead run (default 250)",
            )

    report_parser = sub.add_parser(
        "report", help="run every experiment, print a combined report"
    )
    report_parser.add_argument("--requests", type=int, default=250)

    validate_parser = sub.add_parser(
        "validate",
        help="re-verify every reproduction claim (PASS/FAIL matrix)",
    )
    validate_parser.add_argument("--requests", type=int, default=250)

    run_parser = sub.add_parser(
        "run", help="run one workload under one monitor"
    )
    run_parser.add_argument("workload", choices=all_workload_names())
    run_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    run_parser.add_argument("--buggy", action="store_true",
                            help="use the bug-triggering input")
    run_parser.add_argument("--requests", type=int, default=None)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--groups", action="store_true",
        help="print SafeMem diagnostics (object groups, watches)",
    )
    run_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics as repro.metrics/v1 JSON",
    )

    stats_parser = sub.add_parser(
        "stats",
        help="run one workload and print its metrics snapshot",
    )
    stats_parser.add_argument("workload", choices=all_workload_names())
    stats_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    stats_parser.add_argument("--buggy", action="store_true",
                              help="use the bug-triggering input")
    stats_parser.add_argument("--requests", type=int, default=None)
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument(
        "--prefix", default=None,
        help="only metrics in one namespace (e.g. mmu. or safemem.)",
    )
    stats_parser.add_argument(
        "--spans", action="store_true",
        help="also print the span flight recorder",
    )
    stats_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics as repro.metrics/v1 JSON",
    )

    sub.add_parser("list", help="list workloads and monitors")
    return parser


def _emit_metrics(path, result, out):
    """Write one run's delta snapshot through the exporter schema."""
    document = write_metrics_json(
        path,
        result.metrics,
        spans=result.machine.tracer.flight_record(),
        meta={
            "workload": result.workload,
            "monitor": result.monitor_name,
            "buggy": result.buggy,
            "requests": result.requests,
        },
    )
    out.write(f"metrics:   {path} "
              f"({len(document['metrics'])} metrics, "
              f"{len(document.get('spans', []))} spans)\n")


def command_run(args, out):
    result = run_workload(args.workload, args.monitor,
                          buggy=args.buggy, requests=args.requests,
                          seed=args.seed)
    out.write(f"workload:  {args.workload} "
              f"({'buggy' if args.buggy else 'normal'} input)\n")
    out.write(f"monitor:   {args.monitor}\n")
    out.write(f"requests:  {result.truth.requests_completed}"
              f"/{result.requests}\n")
    out.write(f"CPU:       {result.cycles:,} cycles "
              f"({result.cpu_seconds:.4f} s simulated)\n")

    stopped_early = result.truth.detection is not None
    if args.monitor != "native" and not stopped_early:
        native = run_workload(args.workload, "native",
                              buggy=args.buggy, requests=args.requests,
                              seed=args.seed)
        out.write(
            f"overhead:  +{overhead_percent(result.cycles, native.cycles):.2f}% "
            f"({slowdown_factor(result.cycles, native.cycles):.2f}x)\n"
        )

    truth = result.truth
    if truth.leaked_addresses:
        out.write(f"ground truth: {len(truth.leaked_addresses)} objects "
                  "leaked\n")
    if truth.corruption:
        kind, address = truth.corruption
        out.write(f"ground truth: {kind} at {address:#x}\n")

    monitor = result.monitor
    if hasattr(monitor, "leak_reports") and monitor.leak_reports:
        out.write(f"leak reports: {len(monitor.leak_reports)}\n")
        for report in monitor.leak_reports[:5]:
            out.write(f"  {report}\n")
    if hasattr(monitor, "corruption_reports") and \
            monitor.corruption_reports:
        out.write(f"corruption reports: "
                  f"{len(monitor.corruption_reports)}\n")
        for report in monitor.corruption_reports[:5]:
            out.write(f"  {report}\n")
    if truth.detection is not None:
        out.write(f"stopped at detection: {truth.detection.report}\n")

    if getattr(args, "groups", False) and hasattr(monitor, "watcher"):
        from repro.core.diagnostics import render_safemem_diagnostics
        out.write("\n" + render_safemem_diagnostics(monitor) + "\n")
    if args.emit_metrics:
        _emit_metrics(args.emit_metrics, result, out)
    return 0


def command_stats(args, out):
    result = run_workload(args.workload, args.monitor,
                          buggy=args.buggy, requests=args.requests,
                          seed=args.seed)
    title = (f"{args.workload}/{args.monitor} "
             f"({'buggy' if args.buggy else 'normal'} input)")
    out.write(render_metrics_table(result.metrics, title=title,
                                   prefix=args.prefix) + "\n")
    if args.spans:
        spans = result.machine.tracer.flight_record()
        out.write(f"\nrecent spans ({len(spans)}):\n")
        out.write(render_span_tree(spans) + "\n")
    if args.emit_metrics:
        _emit_metrics(args.emit_metrics, result, out)
    return 0


def command_list(out):
    out.write("workloads (paper Table 1):\n")
    for name, factory in WORKLOADS.items():
        out.write(f"  {name:<9} {factory.loc:>7,} LOC  "
                  f"{factory.description:<28} bug={factory.bug}\n")
    out.write("\nmonitors:\n")
    for name in sorted(MONITOR_FACTORIES):
        out.write(f"  {name}\n")
    return 0


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "table2":
        out.write(experiment_table2().render() + "\n")
    elif args.command == "table3":
        out.write(experiment_table3(requests=args.requests).render() + "\n")
    elif args.command == "table4":
        out.write(experiment_table4(requests=args.requests).render() + "\n")
    elif args.command == "table5":
        out.write(experiment_table5().render() + "\n")
    elif args.command == "figure3":
        out.write(experiment_figure3().render() + "\n")
    elif args.command == "report":
        generate_report(requests=args.requests, stream=out)
    elif args.command == "validate":
        from repro.analysis.claims import render_validation, validate
        results = validate(requests=args.requests)
        out.write(render_validation(results) + "\n")
        return 0 if all(r.passed for r in results) else 1
    elif args.command == "run":
        return command_run(args, out)
    elif args.command == "stats":
        return command_stats(args, out)
    elif args.command == "list":
        return command_list(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
