"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``table2`` / ``table3`` / ``table4`` / ``table5`` / ``figure3``
  regenerate one experiment and print the paper-style table;
- ``report``  runs everything and prints a combined report;
- ``validate`` re-verifies every reproduction claim (PASS/FAIL
  matrix); ``--jobs N`` shards the experiments over worker processes,
  a content-keyed result cache makes no-op re-runs near-instant
  (``--no-cache`` forces recomputation) -- see ``docs/VALIDATION.md``;
- ``fleet``   runs M concurrent simulated machines of one workload and
  aggregates their telemetry across the fleet (``--sample-every`` adds
  the sampling profiler + alert engine to every machine);
- ``monitor`` runs one workload under live production monitoring: a
  cycle-driven sampling profiler, declarative alert rules, a periodic
  top-style panel, and an optional rotating ``repro.events/v1`` JSONL
  stream (``--stream``);
- ``replay``  re-runs a forensic bundle's recorded workload
  deterministically to an optional breakpoint and differentially
  verifies the event stream against the recording;
- ``resume``  resumes a ``repro.checkpoint/v1`` run: re-executes the
  recorded run from its seed, verifies the reconstructed state
  bit-exactly at the recorded request boundary, and continues to the
  requested horizon (``--checkpoint-every`` writes the checkpoints);
- ``history`` renders -- and, given several files, merges -- tiered
  ``repro.history/v1`` metric history (``--history`` records it);
- ``inspect`` summarizes a ``repro.dump/v1`` bundle, a
  ``repro.metrics/v1`` snapshot, a ``repro.events/v1`` stream, a
  ``repro.checkpoint/v1`` document, or a ``repro.history/v1``
  document;
- ``diff``    compares two bundles / metrics snapshots (counter
  deltas, histogram shift, alerts appearing/disappearing);
- ``run``     runs one workload under one monitor and prints a summary;
- ``stats``   runs one workload and prints its metrics snapshot;
- ``list``    shows the available workloads, monitors, and chipset
  profiles.

``run``, ``monitor``, ``fleet``, and ``validate`` all mount the same
monitoring-stack argument group (one argparse parent, one
:class:`~repro.obs.stack.MonitorStackConfig` built by
``MonitorStackConfig.from_args``): ``--sample-rate``/``--sample-seed``/
``--guard-budget`` put the monitor in sampled production mode,
``--sample-every``/``--rules`` run the sampling profiler + alert
engine, ``--trend``/``--trend-window`` add streaming leak-trend
analytics (slope/changepoint detectors feeding ``trend``-kind alert
rules), ``--stream`` ships ``repro.events/v1`` records, and
``--dump-dir``/``--dump-on-alert`` arm forensic ``repro.dump/v1``
recording -- identically spelled everywhere (see
``docs/ARCHITECTURE.md``).  ``run``, ``stats``, ``validate``, and
``fleet`` accept ``--emit-metrics PATH`` to write the run's (merged)
registry snapshot as a ``repro.metrics/v1`` JSON document.
"""

import argparse
import pathlib
import sys

from repro.analysis.experiments import (
    experiment_figure3,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.analysis.report import generate_report
from repro.analysis.runner import (
    MONITOR_FACTORIES,
    overhead_percent,
    run_workload,
    slowdown_factor,
)
from repro.obs.export import (
    render_metrics_table,
    render_span_tree,
    write_metrics_json,
)
from repro.obs.stack import (
    DEFAULT_SAMPLE_EVERY,
    MonitorStackConfig,
    add_monitoring_arguments,
    build_monitor_stack,
)
from repro.workloads.registry import WORKLOADS


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeMem (HPCA 2005) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # One monitoring flag set, shared verbatim by every command that
    # runs workloads; each command turns it into a MonitorStackConfig.
    monitoring = add_monitoring_arguments()

    for table in ("table2", "table3", "table4", "table5", "figure3"):
        table_parser = sub.add_parser(
            table, help=f"regenerate the paper's {table}"
        )
        if table in ("table3", "table4"):
            table_parser.add_argument(
                "--requests", type=int, default=250,
                help="requests per overhead run (default 250)",
            )

    report_parser = sub.add_parser(
        "report", help="run every experiment, print a combined report"
    )
    report_parser.add_argument("--requests", type=int, default=250)

    validate_parser = sub.add_parser(
        "validate",
        help="re-verify every reproduction claim (PASS/FAIL matrix)",
        parents=[monitoring],
    )
    validate_parser.add_argument("--requests", type=int, default=250)
    validate_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes to shard the experiments over "
             "(default: one per CPU)",
    )
    validate_parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every experiment, ignoring the result cache",
    )
    validate_parser.add_argument(
        "--cache-dir", default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or "
             "./.repro-cache)",
    )
    validate_parser.add_argument(
        "--write-results", action="store_true",
        help="also render every experiment into --results-dir "
             "(the benchmark suite's results/ layout)",
    )
    validate_parser.add_argument("--results-dir", default="results")
    validate_parser.add_argument(
        "--write-experiments-md", action="store_true",
        help="rewrite the claim matrix block in EXPERIMENTS.md in "
             "place",
    )
    validate_parser.add_argument(
        "--experiments-md", default=None,
        help="path to EXPERIMENTS.md (default: the repo checkout's)",
    )
    validate_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the merged fleet telemetry as repro.metrics/v1 "
             "JSON (covers freshly-run experiments only)",
    )

    fleet_parser = sub.add_parser(
        "fleet",
        help="run M concurrent simulated machines of one workload and "
             "aggregate their telemetry",
        parents=[monitoring],
    )
    fleet_parser.add_argument("workload", choices=sorted(WORKLOADS))
    fleet_parser.add_argument(
        "--machines", type=int, default=4,
        help="simulated machines to run (default 4)",
    )
    fleet_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    fleet_parser.add_argument("--buggy", action="store_true",
                              help="use the bug-triggering input")
    fleet_parser.add_argument("--requests", type=int, default=None)
    fleet_parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; machine i runs the workload with seed base+i "
             "(sampling seeds are derived separately per machine)",
    )
    fleet_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: one per CPU)",
    )
    fleet_parser.add_argument(
        "--rate-curve", metavar="R,R,...", default=None,
        help="sweep these allocation sampling rates over the fleet "
             "and print the detection-probability-vs-overhead curve "
             "(runs sampled SafeMem on the buggy input; Figure 4)",
    )
    fleet_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the merged fleet telemetry as repro.metrics/v1 "
             "JSON",
    )
    fleet_parser.add_argument(
        "--emit-history", metavar="PATH", default=None,
        help="write the fleet-merged tiered history as "
             "repro.history/v1 JSON (requires --history)",
    )

    monitor_parser = sub.add_parser(
        "monitor",
        help="run one workload under live production monitoring "
             "(sampling profiler + alerts + streaming)",
        # Same flag set, but the monitor command's whole point is the
        # profiler: its --sample-every defaults on instead of off.
        parents=[add_monitoring_arguments(
            sample_every_default=DEFAULT_SAMPLE_EVERY)],
    )
    monitor_parser.add_argument("workload", choices=sorted(WORKLOADS))
    monitor_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    monitor_parser.add_argument("--buggy", action="store_true",
                                help="use the bug-triggering input")
    monitor_parser.add_argument("--requests", type=int, default=None)
    monitor_parser.add_argument("--seed", type=int, default=0)
    monitor_parser.add_argument(
        "--report-every", type=int, default=0, metavar="N",
        help="print a live top-style panel every N samples "
             "(default: final panel only)",
    )
    monitor_parser.add_argument(
        "--top", type=int, default=5,
        help="allocation groups shown per panel (default 5)",
    )
    monitor_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics as repro.metrics/v1 JSON",
    )
    monitor_parser.add_argument(
        "--emit-history", metavar="PATH", default=None,
        help="write the run's tiered history as repro.history/v1 "
             "JSON (requires --history)",
    )

    replay_parser = sub.add_parser(
        "replay",
        help="re-run a forensic bundle's recorded workload "
             "deterministically, to an optional breakpoint",
    )
    replay_parser.add_argument(
        "bundle", help="repro.dump/v1 bundle path")
    replay_parser.add_argument(
        "--until-cycle", type=int, default=None, metavar="N",
        help="break once the simulated clock reaches cycle N",
    )
    replay_parser.add_argument(
        "--break-on", default=None, metavar="EVENT|ADDR",
        help="break at the first matching event kind (e.g. "
             "leak_report) or address (e.g. 0x401000)",
    )
    replay_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the differential check against the recorded event "
             "stream",
    )

    resume_parser = sub.add_parser(
        "resume",
        help="resume a checkpointed run: re-execute from the seed, "
             "verify bit-exactness at the recorded boundary, continue",
    )
    resume_parser.add_argument(
        "checkpoint", help="repro.checkpoint/v1 document path")
    resume_parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="run to N total requests (default: the recorded horizon)",
    )
    resume_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the bit-exact state comparison at the recorded "
             "request boundary",
    )

    history_parser = sub.add_parser(
        "history",
        help="render tiered metric history; several files merge "
             "fleet-style before rendering",
    )
    history_parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="repro.history/v1 files (more than one merges them)")
    history_parser.add_argument(
        "--series", default=None, metavar="NAME",
        help="show one series only (e.g. heap.live_bytes)")
    history_parser.add_argument(
        "--buckets", type=int, default=8, metavar="N",
        help="newest buckets shown per tier (default 8)")
    history_parser.add_argument(
        "--emit", metavar="PATH", default=None,
        help="also write the (merged) document as repro.history/v1 "
             "JSON")

    inspect_parser = sub.add_parser(
        "inspect",
        help="summarize a forensic bundle, metrics snapshot, or "
             "events stream",
    )
    inspect_parser.add_argument(
        "path", help="a repro.dump/v1, repro.metrics/v1, "
                     "repro.events/v1, repro.checkpoint/v1, or "
                     "repro.history/v1 file")
    inspect_parser.add_argument(
        "--events", action="store_true",
        help="list the bundle's recorded event tail")
    inspect_parser.add_argument(
        "--kind", default=None, metavar="EVENT",
        help="filter the event tail by kind (implies --events)")
    inspect_parser.add_argument(
        "--since", type=int, default=None, metavar="CYCLE",
        help="filter the event tail to cycles >= CYCLE "
             "(implies --events)")
    inspect_parser.add_argument(
        "--spans", action="store_true",
        help="print the recorded span flight recorder")
    inspect_parser.add_argument(
        "--groups", action="store_true",
        help="print the leak-group lifetime table")
    inspect_parser.add_argument(
        "--heap", action="store_true",
        help="print the live heap map")
    inspect_parser.add_argument(
        "--trends", action="store_true",
        help="print the trend-analytics verdicts (per series and "
             "detector) recorded at capture")
    inspect_parser.add_argument(
        "--metrics", action="store_true",
        help="print the embedded metrics snapshot")
    inspect_parser.add_argument(
        "--prefix", default=None,
        help="metrics namespace filter for --metrics")
    inspect_parser.add_argument(
        "--limit", type=int, default=20,
        help="rows shown per view (default 20)")

    diff_parser = sub.add_parser(
        "diff",
        help="compare two forensic bundles / metrics snapshots",
    )
    diff_parser.add_argument("a", metavar="A")
    diff_parser.add_argument("b", metavar="B")
    diff_parser.add_argument(
        "--limit", type=int, default=20,
        help="rows shown per section (default 20)")

    run_parser = sub.add_parser(
        "run", help="run one workload under one monitor",
        parents=[monitoring],
    )
    run_parser.add_argument("workload", choices=sorted(WORKLOADS))
    run_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    run_parser.add_argument("--buggy", action="store_true",
                            help="use the bug-triggering input")
    run_parser.add_argument("--requests", type=int, default=None)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--groups", action="store_true",
        help="print SafeMem diagnostics (object groups, watches)",
    )
    run_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics as repro.metrics/v1 JSON",
    )
    run_parser.add_argument(
        "--emit-history", metavar="PATH", default=None,
        help="write the run's tiered history as repro.history/v1 "
             "JSON (requires --history)",
    )

    stats_parser = sub.add_parser(
        "stats",
        help="run one workload and print its metrics snapshot",
    )
    stats_parser.add_argument("workload", choices=sorted(WORKLOADS))
    stats_parser.add_argument(
        "--monitor", default="safemem",
        choices=sorted(MONITOR_FACTORIES),
    )
    stats_parser.add_argument("--buggy", action="store_true",
                              help="use the bug-triggering input")
    stats_parser.add_argument("--requests", type=int, default=None)
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument(
        "--prefix", default=None,
        help="only metrics in one namespace (e.g. mmu. or safemem.)",
    )
    stats_parser.add_argument(
        "--spans", action="store_true",
        help="also print the span flight recorder",
    )
    stats_parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="write the run's metrics as repro.metrics/v1 JSON",
    )

    sub.add_parser("list", help="list workloads and monitors")
    return parser


def _emit_metrics(path, result, out):
    """Write one run's delta snapshot through the exporter schema."""
    document = write_metrics_json(
        path,
        result.metrics,
        spans=result.machine.tracer.flight_record(),
        meta={
            "workload": result.workload,
            "monitor": result.monitor_name,
            "buggy": result.buggy,
            "requests": result.requests,
        },
    )
    out.write(f"metrics:   {path} "
              f"({len(document['metrics'])} metrics, "
              f"{len(document.get('spans', []))} spans)\n")


def _write_history(path, document, out):
    """Write one ``repro.history/v1`` document as indented JSON."""
    import json
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    out.write(f"history:   {path} "
              f"({len(document['series'])} series, "
              f"{document['observations']:,} observations)\n")


def _check_emit_history(args, config):
    """``--emit-history`` is meaningless without ``--history``."""
    if getattr(args, "emit_history", None) and not config.wants_history:
        from repro.common.errors import ConfigurationError
        raise ConfigurationError(
            "--emit-history requires --history (nothing was recorded)")


def _write_stack_outputs(stack, args, out):
    """Post-run checkpoint/history output lines shared by run/monitor."""
    for path in stack.checkpoint_paths:
        out.write(f"checkpoint: {path}\n")
    if stack.scheduler is not None and stack.scheduler.checkpoints_skipped:
        out.write(f"checkpoint: {stack.scheduler.checkpoints_skipped} "
                  f"capture(s) skipped past the "
                  f"{stack.scheduler.max_checkpoints}-checkpoint cap\n")
    if getattr(args, "emit_history", None) and stack.history is not None:
        _write_history(args.emit_history, stack.history.to_dict(), out)


def _stack_run_info(args, config):
    """The replayable run description a forensic bundle records."""
    return {
        "workload": args.workload,
        "monitor": config.monitor,
        "buggy": args.buggy,
        "requests": args.requests,
        "seed": args.seed,
    }


def command_run(args, out):
    from repro.common.errors import MachinePanic
    config = MonitorStackConfig.from_args(args)
    _check_emit_history(args, config)
    active = (config.sampling is not None or config.wants_profiler
              or config.stream is not None or config.wants_forensics
              or config.wants_checkpoints)
    stack = None
    if active:
        # No label: a single-machine run streams to the exact path the
        # user gave; only fleet machines suffix their stream files.
        stack = build_monitor_stack(
            config, run_info=_stack_run_info(args, config))
        try:
            stack.start()
            try:
                result = run_workload(
                    args.workload, config.monitor, buggy=args.buggy,
                    requests=args.requests, seed=args.seed,
                    machine=stack.machine, monitor=stack.monitor,
                    request_hook=stack.request_hook)
            except MachinePanic as error:
                if stack.recorder is None:
                    raise
                out.write(f"PANIC: {error}\n")
                for path in stack.bundle_paths:
                    out.write(f"dump:      {path}\n")
                return 1
        finally:
            stack.stop()
            stack.close()
    else:
        result = run_workload(args.workload, args.monitor,
                              buggy=args.buggy, requests=args.requests,
                              seed=args.seed)
    out.write(f"workload:  {args.workload} "
              f"({'buggy' if args.buggy else 'normal'} input)\n")
    out.write(f"monitor:   {args.monitor}\n")
    out.write(f"requests:  {result.truth.requests_completed}"
              f"/{result.requests}\n")
    out.write(f"CPU:       {result.cycles:,} cycles "
              f"({result.cpu_seconds:.4f} s simulated)\n")

    stopped_early = result.truth.detection is not None
    if args.monitor != "native" and not stopped_early:
        native = run_workload(args.workload, "native",
                              buggy=args.buggy, requests=args.requests,
                              seed=args.seed)
        out.write(
            f"overhead:  +{overhead_percent(result.cycles, native.cycles):.2f}% "
            f"({slowdown_factor(result.cycles, native.cycles):.2f}x)\n"
        )
    if config.sampling is not None and not config.sampling.always_on:
        out.write(f"sampling:  "
                  f"{result.metrics.get('safemem.sampling.sampled', 0)}"
                  f" sampled / "
                  f"{result.metrics.get('safemem.sampling.skipped', 0)}"
                  f" skipped allocations\n")

    truth = result.truth
    if truth.leaked_addresses:
        out.write(f"ground truth: {len(truth.leaked_addresses)} objects "
                  "leaked\n")
    if truth.corruption:
        kind, address = truth.corruption
        out.write(f"ground truth: {kind} at {address:#x}\n")

    monitor = result.monitor
    if hasattr(monitor, "leak_reports") and monitor.leak_reports:
        out.write(f"leak reports: {len(monitor.leak_reports)}\n")
        for report in monitor.leak_reports[:5]:
            out.write(f"  {report}\n")
    if hasattr(monitor, "corruption_reports") and \
            monitor.corruption_reports:
        out.write(f"corruption reports: "
                  f"{len(monitor.corruption_reports)}\n")
        for report in monitor.corruption_reports[:5]:
            out.write(f"  {report}\n")
    if truth.detection is not None:
        out.write(f"stopped at detection: {truth.detection.report}\n")

    if getattr(args, "groups", False) and hasattr(monitor, "watcher"):
        from repro.core.diagnostics import render_safemem_diagnostics
        out.write("\n" + render_safemem_diagnostics(monitor) + "\n")
    if args.emit_metrics:
        _emit_metrics(args.emit_metrics, result, out)
    if stack is not None:
        _write_stack_outputs(stack, args, out)
    return 0


def command_stats(args, out):
    result = run_workload(args.workload, args.monitor,
                          buggy=args.buggy, requests=args.requests,
                          seed=args.seed)
    title = (f"{args.workload}/{args.monitor} "
             f"({'buggy' if args.buggy else 'normal'} input)")
    out.write(render_metrics_table(result.metrics, title=title,
                                   prefix=args.prefix) + "\n")
    if args.spans:
        spans = result.machine.tracer.flight_record()
        out.write(f"\nrecent spans ({len(spans)}):\n")
        out.write(render_span_tree(spans) + "\n")
    if args.emit_metrics:
        _emit_metrics(args.emit_metrics, result, out)
    return 0


def default_experiments_md():
    """EXPERIMENTS.md of the repo this package was imported from."""
    import repro
    return pathlib.Path(repro.__file__).resolve().parents[2] / \
        "EXPERIMENTS.md"


def command_validate(args, out):
    from repro.analysis import fleet
    from repro.analysis.claims import (
        render_validation,
        write_experiments_block,
    )
    from repro.common.errors import FleetError
    try:
        run = fleet.run_validation(
            requests=args.requests,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            stack=MonitorStackConfig.from_args(args),
        )
    except FleetError as error:
        out.write(f"fleet error: {error}\n")
        for path in getattr(error, "bundles", []):
            out.write(f"dump:      {path}\n")
        return 1
    out.write(render_validation(run.results) + "\n")
    if not args.no_cache:
        outcome = run.outcome
        out.write(f"cache: {outcome.cache_hits} hit(s), "
                  f"{outcome.cache_misses} miss(es)\n")
    if args.write_results:
        for path in fleet.write_result_artifacts(run.context,
                                                 args.results_dir):
            out.write(f"wrote {path}\n")
    if args.write_experiments_md:
        path = write_experiments_block(
            run.results, args.experiments_md or default_experiments_md()
        )
        out.write(f"rewrote claim matrix in {path}\n")
    if args.emit_metrics and run.outcome.metrics is not None:
        document = write_metrics_json(
            args.emit_metrics, run.outcome.metrics,
            meta={"command": "validate", "requests": args.requests},
        )
        out.write(f"metrics:   {args.emit_metrics} "
                  f"({len(document['metrics'])} metrics)\n")
    if not run.passed:
        out.write("FAILED: " + ", ".join(run.failed_idents()) + "\n")
        return 1
    return 0


def command_fleet(args, out):
    from repro.analysis import fleet
    from repro.common.errors import FleetError
    if args.rate_curve:
        rates = [float(rate) for rate in args.rate_curve.split(",")
                 if rate.strip()]
        curve = fleet.SamplingCurveResult(
            workload=args.workload,
            machines=args.machines,
            points=[fleet.sampling_curve_point(
                rate, workload=args.workload, machines=args.machines,
                requests=args.requests, base_seed=args.seed)
                for rate in rates],
        )
        out.write(curve.render() + "\n")
        return 0
    config = MonitorStackConfig.from_args(args)
    _check_emit_history(args, config)
    try:
        result = fleet.run_fleet(
            args.workload,
            machines=args.machines,
            requests=args.requests,
            buggy=args.buggy,
            jobs=args.jobs,
            base_seed=args.seed,
            stack=config,
        )
    except FleetError as error:
        out.write(f"fleet error: {error}\n")
        for path in getattr(error, "bundles", []):
            out.write(f"dump:      {path}\n")
        return 1
    out.write(result.render() + "\n")
    if args.emit_metrics and result.metrics is not None:
        document = write_metrics_json(
            args.emit_metrics, result.metrics,
            meta={"command": "fleet", "workload": args.workload,
                  "machines": args.machines, "monitor": args.monitor,
                  "buggy": args.buggy},
        )
        out.write(f"metrics:   {args.emit_metrics} "
                  f"({len(document['metrics'])} metrics)\n")
    if args.emit_history and result.history is not None:
        _write_history(args.emit_history, result.history, out)
    return 0


def command_monitor(args, out):
    from repro.common.errors import MachinePanic
    from repro.obs.sampler import render_top

    config = MonitorStackConfig.from_args(args)
    _check_emit_history(args, config)
    # No label: stream to the exact --stream path (fleet machines are
    # the only per-machine-suffixed writers).
    stack = build_monitor_stack(
        config, run_info=_stack_run_info(args, config))
    machine, monitor = stack.machine, stack.monitor
    sampler, engine = stack.sampler, stack.engine
    if args.report_every:
        def live_panel(sample):
            if sample.index % args.report_every == 0:
                out.write(render_top(sample, alerts=engine.firing(),
                                     top=args.top) + "\n\n")
        sampler.add_listener(live_panel)
    try:
        if stack.stream is not None:
            stack.stream.mark(
                machine.clock.cycles, marker="start",
                workload=args.workload, monitor=config.monitor,
                buggy=args.buggy, seed=args.seed,
                sample_every=config.sample_every, rules=config.rules)
        stack.start()
        panic = None
        try:
            result = run_workload(args.workload, config.monitor,
                                  buggy=args.buggy,
                                  requests=args.requests,
                                  seed=args.seed, machine=machine,
                                  monitor=monitor,
                                  request_hook=stack.request_hook)
        except MachinePanic as error:
            if stack.recorder is None:
                raise
            panic = error
        finally:
            stack.stop()
        if panic is not None:
            if stack.stream is not None:
                stack.stream.mark(machine.clock.cycles, marker="panic",
                                  reason=str(panic))
            out.write(f"PANIC: {panic}\n")
            for path in stack.bundle_paths:
                out.write(f"dump:      {path}\n")
            return 1
        final = sampler.sample_now()
        out.write(render_top(final, alerts=engine.firing(),
                             top=args.top,
                             title=f"final: {args.workload}/"
                                   f"{config.monitor}")
                  + "\n")
        out.write(f"requests:  {result.truth.requests_completed}"
                  f"/{result.requests}\n")
        out.write(f"samples:   {sampler.samples_taken} "
                  f"({sampler.samples_evicted} evicted from the ring)\n")
        if config.sampling is not None and not config.sampling.always_on:
            out.write(
                f"sampling:  "
                f"{result.metrics.get('safemem.sampling.sampled', 0)}"
                f" sampled / "
                f"{result.metrics.get('safemem.sampling.skipped', 0)}"
                f" skipped allocations\n")
        summary = stack.alert_summary()
        if summary:
            out.write("alerts:\n")
            for name, (fired, resolved, state) in summary.items():
                out.write(f"  {name:<26} fired {fired}  "
                          f"resolved {resolved}  state {state}\n")
        if stack.trend is not None:
            trend = stack.trend
            breaching = [v for v in trend.verdicts() if v.breached]
            out.write(f"trend:     {config.trend} over "
                      f"{len(trend.summary()['series'])} series "
                      f"(window {trend.window}), "
                      f"{trend.breach_onsets} breach onset(s), "
                      f"{len(breaching)} verdict(s) still breaching\n")
            for verdict in breaching[:args.top]:
                out.write(f"  {verdict.detector:<12} {verdict.series:<28}"
                          f" {verdict.value:,.1f}\n")
        if result.truth.detection is not None:
            out.write(f"stopped at detection: "
                      f"{result.truth.detection.report}\n")
        if stack.stream is not None:
            stack.stream.mark(machine.clock.cycles, marker="finish",
                              samples=sampler.samples_taken,
                              alerts_fired=stack.alerts_fired)
            stack.stream.close()
            sink = stack.sink
            out.write(f"stream:    {sink.records_written} records, "
                      f"{sink.rotations} rotation(s) -> "
                      + ", ".join(str(path) for path in sink.paths())
                      + "\n")
        if stack.bundle_paths:
            for path in stack.bundle_paths:
                out.write(f"dump:      {path}\n")
        if args.emit_metrics:
            _emit_metrics(args.emit_metrics, result, out)
        _write_stack_outputs(stack, args, out)
        return 0
    finally:
        # Exception-safe teardown: the stream always detaches and the
        # sink always flushes (close is idempotent), so a mid-run crash
        # still leaves a parseable repro.events/v1 file on disk.
        stack.close()


def command_replay(args, out):
    from repro.obs import forensics
    bundle = forensics.load_bundle(args.bundle)
    result = forensics.replay_bundle(bundle,
                                     until_cycle=args.until_cycle,
                                     break_on=args.break_on)
    run = bundle.get("run", {})
    out.write(f"replayed:  {run.get('workload', '?')}/"
              f"{run.get('monitor', '?')} seed {run.get('seed', 0)} "
              f"(bundle captured at cycle {bundle.get('cycle', 0):,})\n")
    if result.broke:
        out.write(f"break:     cycle {result.break_cycle:,} "
                  f"({len(result.events)} events so far)\n")
        state = forensics.capture_bundle(
            result.machine, monitor=result.monitor, run_info=run,
            reason="replay-break")
        out.write(forensics.render_bundle_summary(state) + "\n")
        out.write(forensics.render_bundle_groups(state) + "\n")
    else:
        out.write(f"finished:  cycle {result.break_cycle:,} "
                  f"({len(result.events)} events)\n")
        if result.panic is not None:
            out.write(f"re-panicked: {result.panic}\n")
        elif result.truth is not None:
            out.write(f"requests:  "
                      f"{result.truth.requests_completed} completed\n")
    if args.no_verify:
        return 0
    ok, message = forensics.verify_replay(bundle, result)
    out.write(f"verify:    {'OK' if ok else 'DIVERGED'} -- {message}\n")
    return 0 if ok else 1


def command_resume(args, out):
    from repro.obs import checkpoint as ckpt
    document = ckpt.load_checkpoint(args.checkpoint)
    out.write(ckpt.render_checkpoint_summary(document) + "\n")
    result = ckpt.resume_checkpoint(document,
                                    requests=args.requests,
                                    verify=not args.no_verify)
    out.write(f"resumed:   to cycle {result.machine.clock.cycles:,} "
              f"(checkpoint was at cycle "
              f"{result.checkpoint_cycle:,})\n")
    if result.panic is not None:
        out.write(f"re-panicked: {result.panic}\n")
    elif result.truth is not None:
        out.write(f"requests:  "
                  f"{result.truth.requests_completed} completed\n")
        if result.truth.detection is not None:
            out.write(f"stopped at detection: "
                      f"{result.truth.detection.report}\n")
    if args.no_verify:
        out.write("verify:    skipped (--no-verify)\n")
        return 0
    ok = bool(result.verified)
    out.write(f"verify:    {'OK' if ok else 'DIVERGED'} -- "
              f"{result.verify_message}\n")
    return 0 if ok else 1


def command_history(args, out):
    from repro.obs import forensics
    from repro.obs.history import merge_history_documents, render_history
    documents = []
    for path in args.paths:
        kind, payload = forensics.load_document(path)
        if kind != "history":
            from repro.common.errors import ConfigurationError
            raise ConfigurationError(
                f"{path} is a {kind} document; `repro history` reads "
                f"repro.history/v1 files")
        documents.append(payload)
    document = (documents[0] if len(documents) == 1
                else merge_history_documents(documents))
    if len(documents) > 1:
        out.write(f"merged {len(documents)} documents\n")
    out.write(render_history(document, series=args.series,
                             buckets=args.buckets) + "\n")
    if args.emit:
        _write_history(args.emit, document, out)
    return 0


def command_inspect(args, out):
    from repro.obs import forensics
    from repro.obs.export import snapshot_from_document
    kind, payload = forensics.load_document(args.path)
    if kind == "stream":
        out.write(forensics.render_stream_summary(payload) + "\n")
        return 0
    if kind == "checkpoint":
        from repro.obs.checkpoint import render_checkpoint_summary
        out.write(render_checkpoint_summary(payload) + "\n")
        return 0
    if kind == "history":
        from repro.obs.history import render_history
        out.write(render_history(payload, buckets=args.limit) + "\n")
        return 0
    if kind == "metrics":
        out.write(render_metrics_table(
            snapshot_from_document(payload), title=str(args.path),
            prefix=args.prefix) + "\n")
        return 0
    bundle = payload
    if args.events or args.kind or args.since is not None:
        out.write(forensics.render_bundle_events(
            bundle, kind=args.kind, since_cycle=args.since,
            limit=args.limit) + "\n")
    elif args.spans:
        spans = bundle.get("spans", {}).get("recent", [])
        out.write(render_span_tree(spans, limit=args.limit) + "\n")
    elif args.groups:
        out.write(forensics.render_bundle_groups(bundle, top=args.limit)
                  + "\n")
    elif args.heap:
        out.write(forensics.render_bundle_heap(bundle, top=args.limit)
                  + "\n")
    elif args.trends:
        out.write(forensics.render_bundle_trends(bundle) + "\n")
    elif args.metrics:
        out.write(render_metrics_table(
            forensics.bundle_snapshot(bundle), title="bundle metrics",
            prefix=args.prefix) + "\n")
    else:
        out.write(forensics.render_bundle_summary(bundle) + "\n\n")
        out.write(forensics.render_bundle_groups(bundle) + "\n")
    return 0


def command_diff(args, out):
    from repro.common.errors import ConfigurationError
    from repro.obs import forensics
    documents = []
    for path in (args.a, args.b):
        kind, payload = forensics.load_document(path)
        if kind == "stream":
            raise ConfigurationError(
                f"{path} is an events stream; diff compares bundles "
                f"or metrics snapshots"
            )
        documents.append(payload)
    diff = forensics.diff_documents(*documents)
    out.write(forensics.render_diff(diff, limit=args.limit) + "\n")
    return 0


def command_list(out):
    out.write("workloads (paper Table 1):\n")
    for name, factory in WORKLOADS.items():
        out.write(f"  {name:<9} {factory.loc:>7,} LOC  "
                  f"{factory.description:<28} bug={factory.bug}\n")
    out.write("\nmonitors:\n")
    for name in sorted(MONITOR_FACTORIES):
        out.write(f"  {name}\n")
    out.write("\nchipset profiles (--profile; docs/HARDWARE.md):\n")
    from repro.ecc.profile import get_profile, profile_names
    for name in profile_names():
        profile = get_profile(name)
        out.write(f"  {name:<16} codec={profile.codec:<9} "
                  f"scrub={profile.scrub_interval_cycles:,} cycles\n")
    return 0


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.command == "table2":
        out.write(experiment_table2().render() + "\n")
    elif args.command == "table3":
        out.write(experiment_table3(requests=args.requests).render() + "\n")
    elif args.command == "table4":
        out.write(experiment_table4(requests=args.requests).render() + "\n")
    elif args.command == "table5":
        out.write(experiment_table5().render() + "\n")
    elif args.command == "figure3":
        out.write(experiment_figure3().render() + "\n")
    elif args.command == "report":
        generate_report(requests=args.requests, stream=out)
    elif args.command == "validate":
        return command_validate(args, out)
    elif args.command == "fleet":
        return command_fleet(args, out)
    elif args.command == "monitor":
        return command_monitor(args, out)
    elif args.command == "replay":
        return command_replay(args, out)
    elif args.command == "resume":
        return command_resume(args, out)
    elif args.command == "history":
        return command_history(args, out)
    elif args.command == "inspect":
        return command_inspect(args, out)
    elif args.command == "diff":
        return command_diff(args, out)
    elif args.command == "run":
        return command_run(args, out)
    elif args.command == "stats":
        return command_stats(args, out)
    elif args.command == "list":
        return command_list(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
