"""The simulated operating system kernel.

Implements the paper's three OS extensions (Section 2.2.1) plus the
standard facilities SafeMem and the baselines need:

- ``watch_memory(addr, size)``        -- arm ECC watchpoints on a region
- ``disable_watch_memory(addr, ...)`` -- disarm and restore a region
- ``register_ecc_fault_handler(fn)``  -- user-level ECC fault delivery
- ``mprotect`` / ``mmap`` / ``munmap``-- page-granularity management
- page pinning with a budget, scrub coordination

Every syscall charges its cycle cost to the program's clock, which is
how monitoring overhead becomes measurable.
"""

import contextlib

from repro.common.constants import (
    CACHE_LINE_SIZE,
    ECC_GROUP_BYTES,
    PAGE_SIZE,
    SCRAMBLE_BIT_POSITIONS,
    is_aligned,
    page_base,
)
from repro.common.errors import PinLimitExceeded, SyscallError
from repro.common.events import EventKind
from repro.ecc.scrubber import Scrubber
from repro.kernel.interrupts import EccFaultInfo, InterruptController
from repro.kernel.watchregistry import WatchedRegion, WatchRegistry
from repro.mmu.pagetable import PROT_RW

#: XOR mask that flips the three fixed scramble bits of a 64-bit group.
SCRAMBLE_MASK = 0
for _position in SCRAMBLE_BIT_POSITIONS:
    SCRAMBLE_MASK |= 1 << _position
del _position

#: The 8-byte scramble mask, replicated per region length on demand so
#: a whole region scrambles in one wide XOR instead of a per-group loop.
_SCRAMBLE_MASK_BYTES = SCRAMBLE_MASK.to_bytes(ECC_GROUP_BYTES, "little")
_WIDE_MASKS = {}


def scramble_bytes(data):
    """Apply (or undo -- XOR is an involution) the scramble signature.

    Flips the three fixed bits of every 64-bit ECC group in ``data``.
    This is the *default* (SEC-DED) pattern; the kernel and watcher use
    the controller codec's :meth:`Codec.scramble_bytes` so other
    chipset profiles scramble with their own verified pattern.  Kept
    for callers that predate pluggable codecs.
    """
    if len(data) % ECC_GROUP_BYTES:
        raise SyscallError(
            f"scramble data must be a multiple of {ECC_GROUP_BYTES} bytes"
        )
    mask = _WIDE_MASKS.get(len(data))
    if mask is None:
        mask = int.from_bytes(
            _SCRAMBLE_MASK_BYTES * (len(data) // ECC_GROUP_BYTES), "little"
        )
        _WIDE_MASKS[len(data)] = mask
    value = int.from_bytes(data, "little") ^ mask
    return value.to_bytes(len(data), "little")


class Kernel:
    """OS services over the machine's hardware components."""

    def __init__(self, dram, controller, cache, mmu, page_table, clock,
                 costs, event_log, max_pinned_pages=None, metrics=None,
                 tracer=None, scrub_interval_cycles=None):
        self.dram = dram
        self.controller = controller
        self.cache = cache
        self.mmu = mmu
        self.page_table = page_table
        self.clock = clock
        self.costs = costs
        self.event_log = event_log
        self.metrics = metrics
        self.tracer = tracer
        self.interrupts = InterruptController(clock, costs, event_log,
                                              metrics=metrics,
                                              tracer=tracer)
        self.watches = WatchRegistry()
        self.scrubber = Scrubber(controller, clock, costs,
                                 interval_cycles=scrub_interval_cycles)
        self.pinned_pages = 0
        self.ecc_traps = 0
        if max_pinned_pages is None:
            max_pinned_pages = max(1, (dram.size // PAGE_SIZE) // 2)
        self.max_pinned_pages = max_pinned_pages
        self.syscall_counts = {}
        #: user-level SIGSEGV handler (page-protection guard tools).
        self.segv_handler = None
        controller.fault_listener = self._on_controller_event
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``kernel.*`` probes into a metrics registry.

        Per-syscall counters (``kernel.syscall.<Name>``) register
        lazily on first use in :meth:`_count`.
        """
        metrics.probe("kernel.ecc_traps", lambda: self.ecc_traps,
                      kind="counter",
                      description="uncorrectable faults routed to the "
                                  "user handler")
        metrics.probe("kernel.pinned_pages", lambda: self.pinned_pages,
                      kind="gauge")
        metrics.probe("kernel.watched_lines",
                      lambda: self.watches.armed_line_count,
                      kind="gauge")

    def _span(self, name, **attrs):
        if self.tracer is not None:
            return self.tracer.span(name, **attrs)
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # the three paper syscalls
    # ------------------------------------------------------------------
    def watch_memory(self, vaddr, size):
        """Arm ECC watchpoints over ``[vaddr, vaddr+size)``.

        The region must be cache-line aligned (paper requirement).  The
        kernel pins the underlying pages, flushes the lines, then --
        with the bus locked and ECC disabled -- rewrites the data with
        the 3-bit scramble pattern, leaving the old check bits stale.
        The next memory access to any of the lines raises a multi-bit
        ECC fault.
        """
        self._count("WatchMemory")
        with self._span("syscall.WatchMemory", vaddr=vaddr, size=size):
            return self._watch_memory(vaddr, size)

    def _watch_memory(self, vaddr, size):
        lines = self._validate_line_region(vaddr, size)
        self.clock.tick(self.costs.watch_memory_cost(len(lines)))

        pages = sorted({page_base(line) for line in lines})
        pinned = []
        try:
            for page in pages:
                self._pin_page(page)
                pinned.append(page)
        except PinLimitExceeded:
            for page in pinned:
                self._unpin_page(page)
            raise

        line_map = {}
        for vline in lines:
            pline = self.mmu.resident_frame(vline)
            line_map[vline] = pline

        region = WatchedRegion(vaddr=vaddr, size=size, lines=line_map)
        try:
            self.watches.add(region)
        except SyscallError:
            for page in pinned:
                self._unpin_page(page)
            raise

        # Write back + invalidate so DRAM holds the current data and the
        # next access must reach memory.
        for pline in line_map.values():
            self.cache.flush_line(pline)

        # Scramble window: bus locked, ECC off, data-only writes.  The
        # pattern comes from the controller's codec, so the armed line
        # decodes as uncorrectable under whatever code this chipset
        # profile runs.
        scramble = self.controller.codec.scramble_bytes
        self.controller.lock_bus()
        self.controller.disable_ecc()
        try:
            for pline in line_map.values():
                current = self.dram.read_raw(pline, CACHE_LINE_SIZE)
                self.controller.write_line(pline, scramble(current))
        finally:
            self.controller.enable_ecc()
            self.controller.unlock_bus()

        self.event_log.emit(EventKind.WATCH, address=vaddr, size=size)
        return region

    def disable_watch_memory(self, vaddr, restore_data=None):
        """Disarm the watch region registered at ``vaddr``.

        ``restore_data`` is the original contents saved by the user
        library; when provided, the kernel rewrites it through the
        normal (ECC-generating) path so both data and check bits are
        consistent again.  Without it the scrambled bytes are simply
        re-encoded, which also clears the fault condition.
        """
        self._count("DisableWatchMemory")
        with self._span("syscall.DisableWatchMemory", vaddr=vaddr):
            return self._disable_watch_memory(vaddr, restore_data)

    def _disable_watch_memory(self, vaddr, restore_data):
        region = self.watches.get(vaddr)
        if region is None:
            raise SyscallError(f"no watched region at {vaddr:#x}")
        if restore_data is not None and len(restore_data) != region.size:
            raise SyscallError(
                f"restore data is {len(restore_data)} bytes for a "
                f"{region.size}-byte region"
            )
        self.clock.tick(self.costs.disable_watch_cost(len(region.lines)))
        self.watches.remove(vaddr)

        for i, (vline, pline) in enumerate(sorted(region.lines.items())):
            self.cache.invalidate_line(pline)
            if restore_data is not None:
                chunk = restore_data[
                    i * CACHE_LINE_SIZE:(i + 1) * CACHE_LINE_SIZE
                ]
            else:
                chunk = self.dram.read_raw(pline, CACHE_LINE_SIZE)
            self.controller.write_line(pline, chunk)

        for page in region.pages:
            self._unpin_page(page)
        self.event_log.emit(EventKind.UNWATCH, address=vaddr,
                            size=region.size)
        return region

    def register_ecc_fault_handler(self, handler):
        """Install the user-level ECC fault handler."""
        self._count("RegisterECCFaultHandler")
        self.clock.tick(self.costs.syscall_trap)
        self.interrupts.register_handler(handler)

    # ------------------------------------------------------------------
    # standard VM syscalls
    # ------------------------------------------------------------------
    def mmap(self, vaddr, size, prot=PROT_RW):
        """Map a fresh zero-filled region (no syscall cost charged --
        address-space setup happens before timing begins)."""
        self.page_table.map_region(vaddr, size, prot)

    def munmap(self, vaddr, size):
        """Unmap a region, releasing frames and swap slots."""
        for region in self.watches.all_regions():
            if vaddr <= region.vaddr < vaddr + size:
                raise SyscallError(
                    f"cannot unmap: region {region.vaddr:#x} is watched"
                )
        for entry in self.page_table.unmap_region(vaddr, size):
            if entry.present:
                frame_base = entry.pfn * PAGE_SIZE
                for line in range(frame_base, frame_base + PAGE_SIZE,
                                  CACHE_LINE_SIZE):
                    self.cache.invalidate_line(line)
                self.mmu.frames.release(entry.pfn)
            if entry.in_swap:
                self.mmu.swap.drop(entry.vpn)
        # TLB shoot-down: cached translations for the unmapped pages
        # would otherwise keep serving stale frames.
        self.mmu.tlb_invalidate_range(vaddr, size)

    def mprotect(self, vaddr, size, prot):
        """Change protection bits -- the page-granularity guard primitive."""
        self._count("mprotect")
        if not is_aligned(vaddr, PAGE_SIZE) or not is_aligned(size, PAGE_SIZE):
            raise SyscallError(
                f"mprotect range must be page aligned: "
                f"{vaddr:#x}+{size:#x}"
            )
        pages = size // PAGE_SIZE
        self.clock.tick(self.costs.mprotect_cost(pages))
        for vpn in range(vaddr // PAGE_SIZE, (vaddr + size) // PAGE_SIZE):
            entry = self.page_table.entry(vpn)
            if entry is None:
                raise SyscallError(f"mprotect on unmapped page {vpn:#x}")
            entry.prot = prot
        # TLB shoot-down: the TLB snapshots protection bits, so a
        # narrowed mapping must not keep serving from a stale entry.
        self.mmu.tlb_invalidate_range(vaddr, size)

    def register_segv_handler(self, handler):
        """Install a user-level protection-fault (SIGSEGV) handler.

        This is the delivery path the *page-protection* baseline uses;
        ECC watchpoints never come through here.
        """
        self._count("sigaction")
        self.clock.tick(self.costs.syscall_trap)
        self.segv_handler = handler

    def handle_protection_fault(self, fault):
        """Deliver a protection fault; True means retry the access."""
        if self.segv_handler is None:
            return False
        self.clock.tick(self.costs.fault_delivery)
        self.event_log.emit(
            EventKind.PROTECTION_FAULT,
            address=fault.vaddr,
            access=fault.access,
        )
        return self.segv_handler(fault)

    # ------------------------------------------------------------------
    # fault path (called by the machine's access loop)
    # ------------------------------------------------------------------
    def handle_uncorrectable_fault(self, fault, access="read"):
        """Route a multi-bit ECC fault to the user handler (or panic)."""
        self.ecc_traps += 1
        resolved = self.watches.resolve_physical_line(fault.line_address)
        if resolved is not None:
            region, vline = resolved
            vaddr = vline + (fault.address - fault.line_address)
            watched = True
        else:
            vaddr = None
            watched = False
        info = EccFaultInfo(
            paddr=fault.address,
            vaddr=vaddr,
            watched=watched,
            syndrome=fault.syndrome,
            origin=fault.origin.value,
            access=access,
        )
        with self._span("ecc.fault", paddr=fault.address,
                        watched=watched, access=access):
            self.interrupts.deliver(info)

    def peek_watched_line(self, vaddr):
        """Kernel-mode raw read of a watched line (no ECC check).

        The user-level handler needs the *current* (scrambled or not)
        contents to compare against the scramble signature; a normal
        load would simply re-fault.  Real hardware exposes this via the
        machine-check architecture; we expose it as a kernel service.
        """
        vline = vaddr - (vaddr % CACHE_LINE_SIZE)
        region = self.watches.region_of_vline(vline)
        if region is None:
            raise SyscallError(f"line {vline:#x} is not watched")
        pline = region.lines[vline]
        return self.dram.read_raw(pline, CACHE_LINE_SIZE)

    # ------------------------------------------------------------------
    # scrub coordination
    # ------------------------------------------------------------------
    def add_scrub_listener(self, pre=None, post=None):
        """Register callbacks run before/after every scrub pass.

        SafeMem registers hooks that temporarily unwatch all regions and
        block the program during scrubbing (Section 2.2.2).
        """
        self.scrubber.add_hooks(pre=pre, post=post)

    def run_scrub_pass(self):
        """Trigger one scrub pass (Correct-and-Scrub mode only)."""
        return self.scrubber.scrub_pass()

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def _pin_page(self, vaddr):
        entry = self.mmu.ensure_resident(vaddr)
        if entry.pin_count == 0:
            if self.pinned_pages >= self.max_pinned_pages:
                raise PinLimitExceeded(
                    f"pin budget of {self.max_pinned_pages} pages exhausted"
                )
            self.pinned_pages += 1
        entry.pin_count += 1

    def _unpin_page(self, vaddr):
        entry = self.page_table.lookup(vaddr)
        if entry is None or entry.pin_count == 0:
            raise SyscallError(f"page at {vaddr:#x} is not pinned")
        entry.pin_count -= 1
        if entry.pin_count == 0:
            self.pinned_pages -= 1

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _validate_line_region(self, vaddr, size):
        if size <= 0:
            raise SyscallError(f"watch size must be positive, got {size}")
        if not is_aligned(vaddr, CACHE_LINE_SIZE):
            raise SyscallError(
                f"watch region must be cache-line aligned, got {vaddr:#x}"
            )
        if not is_aligned(size, CACHE_LINE_SIZE):
            raise SyscallError(
                f"watch size must be a multiple of {CACHE_LINE_SIZE}, "
                f"got {size}"
            )
        lines = list(range(vaddr, vaddr + size, CACHE_LINE_SIZE))
        for line in lines:
            if self.page_table.lookup(line) is None:
                raise SyscallError(f"watch on unmapped address {line:#x}")
        return lines

    def _count(self, name):
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(f"kernel.syscall.{name}").inc()
        self.event_log.emit(EventKind.SYSCALL, name=name)

    def _on_controller_event(self, fault):
        if not fault.uncorrectable:
            self.event_log.emit(
                EventKind.ECC_CORRECTED,
                address=fault.address,
                syndrome=fault.syndrome,
            )
