"""ECC interrupt delivery.

Stock operating systems panic on a multi-bit ECC error (Section 2.1).
The paper's modified kernel instead forwards the fault to a registered
user-level handler (``RegisterECCFaultHandler``).  The handler decides
whether the fault is a watchpoint hit (scramble signature matches) or a
genuine hardware error; unhandled faults still panic.
"""

from dataclasses import dataclass

from repro.common.errors import MachinePanic
from repro.common.events import EventKind


@dataclass
class EccFaultInfo:
    """What a user-level ECC fault handler receives.

    ``vaddr`` is the *virtual* base address of the faulting cache line
    when the kernel could attribute the physical line to a watched
    region (or to any mapped page); ``None`` otherwise.  ``watched`` is
    True when the line lies inside a registered watch region.
    """

    paddr: int
    vaddr: int
    watched: bool
    syndrome: int
    origin: str
    #: "read" or "write": what the interrupted instruction was doing.
    #: (A write still trips the watchpoint via its write-allocate line
    #: fill; the kernel knows the instruction and reports its kind.)
    access: str = "read"


class InterruptController:
    """Routes uncorrectable ECC faults to the user handler or panics."""

    def __init__(self, clock, cost_model, event_log=None, metrics=None,
                 tracer=None):
        self.clock = clock
        self.costs = cost_model
        self.event_log = event_log
        self.tracer = tracer
        self.user_handler = None
        self.delivered = 0
        self.panics = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``kernel.irq.*`` probes into a metrics registry."""
        metrics.probe("kernel.irq.delivered", lambda: self.delivered,
                      kind="counter")
        metrics.probe("kernel.irq.panics", lambda: self.panics,
                      kind="counter")

    def register_handler(self, handler):
        """Install the user-level ECC fault handler (may be ``None``)."""
        self.user_handler = handler

    def deliver(self, info):
        """Deliver one fault.  Raises :class:`MachinePanic` if unhandled.

        Returns normally when the handler claimed the fault, in which
        case the machine retries the interrupted access.
        """
        if self.event_log is not None:
            self.event_log.emit(
                EventKind.ECC_FAULT,
                address=info.vaddr if info.vaddr is not None else info.paddr,
                paddr=info.paddr,
                watched=info.watched,
                origin=info.origin,
            )
        if self.user_handler is None:
            self._panic(info, "no ECC fault handler registered")
        self.clock.tick(self.costs.fault_delivery)
        self.delivered += 1
        if self.tracer is not None:
            with self.tracer.span("ecc.handler", paddr=info.paddr,
                                  watched=info.watched):
                handled = self.user_handler(info)
        else:
            handled = self.user_handler(info)
        if not handled:
            self._panic(info, "ECC fault handler did not claim the fault")

    def _panic(self, info, reason):
        self.panics += 1
        if self.event_log is not None:
            self.event_log.emit(
                EventKind.PANIC, address=info.paddr, reason=reason
            )
        raise MachinePanic(
            f"kernel panic: uncorrectable ECC error at physical "
            f"{info.paddr:#010x} ({reason})"
        )
