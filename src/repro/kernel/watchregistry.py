"""Registry of ECC-watched memory regions.

The kernel needs two lookups:

- by *virtual* line, to validate WatchMemory/DisableWatchMemory calls,
- by *physical* line, to attribute an ECC fault back to the virtual
  region the user handler reasons about.

Pinning guarantees the physical mapping of a watched region cannot
change while it is registered, so the physical index stays valid.
"""

from dataclasses import dataclass, field

from repro.common.constants import CACHE_LINE_SIZE, page_base
from repro.common.errors import SyscallError


@dataclass
class WatchedRegion:
    """One registered watch: a cache-line-aligned virtual range."""

    vaddr: int
    size: int
    #: virtual line base -> physical line base at registration time.
    lines: dict = field(default_factory=dict)

    @property
    def vline_bases(self):
        return list(self.lines.keys())

    @property
    def pages(self):
        """Base addresses of the virtual pages this region touches."""
        seen = []
        for vline in self.lines:
            base = page_base(vline)
            if base not in seen:
                seen.append(base)
        return seen

    def __contains__(self, vaddr):
        return self.vaddr <= vaddr < self.vaddr + self.size


class WatchRegistry:
    """All currently armed watch regions, with both-direction indexes."""

    def __init__(self):
        self._regions = {}
        self._by_vline = {}
        self._by_pline = {}
        #: Called with the registry after every add/remove.  The machine
        #: registers a listener here to disable its short-circuit access
        #: path the moment any line is armed -- the hook that keeps the
        #: fast path from ever swallowing a watchpoint fault.
        self._listeners = []

    def __len__(self):
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions.values())

    @property
    def armed_line_count(self):
        """Number of cache lines currently armed across all regions."""
        return len(self._by_vline)

    def add_listener(self, listener):
        """Register a callback invoked (with the registry) on changes."""
        self._listeners.append(listener)

    def _notify(self):
        for listener in self._listeners:
            listener(self)

    def add(self, region):
        if region.vaddr in self._regions:
            raise SyscallError(
                f"region at {region.vaddr:#x} is already watched"
            )
        for vline in region.lines:
            if vline in self._by_vline:
                raise SyscallError(
                    f"line {vline:#x} already belongs to a watched region"
                )
        self._regions[region.vaddr] = region
        for vline, pline in region.lines.items():
            self._by_vline[vline] = region
            self._by_pline[pline] = (region, vline)
        self._notify()

    def remove(self, vaddr):
        region = self._regions.pop(vaddr, None)
        if region is None:
            raise SyscallError(f"no watched region at {vaddr:#x}")
        for vline, pline in region.lines.items():
            self._by_vline.pop(vline, None)
            self._by_pline.pop(pline, None)
        self._notify()
        return region

    def get(self, vaddr):
        return self._regions.get(vaddr)

    def region_of_vline(self, vline):
        return self._by_vline.get(vline)

    def resolve_physical_line(self, pline):
        """Return ``(region, virtual_line)`` for a physical line or None."""
        return self._by_pline.get(pline)

    def covers_virtual(self, vaddr):
        """True when ``vaddr`` lies inside any watched region."""
        vline = vaddr - (vaddr % CACHE_LINE_SIZE)
        return vline in self._by_vline

    def all_regions(self):
        return list(self._regions.values())
