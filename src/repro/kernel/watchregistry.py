"""Registry of ECC-watched memory regions.

The kernel needs two lookups:

- by *virtual* line, to validate WatchMemory/DisableWatchMemory calls,
- by *physical* line, to attribute an ECC fault back to the virtual
  region the user handler reasons about.

Pinning guarantees the physical mapping of a watched region cannot
change while it is registered, so the physical index stays valid.
"""

from dataclasses import dataclass, field

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE, page_base
from repro.common.errors import SyscallError


@dataclass
class WatchedRegion:
    """One registered watch: a cache-line-aligned virtual range."""

    vaddr: int
    size: int
    #: virtual line base -> physical line base at registration time.
    lines: dict = field(default_factory=dict)

    @property
    def vline_bases(self):
        return list(self.lines.keys())

    @property
    def pages(self):
        """Base addresses of the virtual pages this region touches."""
        seen = []
        for vline in self.lines:
            base = page_base(vline)
            if base not in seen:
                seen.append(base)
        return seen

    def __contains__(self, vaddr):
        return self.vaddr <= vaddr < self.vaddr + self.size


class WatchRegistry:
    """All currently armed watch regions, with both-direction indexes."""

    def __init__(self):
        self._regions = {}
        self._by_vline = {}
        self._by_pline = {}
        #: virtual page base -> number of armed lines on that page.
        #: Lets ``overlaps_range`` skip whole pages of a span without
        #: probing every line (the batch engine's armed-line screen).
        self._armed_pages = {}
        #: Called with the registry after every add/remove.  The machine
        #: registers a listener here to disable its short-circuit access
        #: path the moment any line is armed -- the hook that keeps the
        #: fast path from ever swallowing a watchpoint fault.
        self._listeners = []

    def __len__(self):
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions.values())

    @property
    def armed_line_count(self):
        """Number of cache lines currently armed across all regions."""
        return len(self._by_vline)

    def add_listener(self, listener):
        """Register a callback invoked (with the registry) on changes."""
        self._listeners.append(listener)

    def _notify(self):
        for listener in self._listeners:
            listener(self)

    def add(self, region):
        if region.vaddr in self._regions:
            raise SyscallError(
                f"region at {region.vaddr:#x} is already watched"
            )
        for vline in region.lines:
            if vline in self._by_vline:
                raise SyscallError(
                    f"line {vline:#x} already belongs to a watched region"
                )
        self._regions[region.vaddr] = region
        for vline, pline in region.lines.items():
            self._by_vline[vline] = region
            self._by_pline[pline] = (region, vline)
            page = page_base(vline)
            self._armed_pages[page] = self._armed_pages.get(page, 0) + 1
        self._notify()

    def remove(self, vaddr):
        region = self._regions.pop(vaddr, None)
        if region is None:
            raise SyscallError(f"no watched region at {vaddr:#x}")
        for vline, pline in region.lines.items():
            self._by_vline.pop(vline, None)
            self._by_pline.pop(pline, None)
            page = page_base(vline)
            remaining = self._armed_pages.get(page, 0) - 1
            if remaining > 0:
                self._armed_pages[page] = remaining
            else:
                self._armed_pages.pop(page, None)
        self._notify()
        return region

    def get(self, vaddr):
        return self._regions.get(vaddr)

    def region_of_vline(self, vline):
        return self._by_vline.get(vline)

    def resolve_physical_line(self, pline):
        """Return ``(region, virtual_line)`` for a physical line or None."""
        return self._by_pline.get(pline)

    def covers_virtual(self, vaddr):
        """True when ``vaddr`` lies inside any watched region."""
        vline = vaddr - (vaddr % CACHE_LINE_SIZE)
        return vline in self._by_vline

    def overlaps_range(self, vaddr, size):
        """True when ``[vaddr, vaddr+size)`` touches any armed line.

        The batch engine's screen: it must route every op that could
        trip a watchpoint to the scalar path.  Page-granular first
        (most pages of a span carry no watches), then per-line within
        armed pages only.
        """
        if not self._by_vline or size <= 0:
            return False
        by_vline = self._by_vline
        armed_pages = self._armed_pages
        last = vaddr + size - 1
        page = page_base(vaddr)
        end_page = page_base(last)
        while page <= end_page:
            if page in armed_pages:
                line = max(page, vaddr - (vaddr % CACHE_LINE_SIZE))
                stop = min(page + PAGE_SIZE - 1, last)
                while line <= stop:
                    if line in by_vline:
                        return True
                    line += CACHE_LINE_SIZE
            page += PAGE_SIZE
        return False

    def all_regions(self):
        return list(self._regions.values())
