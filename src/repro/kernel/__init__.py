"""Simulated OS kernel: syscalls, ECC interrupt delivery, pinning."""

from repro.kernel.interrupts import EccFaultInfo, InterruptController
from repro.kernel.kernel import SCRAMBLE_MASK, Kernel, scramble_bytes
from repro.kernel.watchregistry import WatchedRegion, WatchRegistry

__all__ = [
    "EccFaultInfo",
    "InterruptController",
    "SCRAMBLE_MASK",
    "Kernel",
    "scramble_bytes",
    "WatchedRegion",
    "WatchRegistry",
]
