"""Sampling profiler: periodic low-overhead observation of a live run.

SafeMem's pitch is *production-run* detection, and production systems
are observed continuously, not reconstructed from end-of-run tables.
The :class:`SamplingProfiler` registers a periodic timer on the
machine's simulated clock (:meth:`~repro.common.clock.VirtualClock.every`)
and, every ``interval_cycles`` of CPU time, captures one
:class:`Sample`:

- every **scalar** metric in the registry (counters, gauges, probes)
  plus each histogram's O(1) ``.count``/``.sum`` -- percentiles are
  deliberately *not* computed per sample (that would sort every
  histogram at sampling frequency); exporters still provide them for
  end-of-run snapshots,
- the **active span stack** (what the machine was doing at the sampling
  instant -- the classic profiler view),
- **heap occupancy** and **armed-watch counts**,
- per-allocation-group **lifetime distributions** (a live Figure 3
  view) when a group source is attached,
- a derived **monitoring-overhead fraction**: cycles spent in watch
  syscalls and ECC fault handling over total CPU cycles -- the live
  version of the paper's Table 3 overhead number.

Samples accumulate in a bounded ring (``capacity``), so a sampler's
memory footprint is O(capacity) regardless of run length; evicted
samples are counted, never silently lost.  Sampling is **off by
default**: a freshly booted machine registers no timers, and the
profiler only observes once :meth:`SamplingProfiler.start` runs.
"""

from collections import deque

from repro.obs.metrics import Histogram

#: samples retained by the ring buffer.
DEFAULT_CAPACITY = 512

#: span histograms whose ``.sum`` is pure monitoring work -- the
#: numerator of the live overhead fraction.  ``ecc.fault`` covers the
#: whole delivery including the nested ``ecc.handler`` span, so the
#: handler is deliberately absent (it would double count).
MONITORING_SPAN_SUMS = (
    "span.syscall.WatchMemory.cycles",
    "span.syscall.DisableWatchMemory.cycles",
    "span.ecc.fault.cycles",
)

#: allocation groups included per sample (largest live_bytes first).
DEFAULT_GROUP_LIMIT = 8


class Sample:
    """One observation of the machine, stamped at a sampling instant."""

    __slots__ = ("index", "cycle", "metrics", "spans", "groups",
                 "overhead_fraction")

    def __init__(self, index, cycle, metrics, spans, groups,
                 overhead_fraction):
        self.index = index
        self.cycle = cycle
        #: flat scalar view: counters/gauges/probes by name, histograms
        #: as ``<name>.count`` / ``<name>.sum`` only.
        self.metrics = metrics
        #: active span paths, outermost first (may be empty).
        self.spans = spans
        #: live Figure 3 view: per-group lifetime statistics.
        self.groups = groups
        self.overhead_fraction = overhead_fraction

    def get(self, name, default=0):
        return self.metrics.get(name, default)

    def __contains__(self, name):
        return name in self.metrics

    @property
    def heap_live_bytes(self):
        return self.metrics.get("heap.live_bytes", 0)

    @property
    def armed_watches(self):
        return self.metrics.get("safemem.watch.armed", 0)

    def to_dict(self):
        return {
            "index": self.index,
            "cycle": self.cycle,
            "metrics": dict(self.metrics),
            "spans": list(self.spans),
            "groups": [dict(group) for group in self.groups],
            "overhead_fraction": self.overhead_fraction,
        }

    @classmethod
    def from_dict(cls, record):
        """Rebuild a sample from :meth:`to_dict` output (checkpoints)."""
        return cls(
            index=record["index"],
            cycle=record["cycle"],
            metrics=dict(record["metrics"]),
            spans=list(record["spans"]),
            groups=[dict(group) for group in record["groups"]],
            overhead_fraction=record["overhead_fraction"],
        )

    def __repr__(self):
        return (f"Sample(#{self.index} @ {self.cycle}, "
                f"{len(self.metrics)} metrics, "
                f"{len(self.spans)} open spans)")


def group_stats(groups, limit=DEFAULT_GROUP_LIMIT, now=0):
    """Flatten allocation groups into per-group lifetime statistics.

    ``groups`` is any iterable of
    :class:`~repro.core.groups.MemoryObjectGroup`; the ``limit``
    largest groups by live bytes are kept (a sample must stay bounded
    even when a workload allocates from thousands of sites).
    """
    rows = []
    for group in groups:
        rows.append({
            "size": group.size,
            "call_signature": group.call_signature,
            "live_count": group.live_count,
            "live_bytes": group.live_bytes,
            "total_allocated": group.total_allocated,
            "total_freed": group.total_freed,
            "max_lifetime": group.max_lifetime,
            "stable_time": group.stable_time,
            "oldest_age": max(
                (obj.age(now) for obj in group.oldest_live(1)),
                default=0,
            ),
        })
    rows.sort(key=lambda row: (-row["live_bytes"], row["size"],
                               row["call_signature"]))
    return rows[:limit]


def leak_group_source(monitor):
    """Group source reading a SafeMem monitor's leak-detector table.

    Resolves lazily, so it can be wired before the monitor attaches
    (the leak detector only exists after ``on_attach``).
    """
    def source():
        leak = getattr(monitor, "leak", None)
        return leak.groups if leak is not None else ()
    return source


class SamplingProfiler:
    """Cycle-driven sampler bound to one machine.

    Observation-only: taking a sample never advances the simulated
    clock, exactly like the registry's snapshot probes -- the cost a
    production deployment would pay is real (Python) time, which
    ``benchmarks/bench_monitor.py`` measures.
    """

    def __init__(self, machine, interval_cycles, capacity=DEFAULT_CAPACITY,
                 group_source=None, group_limit=DEFAULT_GROUP_LIMIT):
        if interval_cycles <= 0:
            raise ValueError(
                f"sampling interval must be positive: {interval_cycles}"
            )
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.machine = machine
        self.interval_cycles = interval_cycles
        self.group_source = group_source
        self.group_limit = group_limit
        self._ring = deque(maxlen=capacity)
        self._listeners = []
        self._timer = None
        self.samples_taken = 0
        self.samples_evicted = 0
        self._register_metrics(machine.metrics)

    def _register_metrics(self, metrics):
        metrics.probe("sampler.samples", lambda: self.samples_taken,
                      kind="counter",
                      description="samples captured by the profiler")
        metrics.probe("sampler.evicted", lambda: self.samples_evicted,
                      kind="counter",
                      description="samples evicted from the ring")
        metrics.probe("sampler.interval_cycles",
                      lambda: self.interval_cycles if self.running else 0,
                      kind="gauge",
                      description="active sampling interval (0 = off)")
        metrics.probe("sampler.overhead_fraction",
                      self._current_overhead_fraction, kind="gauge",
                      description="monitoring cycles / total CPU cycles "
                                  "(live Table 3 view)")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self):
        return self._timer is not None

    def start(self):
        """Register the sampling timer on the machine's clock."""
        if self._timer is None:
            self._timer = self.machine.clock.every(
                self.interval_cycles, self._on_timer
            )
        return self

    def stop(self):
        """Cancel the timer (retained samples stay readable)."""
        if self._timer is not None:
            self.machine.clock.cancel(self._timer)
            self._timer = None

    def add_listener(self, listener):
        """Call ``listener(sample)`` for every captured sample."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener):
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def _on_timer(self, _clock):
        self.sample_now()

    def sample_now(self):
        """Capture one sample immediately (also used at end of run)."""
        machine = self.machine
        cycle = machine.clock.cycles
        metrics = {}
        for name, metric in machine.metrics.instruments().items():
            if isinstance(metric, Histogram):
                # O(1) reads only; no per-sample percentile sort.
                metrics[f"{name}.count"] = metric.count
                metrics[f"{name}.sum"] = metric.sum
            else:
                metrics[name] = metric.value
        spans = ["/".join(span.path)
                 for span in machine.tracer.active_spans()]
        groups = ()
        if self.group_source is not None:
            groups = group_stats(self.group_source(),
                                 limit=self.group_limit, now=cycle)
        sample = Sample(
            index=self.samples_taken,
            cycle=cycle,
            metrics=metrics,
            spans=spans,
            groups=groups,
            overhead_fraction=_overhead_fraction(metrics, cycle),
        )
        if len(self._ring) == self._ring.maxlen:
            self.samples_evicted += 1
        self._ring.append(sample)
        self.samples_taken += 1
        # The engine and sinks read the sample *after* its own
        # sampler.samples count: expose the derived gauge too.
        sample.metrics["sampler.overhead_fraction"] = \
            sample.overhead_fraction
        for listener in list(self._listeners):
            listener(sample)
        return sample

    def _current_overhead_fraction(self):
        latest = self.latest()
        return latest.overhead_fraction if latest is not None else 0.0

    # ------------------------------------------------------------------
    # reading the ring
    # ------------------------------------------------------------------
    def samples(self):
        """Retained samples, oldest first."""
        return list(self._ring)

    def latest(self):
        return self._ring[-1] if self._ring else None

    def series(self, name):
        """``[(cycle, value), ...]`` of one metric across the ring."""
        return [(sample.cycle, sample.metrics.get(name, 0))
                for sample in self._ring]

    def __len__(self):
        return len(self._ring)

    # ------------------------------------------------------------------
    # durable state (repro.checkpoint/v1)
    # ------------------------------------------------------------------
    def state_dict(self):
        """JSON-able ring contents and counters for checkpoints."""
        return {
            "interval_cycles": self.interval_cycles,
            "capacity": self._ring.maxlen,
            "samples_taken": self.samples_taken,
            "samples_evicted": self.samples_evicted,
            "ring": [sample.to_dict() for sample in self._ring],
        }

    def load_state(self, payload):
        """Restore :meth:`state_dict` output into this profiler."""
        if payload["capacity"] != self._ring.maxlen:
            raise ValueError(
                f"sampler state mismatch: recorded capacity "
                f"{payload['capacity']}, profiler has {self._ring.maxlen}"
            )
        if payload["interval_cycles"] != self.interval_cycles:
            raise ValueError(
                f"sampler state mismatch: recorded interval "
                f"{payload['interval_cycles']}, profiler has "
                f"{self.interval_cycles}"
            )
        self.samples_taken = payload["samples_taken"]
        self.samples_evicted = payload["samples_evicted"]
        self._ring.clear()
        for record in payload["ring"]:
            self._ring.append(Sample.from_dict(record))
        return self


def _overhead_fraction(metrics, cycle):
    if cycle <= 0:
        return 0.0
    monitoring = sum(metrics.get(f"{name}.sum", 0)
                     for name in MONITORING_SPAN_SUMS)
    return monitoring / cycle


# ----------------------------------------------------------------------
# live report (the `repro monitor` top-style panel)
# ----------------------------------------------------------------------
def render_top(sample, alerts=None, top=5, title="live monitor"):
    """Render one sample as a compact top-style panel.

    ``alerts`` is an optional iterable of
    :class:`~repro.obs.alerts.Alert` runtime states; firing alerts are
    listed first, most severe on top.
    """
    lines = [f"{title} @ cycle {sample.cycle:,} "
             f"(sample #{sample.index})"]
    lines.append(
        f"  heap {sample.heap_live_bytes:,} B live | "
        f"watches {sample.armed_watches} armed | "
        f"overhead {sample.overhead_fraction * 100:.2f}% | "
        f"ecc traps {sample.get('kernel.ecc_traps')}"
    )
    if sample.spans:
        lines.append("  in: " + " > ".join(sample.spans[-1].split("/")))
    firing = [alert for alert in (alerts or ())
              if alert.state == "firing"]
    if firing:
        lines.append("  alerts:")
        for alert in sorted(firing,
                            key=lambda a: -a.rule.severity_rank):
            lines.append(
                f"    [{alert.rule.severity.upper():>8}] "
                f"{alert.rule.name} "
                f"(value {alert.last_value:g}, "
                f"fired @ {alert.fired_at_cycle:,})"
            )
    if sample.groups:
        lines.append("  top allocation groups (live Figure 3 view):")
        lines.append("    size  callsig     live     bytes "
                     "max_life   stable")
        for group in sample.groups[:top]:
            lines.append(
                f"    {group['size']:>4}  {group['call_signature']:#09x} "
                f"{group['live_count']:>7} {group['live_bytes']:>9,} "
                f"{group['max_lifetime']:>8,} {group['stable_time']:>8,}"
            )
    return "\n".join(lines)
