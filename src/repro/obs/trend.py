"""Streaming leak-trend analytics over :class:`SamplingProfiler` samples.

SafeMem's lifetime-outlier heuristic (``repro.core.leak``) reasons
about *individual allocations*; production leak hunting usually starts
one level up, from the time series the telemetry stack already ships:
is ``live_bytes`` for some allocation site still climbing after the
service warmed up?  The :class:`TrendEngine` answers that question
online.  It subscribes to the sampler (``sampler.add_listener(
engine.observe)``) and maintains one bounded-window state per series:

- ``heap.live_bytes`` -- whole-heap occupancy,
- ``safemem.watch.armed`` -- watch-pool occupancy,
- ``group:<size>:<call_signature>`` -- per-leak-group live bytes from
  :func:`~repro.obs.sampler.leak_group_source` rows.

Every observation runs **three** detectors over every series (they are
cheap, and computing all of them keeps bundles and the head-to-head
experiment comparable without re-running workloads):

``theil-sen``
    Robust slope: the median of all pairwise slopes over the window,
    reported in **bytes per megacycle**.  Judged only once the window
    is *full* -- the median then dilutes a one-off level step (a
    buffer pool warming up) to ~0, so only a *sustained* ramp breaches.
    Insensitive to up to ~29% outlier samples (GC pauses, burst
    frees), but the slowest to react.
``cusum``
    One-sided cumulative sum over *increments*:
    ``s = max(0, s + (x_t - x_{t-1}) - drift)``.  The statistic is net
    growth in **bytes** above the allowed drift; fastest to react to a
    step or a sustained ramp, least robust to a one-off spike.
``page-hinkley``
    Page-Hinkley test: ``m_t += x_t - mean_t - delta`` with statistic
    ``m_t - min(m)``, the **cumulative** bytes above the running mean
    (byte-samples).  Sits between the two: tolerates level shifts the
    series recovers from, flags ones it does not.

Each (series, detector) pair carries a hysteresis latch: the verdict
becomes *breached* when the statistic crosses the detector threshold
and clears only after it falls below ``threshold * clear_ratio``.
Latch **edges** (onset and clear) are emitted as sparse
:data:`~repro.common.events.EventKind.TREND` events -- stamped on the
simulated clock, so forensic replay reproduces them bit-exactly -- and
the latest verdicts are served to the :class:`~repro.obs.alerts.
AlertEngine` through :meth:`TrendEngine.judge`, which interprets
``trend``-kind rule metrics as ``<detector>/<series-pattern>``
selectors.

A tracked group series that vanishes from a sample (the workload freed
the site, or it fell out of the sampler's top-N) is **ended**: its
state is dropped so a later reappearance starts a fresh window instead
of computing a slope across the gap.

The engine exports a ``trend.*`` probe namespace (documented in
docs/OBSERVABILITY.md); note that probe values captured *in* a sample
reflect the previous observation, because the sampler snapshots
metrics before listeners run.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.events import EventKind

#: detector names accepted in ``trend``-rule selectors and ``--trend``.
DETECTORS = ("theil-sen", "cusum", "page-hinkley")

#: samples per series window (Theil-Sen pairs grow quadratically).
DEFAULT_WINDOW = 32

#: minimum points before :func:`theil_sen_slope` reports (else 0.0);
#: the engine is stricter and judges only on a *full* window.
MIN_SLOPE_POINTS = 4

#: slope unit: bytes per this many cycles.
MEGACYCLE = 1_000_000

#: default sustained-growth threshold, bytes per megacycle.
DEFAULT_SLOPE_THRESHOLD = 64.0

#: default net-growth threshold for CUSUM, bytes.  Sized above the
#: steady-state footprint a clean working set accretes (the corpus'
#: clean runs plateau below 8 KiB per group).
DEFAULT_CUSUM_THRESHOLD = 16_384.0

#: default cumulative above-running-mean threshold for Page-Hinkley,
#: in byte-samples.  Clean transients in the corpus stay under ~45k.
DEFAULT_PH_THRESHOLD = 131_072.0

#: per-sample growth tolerated by CUSUM before it accumulates, bytes.
DEFAULT_CUSUM_DRIFT = 0.0

#: per-sample magnitude ignored by Page-Hinkley, bytes.
DEFAULT_PH_DELTA = 0.0

#: breached latches clear below ``threshold * clear_ratio``.
DEFAULT_CLEAR_RATIO = 0.5


def group_series_name(size, call_signature):
    """Series name for one allocation group, e.g. ``group:48:0x2a``."""
    return f"group:{size}:{call_signature:#x}"


def parse_selector(selector):
    """Split a ``<detector>/<series-pattern>`` selector.

    The pattern is ``*`` (every series), a ``prefix*`` glob, or an
    exact series name.  Raises :class:`ConfigurationError` on a
    missing ``/`` or an unknown detector.
    """
    if not isinstance(selector, str) or "/" not in selector:
        raise ConfigurationError(
            f"trend selector {selector!r} must look like "
            f"'<detector>/<series-pattern>' "
            f"(e.g. 'theil-sen/group:*')"
        )
    detector, pattern = selector.split("/", 1)
    if detector not in DETECTORS:
        raise ConfigurationError(
            f"trend selector {selector!r}: unknown detector "
            f"{detector!r} (choose from {', '.join(DETECTORS)})"
        )
    if not pattern:
        raise ConfigurationError(
            f"trend selector {selector!r} has an empty series pattern"
        )
    return detector, pattern


def series_matches(pattern, name):
    """True when a selector pattern covers a series name."""
    if pattern == "*":
        return True
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return name == pattern


@dataclass(frozen=True)
class TrendVerdict:
    """One detector's latest word on one series."""

    series: str
    detector: str
    cycle: int
    value: float
    breached: bool

    def to_dict(self):
        return {
            "series": self.series,
            "detector": self.detector,
            "cycle": self.cycle,
            "value": self.value,
            "breached": self.breached,
        }


class _SeriesState:
    """Detector state for one tracked series."""

    __slots__ = ("window", "last_value", "cusum", "ph_count", "ph_mean",
                 "ph_m", "ph_min", "breached", "last_cycle",
                 "points_seen")

    def __init__(self, window):
        #: (cycle, value) ring for the Theil-Sen window.
        self.window = deque(maxlen=window)
        self.last_value = None
        self.cusum = 0.0
        self.ph_count = 0
        self.ph_mean = 0.0
        self.ph_m = 0.0
        self.ph_min = 0.0
        #: detector name -> currently latched breached?
        self.breached = {detector: False for detector in DETECTORS}
        self.last_cycle = 0
        self.points_seen = 0


def theil_sen_slope(points):
    """Median pairwise slope of ``(cycle, value)`` points, per cycle.

    Returns 0.0 below :data:`MIN_SLOPE_POINTS` -- a two-sample
    "window" is noise, not a trend.
    """
    if len(points) < MIN_SLOPE_POINTS:
        return 0.0
    slopes = []
    for i in range(len(points)):
        cycle_i, value_i = points[i]
        for j in range(i + 1, len(points)):
            cycle_j, value_j = points[j]
            if cycle_j != cycle_i:
                slopes.append((value_j - value_i) / (cycle_j - cycle_i))
    if not slopes:
        return 0.0
    slopes.sort()
    mid = len(slopes) // 2
    if len(slopes) % 2:
        return slopes[mid]
    return (slopes[mid - 1] + slopes[mid]) / 2.0


class TrendEngine:
    """Online slope/changepoint detection over sampler series.

    Attach with ``sampler.add_listener(engine.observe)`` **before** the
    alert engine's listener, so ``trend``-kind rules judge the verdicts
    of the sample being evaluated rather than the previous one.
    """

    def __init__(self, machine, window=DEFAULT_WINDOW,
                 slope_threshold=DEFAULT_SLOPE_THRESHOLD,
                 cusum_threshold=DEFAULT_CUSUM_THRESHOLD,
                 cusum_drift=DEFAULT_CUSUM_DRIFT,
                 ph_threshold=DEFAULT_PH_THRESHOLD,
                 ph_delta=DEFAULT_PH_DELTA,
                 clear_ratio=DEFAULT_CLEAR_RATIO):
        if window < MIN_SLOPE_POINTS:
            raise ConfigurationError(
                f"trend window must be >= {MIN_SLOPE_POINTS}, "
                f"got {window}"
            )
        if not 0.0 <= clear_ratio <= 1.0:
            raise ConfigurationError(
                f"trend clear_ratio must be within [0, 1], "
                f"got {clear_ratio}"
            )
        self._machine = machine
        self._events = machine.events
        self.window = window
        self.clear_ratio = clear_ratio
        self.thresholds = {
            "theil-sen": float(slope_threshold),
            "cusum": float(cusum_threshold),
            "page-hinkley": float(ph_threshold),
        }
        self.cusum_drift = float(cusum_drift)
        self.ph_delta = float(ph_delta)
        self._series = {}
        #: series name -> {detector -> TrendVerdict} from the latest
        #: observation of that series.
        self._verdicts = {}
        self.evaluations = 0
        self.series_ended = 0
        self.breach_onsets = 0
        self._register_probes(machine.metrics)

    # ------------------------------------------------------------------
    # probes (documented in docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def _register_probes(self, metrics):
        metrics.probe("trend.series", lambda: len(self._series),
                      kind="gauge",
                      description="series currently tracked")
        metrics.probe("trend.evaluations",
                      lambda: self.evaluations,
                      description="samples observed by the engine")
        metrics.probe("trend.verdicts", lambda: self.breach_onsets,
                      description="breach onsets (latch closed)")
        metrics.probe("trend.series_ended",
                      lambda: self.series_ended,
                      description="series ended (group freed or "
                                  "evicted)")
        metrics.probe("trend.breaching", self._breaching_count,
                      kind="gauge",
                      description="(series, detector) pairs latched "
                                  "breached")
        metrics.probe("trend.max_slope", self._max_slope, kind="gauge",
                      description="largest Theil-Sen slope across "
                                  "series, bytes/Mcycle")

    def _breaching_count(self):
        return sum(
            1 for state in self._series.values()
            for latched in state.breached.values() if latched
        )

    def _max_slope(self):
        slopes = [
            verdicts["theil-sen"].value
            for verdicts in self._verdicts.values()
            if "theil-sen" in verdicts
        ]
        return max(slopes) if slopes else 0.0

    # ------------------------------------------------------------------
    # observation (the sampler listener)
    # ------------------------------------------------------------------
    def observe(self, sample):
        """Update every detector with one :class:`Sample`."""
        self.evaluations += 1
        values = {
            "heap.live_bytes": float(sample.heap_live_bytes),
            "safemem.watch.armed": float(sample.armed_watches),
        }
        for row in sample.groups:
            name = group_series_name(row["size"],
                                     row["call_signature"])
            values[name] = float(row["live_bytes"])
        for name in list(self._series):
            if name not in values:
                self._end_series(name, sample.cycle)
        for name, value in sorted(values.items()):
            self._observe_series(name, sample.cycle, value)

    def _end_series(self, name, cycle):
        state = self._series.pop(name)
        self._verdicts.pop(name, None)
        self.series_ended += 1
        for detector, latched in sorted(state.breached.items()):
            if latched:
                self._events.emit(
                    EventKind.TREND,
                    series=name, detector=detector, breached=False,
                    value=0.0, reason="series-ended",
                )

    def _observe_series(self, name, cycle, value):
        state = self._series.get(name)
        if state is None:
            state = self._series[name] = _SeriesState(self.window)
        previous = state.last_value
        state.window.append((cycle, value))
        state.last_cycle = cycle
        state.points_seen += 1
        # CUSUM over increments (needs a previous point).
        if previous is not None:
            state.cusum = max(
                0.0, state.cusum + (value - previous) - self.cusum_drift
            )
        # Page-Hinkley running mean / minimum.
        state.ph_count += 1
        state.ph_mean += (value - state.ph_mean) / state.ph_count
        state.ph_m += value - state.ph_mean - self.ph_delta
        state.ph_min = min(state.ph_min, state.ph_m)
        state.last_value = value
        # Theil-Sen is judged only on a full window: the median of
        # pairwise slopes then dilutes a one-off level step (clean
        # warmup) to ~0, so only a sustained ramp reports a slope.
        slope = 0.0
        if len(state.window) == self.window:
            slope = theil_sen_slope(state.window) * MEGACYCLE
        statistics = {
            "theil-sen": slope,
            "cusum": state.cusum,
            "page-hinkley": state.ph_m - state.ph_min,
        }
        verdicts = {}
        for detector in DETECTORS:
            stat = statistics[detector]
            threshold = self.thresholds[detector]
            clear_at = threshold * self.clear_ratio
            latched = state.breached[detector]
            if not latched and stat >= threshold:
                latched = True
                self.breach_onsets += 1
                self._events.emit(
                    EventKind.TREND,
                    series=name, detector=detector, breached=True,
                    value=stat,
                )
            elif latched and stat < clear_at:
                latched = False
                self._events.emit(
                    EventKind.TREND,
                    series=name, detector=detector, breached=False,
                    value=stat,
                )
            state.breached[detector] = latched
            verdicts[detector] = TrendVerdict(
                series=name, detector=detector, cycle=cycle,
                value=stat, breached=latched,
            )
        self._verdicts[name] = verdicts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def judge(self, selector):
        """Latest verdicts matching a ``<detector>/<pattern>`` selector.

        Sorted by series name; used by ``trend``-kind alert rules.
        """
        detector, pattern = parse_selector(selector)
        return [
            self._verdicts[name][detector]
            for name in sorted(self._verdicts)
            if series_matches(pattern, name)
        ]

    def verdicts(self):
        """Every latest verdict, sorted by (series, detector)."""
        return [
            self._verdicts[name][detector]
            for name in sorted(self._verdicts)
            for detector in DETECTORS
        ]

    def summary(self):
        """JSON-able engine state for forensic bundles."""
        series = []
        for name in sorted(self._series):
            state = self._series[name]
            series.append({
                "name": name,
                "points": len(state.window),
                "points_seen": state.points_seen,
                "last_cycle": state.last_cycle,
                "last_value": state.last_value,
                "verdicts": [
                    self._verdicts[name][detector].to_dict()
                    for detector in DETECTORS
                    if name in self._verdicts
                ],
            })
        return {
            "window": self.window,
            "clear_ratio": self.clear_ratio,
            "thresholds": dict(self.thresholds),
            "evaluations": self.evaluations,
            "series_ended": self.series_ended,
            "breach_onsets": self.breach_onsets,
            "series": series,
        }
