"""Streaming leak-trend analytics over :class:`SamplingProfiler` samples.

SafeMem's lifetime-outlier heuristic (``repro.core.leak``) reasons
about *individual allocations*; production leak hunting usually starts
one level up, from the time series the telemetry stack already ships:
is ``live_bytes`` for some allocation site still climbing after the
service warmed up?  The :class:`TrendEngine` answers that question
online.  It subscribes to the sampler (``sampler.add_listener(
engine.observe)``) and maintains one bounded-window state per series:

- ``heap.live_bytes`` -- whole-heap occupancy,
- ``safemem.watch.armed`` -- watch-pool occupancy,
- ``group:<size>:<call_signature>`` -- per-leak-group live bytes from
  :func:`~repro.obs.sampler.leak_group_source` rows.

Every observation runs **three** detectors over every series (they are
cheap, and computing all of them keeps bundles and the head-to-head
experiment comparable without re-running workloads):

``theil-sen``
    Robust slope: the median of all pairwise slopes over the window,
    reported in **bytes per megacycle**.  Judged only once the window
    is *full* -- the median then dilutes a one-off level step (a
    buffer pool warming up) to ~0, so only a *sustained* ramp breaches.
    Insensitive to up to ~29% outlier samples (GC pauses, burst
    frees), but the slowest to react.
``cusum``
    One-sided cumulative sum over *increments*:
    ``s = max(0, s + (x_t - x_{t-1}) - drift)``.  The statistic is net
    growth in **bytes** above the allowed drift; fastest to react to a
    step or a sustained ramp, least robust to a one-off spike.
``page-hinkley``
    Page-Hinkley test: ``m_t += x_t - mean_t - delta`` with statistic
    ``m_t - min(m)``, the **cumulative** bytes above the running mean
    (byte-samples).  Sits between the two: tolerates level shifts the
    series recovers from, flags ones it does not.

Each (series, detector) pair carries a hysteresis latch: the verdict
becomes *breached* when the statistic crosses the detector threshold
and clears only after it falls below ``threshold * clear_ratio``.
Latch **edges** (onset and clear) are emitted as sparse
:data:`~repro.common.events.EventKind.TREND` events -- stamped on the
simulated clock, so forensic replay reproduces them bit-exactly -- and
the latest verdicts are served to the :class:`~repro.obs.alerts.
AlertEngine` through :meth:`TrendEngine.judge`, which interprets
``trend``-kind rule metrics as ``<detector>/<series-pattern>``
selectors.

A tracked group series that vanishes from a sample (the workload freed
the site, or it fell out of the sampler's top-N) is **ended**: its
state is dropped so a later reappearance starts a fresh window instead
of computing a slope across the gap.

With ``seasonal_period`` set, the engine folds every observation onto
its phase within the period and subtracts a **frozen per-phase median
baseline** before the detectors see it.  During the first
``seasonal_warmup`` periods the engine only records (no verdicts, no
events); at the first post-warmup observation of a series its baseline
freezes -- a continuously updated baseline would slowly absorb a real
leak -- and from then on the detectors judge *residuals*.  Clean
diurnal traffic (a session pool that swells by day and drains by
night) then cancels to ~0, while a leak's residual keeps climbing.
Phase bins a series never visited during warmup copy the circularly
nearest recorded bin; a series first seen after warmup gets an
all-zero baseline (raw values pass through).  See
docs/OBSERVABILITY.md.

The whole engine state -- windows, CUSUM/Page-Hinkley accumulators,
hysteresis latches, seasonal baselines -- round-trips bit-exactly
through :meth:`TrendEngine.state_dict` / :meth:`TrendEngine.load_state`
for ``repro.checkpoint/v1`` documents.

The engine exports a ``trend.*`` probe namespace (documented in
docs/OBSERVABILITY.md); note that probe values captured *in* a sample
reflect the previous observation, because the sampler snapshots
metrics before listeners run.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.events import EventKind

#: detector names accepted in ``trend``-rule selectors and ``--trend``.
DETECTORS = ("theil-sen", "cusum", "page-hinkley")

#: samples per series window (Theil-Sen pairs grow quadratically).
DEFAULT_WINDOW = 32

#: minimum points before :func:`theil_sen_slope` reports (else 0.0);
#: the engine is stricter and judges only on a *full* window.
MIN_SLOPE_POINTS = 4

#: slope unit: bytes per this many cycles.
MEGACYCLE = 1_000_000

#: default sustained-growth threshold, bytes per megacycle.
DEFAULT_SLOPE_THRESHOLD = 64.0

#: default net-growth threshold for CUSUM, bytes.  Sized above the
#: steady-state footprint a clean working set accretes (the corpus'
#: clean runs plateau below 8 KiB per group).
DEFAULT_CUSUM_THRESHOLD = 16_384.0

#: default cumulative above-running-mean threshold for Page-Hinkley,
#: in byte-samples.  Clean transients in the corpus stay under ~45k.
DEFAULT_PH_THRESHOLD = 131_072.0

#: per-sample growth tolerated by CUSUM before it accumulates, bytes.
DEFAULT_CUSUM_DRIFT = 0.0

#: per-sample magnitude ignored by Page-Hinkley, bytes.
DEFAULT_PH_DELTA = 0.0

#: breached latches clear below ``threshold * clear_ratio``.
DEFAULT_CLEAR_RATIO = 0.5

#: phase bins the seasonal baseline folds a period into.
DEFAULT_SEASONAL_PHASES = 32

#: full periods recorded before the seasonal baseline freezes.
DEFAULT_SEASONAL_WARMUP = 2


def group_series_name(size, call_signature):
    """Series name for one allocation group, e.g. ``group:48:0x2a``."""
    return f"group:{size}:{call_signature:#x}"


def parse_selector(selector):
    """Split a ``<detector>/<series-pattern>`` selector.

    The pattern is ``*`` (every series), a ``prefix*`` glob, or an
    exact series name.  Raises :class:`ConfigurationError` on a
    missing ``/`` or an unknown detector.
    """
    if not isinstance(selector, str) or "/" not in selector:
        raise ConfigurationError(
            f"trend selector {selector!r} must look like "
            f"'<detector>/<series-pattern>' "
            f"(e.g. 'theil-sen/group:*')"
        )
    detector, pattern = selector.split("/", 1)
    if detector not in DETECTORS:
        raise ConfigurationError(
            f"trend selector {selector!r}: unknown detector "
            f"{detector!r} (choose from {', '.join(DETECTORS)})"
        )
    if not pattern:
        raise ConfigurationError(
            f"trend selector {selector!r} has an empty series pattern"
        )
    return detector, pattern


def series_matches(pattern, name):
    """True when a selector pattern covers a series name."""
    if pattern == "*":
        return True
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return name == pattern


@dataclass(frozen=True)
class TrendVerdict:
    """One detector's latest word on one series."""

    series: str
    detector: str
    cycle: int
    value: float
    breached: bool

    def to_dict(self):
        return {
            "series": self.series,
            "detector": self.detector,
            "cycle": self.cycle,
            "value": self.value,
            "breached": self.breached,
        }


class _SeriesState:
    """Detector state for one tracked series."""

    __slots__ = ("window", "last_value", "cusum", "ph_count", "ph_mean",
                 "ph_m", "ph_min", "breached", "last_cycle",
                 "points_seen", "season_bins", "baseline")

    def __init__(self, window, seasonal_phases=None):
        #: (cycle, value) ring for the Theil-Sen window.
        self.window = deque(maxlen=window)
        self.last_value = None
        self.cusum = 0.0
        self.ph_count = 0
        self.ph_mean = 0.0
        self.ph_m = 0.0
        self.ph_min = 0.0
        #: detector name -> currently latched breached?
        self.breached = {detector: False for detector in DETECTORS}
        self.last_cycle = 0
        self.points_seen = 0
        #: per-phase raw values recorded during seasonal warmup.
        self.season_bins = ([[] for _ in range(seasonal_phases)]
                            if seasonal_phases else None)
        #: per-phase frozen medians (None until the baseline freezes).
        self.baseline = None


def _median(values):
    """Median of a non-empty list (sorted internally)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def theil_sen_slope(points):
    """Median pairwise slope of ``(cycle, value)`` points, per cycle.

    Returns 0.0 below :data:`MIN_SLOPE_POINTS` -- a two-sample
    "window" is noise, not a trend.
    """
    if len(points) < MIN_SLOPE_POINTS:
        return 0.0
    slopes = []
    for i in range(len(points)):
        cycle_i, value_i = points[i]
        for j in range(i + 1, len(points)):
            cycle_j, value_j = points[j]
            if cycle_j != cycle_i:
                slopes.append((value_j - value_i) / (cycle_j - cycle_i))
    if not slopes:
        return 0.0
    slopes.sort()
    mid = len(slopes) // 2
    if len(slopes) % 2:
        return slopes[mid]
    return (slopes[mid - 1] + slopes[mid]) / 2.0


class TrendEngine:
    """Online slope/changepoint detection over sampler series.

    Attach with ``sampler.add_listener(engine.observe)`` **before** the
    alert engine's listener, so ``trend``-kind rules judge the verdicts
    of the sample being evaluated rather than the previous one.
    """

    def __init__(self, machine, window=DEFAULT_WINDOW,
                 slope_threshold=DEFAULT_SLOPE_THRESHOLD,
                 cusum_threshold=DEFAULT_CUSUM_THRESHOLD,
                 cusum_drift=DEFAULT_CUSUM_DRIFT,
                 ph_threshold=DEFAULT_PH_THRESHOLD,
                 ph_delta=DEFAULT_PH_DELTA,
                 clear_ratio=DEFAULT_CLEAR_RATIO,
                 seasonal_period=None,
                 seasonal_phases=DEFAULT_SEASONAL_PHASES,
                 seasonal_warmup=DEFAULT_SEASONAL_WARMUP,
                 emit_events=True, register_probes=True):
        if window < MIN_SLOPE_POINTS:
            raise ConfigurationError(
                f"trend window must be >= {MIN_SLOPE_POINTS}, "
                f"got {window}"
            )
        if not 0.0 <= clear_ratio <= 1.0:
            raise ConfigurationError(
                f"trend clear_ratio must be within [0, 1], "
                f"got {clear_ratio}"
            )
        if seasonal_period is not None and seasonal_period < 1:
            raise ConfigurationError(
                f"seasonal period must be >= 1 cycle, "
                f"got {seasonal_period}"
            )
        if seasonal_phases < 1:
            raise ConfigurationError(
                f"seasonal phases must be >= 1, got {seasonal_phases}"
            )
        if seasonal_warmup < 1:
            raise ConfigurationError(
                f"seasonal warmup must be >= 1 period, "
                f"got {seasonal_warmup}"
            )
        self._machine = machine
        self._events = machine.events
        self.window = window
        self.clear_ratio = clear_ratio
        self.thresholds = {
            "theil-sen": float(slope_threshold),
            "cusum": float(cusum_threshold),
            "page-hinkley": float(ph_threshold),
        }
        self.cusum_drift = float(cusum_drift)
        self.ph_delta = float(ph_delta)
        self.seasonal_period = seasonal_period
        self.seasonal_phases = seasonal_phases
        self.seasonal_warmup = seasonal_warmup
        #: False silences TREND event emission -- a purely
        #: computational observer (e.g. the no-baseline control engine
        #: the SEASON experiment runs alongside) that cannot perturb
        #: the replayable event stream.
        self.emit_events = emit_events
        self._series = {}
        #: series name -> {detector -> TrendVerdict} from the latest
        #: observation of that series.
        self._verdicts = {}
        self.evaluations = 0
        self.series_ended = 0
        self.breach_onsets = 0
        #: breach-onset log: {"cycle", "series", "detector"} dicts in
        #: onset order (experiments score control engines from this).
        self.onsets = []
        if register_probes:
            self._register_probes(machine.metrics)

    # ------------------------------------------------------------------
    # probes (documented in docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def _register_probes(self, metrics):
        metrics.probe("trend.series", lambda: len(self._series),
                      kind="gauge",
                      description="series currently tracked")
        metrics.probe("trend.evaluations",
                      lambda: self.evaluations,
                      description="samples observed by the engine")
        metrics.probe("trend.verdicts", lambda: self.breach_onsets,
                      description="breach onsets (latch closed)")
        metrics.probe("trend.series_ended",
                      lambda: self.series_ended,
                      description="series ended (group freed or "
                                  "evicted)")
        metrics.probe("trend.breaching", self._breaching_count,
                      kind="gauge",
                      description="(series, detector) pairs latched "
                                  "breached")
        metrics.probe("trend.max_slope", self._max_slope, kind="gauge",
                      description="largest Theil-Sen slope across "
                                  "series, bytes/Mcycle")

    def _breaching_count(self):
        return sum(
            1 for state in self._series.values()
            for latched in state.breached.values() if latched
        )

    def _max_slope(self):
        slopes = [
            verdicts["theil-sen"].value
            for verdicts in self._verdicts.values()
            if "theil-sen" in verdicts
        ]
        return max(slopes) if slopes else 0.0

    # ------------------------------------------------------------------
    # observation (the sampler listener)
    # ------------------------------------------------------------------
    def observe(self, sample):
        """Update every detector with one :class:`Sample`."""
        self.evaluations += 1
        values = {
            "heap.live_bytes": float(sample.heap_live_bytes),
            "safemem.watch.armed": float(sample.armed_watches),
        }
        for row in sample.groups:
            name = group_series_name(row["size"],
                                     row["call_signature"])
            values[name] = float(row["live_bytes"])
        for name in list(self._series):
            if name not in values:
                self._end_series(name, sample.cycle)
        for name, value in sorted(values.items()):
            self._observe_series(name, sample.cycle, value)

    def _end_series(self, name, cycle):
        state = self._series.pop(name)
        self._verdicts.pop(name, None)
        self.series_ended += 1
        for detector, latched in sorted(state.breached.items()):
            if latched and self.emit_events:
                self._events.emit(
                    EventKind.TREND,
                    series=name, detector=detector, breached=False,
                    value=0.0, reason="series-ended",
                )

    def _seasonal_adjust(self, state, cycle, value):
        """Seasonal pipeline: record during warmup, residual after.

        Returns None while the baseline is still warming up (the
        observation was recorded; the detectors must not run), else the
        residual ``value - baseline[phase]``.
        """
        period = self.seasonal_period
        phase = (cycle % period) * self.seasonal_phases // period
        if cycle < period * self.seasonal_warmup:
            state.season_bins[phase].append(value)
            return None
        if state.baseline is None:
            state.baseline = self._freeze_baseline(state.season_bins)
        return value - state.baseline[phase]

    def _freeze_baseline(self, season_bins):
        """Per-phase medians; empty bins copy the nearest recorded bin.

        Sampling cadences rarely visit every phase bin during warmup.
        An unvisited bin takes the median of the circularly nearest
        visited bin -- for a smooth seasonal signal that is off by at
        most one bin of slope, where a series-wide fallback would be
        off by the full seasonal amplitude.  A series with no warmup
        data at all (first seen after warmup) gets an all-zero
        baseline, so its raw values pass through.
        """
        filled = [i for i, bin_values in enumerate(season_bins)
                  if bin_values]
        if not filled:
            return [0.0] * self.seasonal_phases
        medians = {i: _median(season_bins[i]) for i in filled}
        phases = self.seasonal_phases
        return [
            medians[i] if i in medians else medians[min(
                filled,
                key=lambda j: min((i - j) % phases, (j - i) % phases),
            )]
            for i in range(phases)
        ]

    def _observe_series(self, name, cycle, value):
        state = self._series.get(name)
        if state is None:
            state = self._series[name] = _SeriesState(
                self.window,
                seasonal_phases=(self.seasonal_phases
                                 if self.seasonal_period else None))
        if self.seasonal_period:
            value = self._seasonal_adjust(state, cycle, value)
            if value is None:
                # Warmup: the baseline recorded the raw value; the
                # detectors stay gated until it freezes.
                state.last_cycle = cycle
                state.points_seen += 1
                return
        previous = state.last_value
        state.window.append((cycle, value))
        state.last_cycle = cycle
        state.points_seen += 1
        # CUSUM over increments (needs a previous point).
        if previous is not None:
            state.cusum = max(
                0.0, state.cusum + (value - previous) - self.cusum_drift
            )
        # Page-Hinkley running mean / minimum.
        state.ph_count += 1
        state.ph_mean += (value - state.ph_mean) / state.ph_count
        state.ph_m += value - state.ph_mean - self.ph_delta
        state.ph_min = min(state.ph_min, state.ph_m)
        state.last_value = value
        # Theil-Sen is judged only on a full window: the median of
        # pairwise slopes then dilutes a one-off level step (clean
        # warmup) to ~0, so only a sustained ramp reports a slope.
        slope = 0.0
        if len(state.window) == self.window:
            slope = theil_sen_slope(state.window) * MEGACYCLE
        statistics = {
            "theil-sen": slope,
            "cusum": state.cusum,
            "page-hinkley": state.ph_m - state.ph_min,
        }
        verdicts = {}
        for detector in DETECTORS:
            stat = statistics[detector]
            threshold = self.thresholds[detector]
            clear_at = threshold * self.clear_ratio
            latched = state.breached[detector]
            if not latched and stat >= threshold:
                latched = True
                self.breach_onsets += 1
                self.onsets.append({"cycle": cycle, "series": name,
                                    "detector": detector})
                if self.emit_events:
                    self._events.emit(
                        EventKind.TREND,
                        series=name, detector=detector, breached=True,
                        value=stat,
                    )
            elif latched and stat < clear_at:
                latched = False
                if self.emit_events:
                    self._events.emit(
                        EventKind.TREND,
                        series=name, detector=detector, breached=False,
                        value=stat,
                    )
            state.breached[detector] = latched
            verdicts[detector] = TrendVerdict(
                series=name, detector=detector, cycle=cycle,
                value=stat, breached=latched,
            )
        self._verdicts[name] = verdicts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def judge(self, selector):
        """Latest verdicts matching a ``<detector>/<pattern>`` selector.

        Sorted by series name; used by ``trend``-kind alert rules.
        """
        detector, pattern = parse_selector(selector)
        return [
            self._verdicts[name][detector]
            for name in sorted(self._verdicts)
            if series_matches(pattern, name)
        ]

    def verdicts(self):
        """Every latest verdict, sorted by (series, detector)."""
        return [
            self._verdicts[name][detector]
            for name in sorted(self._verdicts)
            for detector in DETECTORS
        ]

    def summary(self):
        """JSON-able engine state for forensic bundles."""
        series = []
        for name in sorted(self._series):
            state = self._series[name]
            row = {
                "name": name,
                "points": len(state.window),
                "points_seen": state.points_seen,
                "last_cycle": state.last_cycle,
                "last_value": state.last_value,
                "verdicts": [
                    self._verdicts[name][detector].to_dict()
                    for detector in DETECTORS
                    if name in self._verdicts
                ],
            }
            if self.seasonal_period:
                row["baseline_ready"] = state.baseline is not None
            series.append(row)
        summary = {
            "window": self.window,
            "clear_ratio": self.clear_ratio,
            "thresholds": dict(self.thresholds),
            "evaluations": self.evaluations,
            "series_ended": self.series_ended,
            "breach_onsets": self.breach_onsets,
            "series": series,
        }
        if self.seasonal_period:
            summary["seasonal"] = {
                "period": self.seasonal_period,
                "phases": self.seasonal_phases,
                "warmup_periods": self.seasonal_warmup,
            }
        return summary

    # ------------------------------------------------------------------
    # durable state (repro.checkpoint/v1)
    # ------------------------------------------------------------------
    def state_dict(self):
        """Complete detector state, JSON-able and bit-exact.

        Everything a resumed engine needs to continue producing the
        same verdicts: windows, CUSUM/Page-Hinkley accumulators,
        hysteresis latches, seasonal bins/baselines, counters, and the
        latest verdicts.  Floats survive a JSON round-trip exactly
        (repr round-trip), so ``load_state(state_dict())`` is the
        identity.
        """
        series = {}
        for name in sorted(self._series):
            state = self._series[name]
            series[name] = {
                "window": [[cycle, value]
                           for cycle, value in state.window],
                "last_value": state.last_value,
                "cusum": state.cusum,
                "ph_count": state.ph_count,
                "ph_mean": state.ph_mean,
                "ph_m": state.ph_m,
                "ph_min": state.ph_min,
                "breached": dict(state.breached),
                "last_cycle": state.last_cycle,
                "points_seen": state.points_seen,
                "season_bins": (
                    [list(bin_values)
                     for bin_values in state.season_bins]
                    if state.season_bins is not None else None),
                "baseline": (list(state.baseline)
                             if state.baseline is not None else None),
            }
        return {
            "window": self.window,
            "clear_ratio": self.clear_ratio,
            "thresholds": dict(self.thresholds),
            "cusum_drift": self.cusum_drift,
            "ph_delta": self.ph_delta,
            "seasonal_period": self.seasonal_period,
            "seasonal_phases": self.seasonal_phases,
            "seasonal_warmup": self.seasonal_warmup,
            "evaluations": self.evaluations,
            "series_ended": self.series_ended,
            "breach_onsets": self.breach_onsets,
            "onsets": [dict(onset) for onset in self.onsets],
            "series": series,
            "verdicts": {
                name: {detector: verdict.to_dict()
                       for detector, verdict in
                       sorted(self._verdicts[name].items())}
                for name in sorted(self._verdicts)
            },
        }

    def load_state(self, payload):
        """Restore :meth:`state_dict` output into this engine.

        The engine's own configuration (window, thresholds, seasonal
        settings) must match the recorded one -- a checkpoint resumed
        under different detector tuning would silently change verdicts.
        """
        for key, mine in (("window", self.window),
                          ("clear_ratio", self.clear_ratio),
                          ("cusum_drift", self.cusum_drift),
                          ("ph_delta", self.ph_delta),
                          ("seasonal_period", self.seasonal_period),
                          ("seasonal_phases", self.seasonal_phases),
                          ("seasonal_warmup", self.seasonal_warmup)):
            if payload.get(key) != mine:
                raise ConfigurationError(
                    f"trend state mismatch: recorded {key}="
                    f"{payload.get(key)!r}, engine has {mine!r}"
                )
        if dict(payload.get("thresholds", {})) != self.thresholds:
            raise ConfigurationError(
                f"trend state mismatch: recorded thresholds="
                f"{payload.get('thresholds')!r}, engine has "
                f"{self.thresholds!r}"
            )
        self.evaluations = payload["evaluations"]
        self.series_ended = payload["series_ended"]
        self.breach_onsets = payload["breach_onsets"]
        self.onsets = [dict(onset)
                       for onset in payload.get("onsets", [])]
        self._series = {}
        self._verdicts = {}
        for name, record in payload["series"].items():
            state = _SeriesState(
                self.window,
                seasonal_phases=(self.seasonal_phases
                                 if self.seasonal_period else None))
            for cycle, value in record["window"]:
                state.window.append((cycle, value))
            state.last_value = record["last_value"]
            state.cusum = record["cusum"]
            state.ph_count = record["ph_count"]
            state.ph_mean = record["ph_mean"]
            state.ph_m = record["ph_m"]
            state.ph_min = record["ph_min"]
            state.breached = {detector: bool(record["breached"][detector])
                              for detector in DETECTORS}
            state.last_cycle = record["last_cycle"]
            state.points_seen = record["points_seen"]
            if record.get("season_bins") is not None:
                state.season_bins = [list(bin_values) for bin_values
                                     in record["season_bins"]]
            if record.get("baseline") is not None:
                state.baseline = list(record["baseline"])
            self._series[name] = state
        for name, verdicts in payload.get("verdicts", {}).items():
            self._verdicts[name] = {
                detector: TrendVerdict(
                    series=record["series"],
                    detector=record["detector"],
                    cycle=record["cycle"],
                    value=record["value"],
                    breached=record["breached"],
                )
                for detector, record in verdicts.items()
            }
        return self
