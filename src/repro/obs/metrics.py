"""Metrics registry: the machine's single source of counters.

Every simulated component registers its counters, gauges, and
histograms here under one documented namespace (``mmu.tlb.hit``,
``ecc.codec.lines_batched``, ``safemem.watch.armed``, ...; see
``docs/OBSERVABILITY.md``).  Experiments read the machine with
cycle-stamped :meth:`MetricsRegistry.snapshot` and do per-phase
accounting with snapshot *deltas* -- absolute counters accumulate for
the life of the machine, so two snapshots are the only way to attribute
work to a phase exactly.

Two registration styles:

- **owned instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`): the caller holds the object and mutates it,
- **probes**: a zero-argument callable sampled at snapshot time.
  Components on the access fast path keep plain integer attributes
  (one ``+= 1`` is cheaper than any method call) and expose them
  through probes, so registering a metric never slows the hot loop.
"""

import math

from repro.common.errors import ConfigurationError

_KINDS = ("counter", "gauge", "histogram")

#: Percentiles flattened out of every histogram snapshot.
HISTOGRAM_PERCENTILES = (50, 90, 99)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Point-in-time value (may go up and down)."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self.value = 0

    def set(self, value):
        self.value = value

    def add(self, amount):
        self.value += amount


class Histogram:
    """Distribution of observed values (cycle durations, sizes, ...).

    Keeps every observation; the simulation is bounded by requests, not
    wall time, so exact percentiles are affordable and reproducible.
    """

    kind = "histogram"
    __slots__ = ("name", "description", "_values", "_sorted", "sum")

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self._values = []
        self._sorted = True
        self.sum = 0

    def observe(self, value):
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        self.sum += value

    @property
    def count(self):
        return len(self._values)

    @property
    def min(self):
        return min(self._values) if self._values else 0

    @property
    def max(self):
        return max(self._values) if self._values else 0

    @property
    def values(self):
        """A copy of every observation (cross-process merge input)."""
        return list(self._values)

    def percentile(self, p):
        """Nearest-rank percentile (p in [0, 100]); 0 when empty."""
        if not self._values:
            return 0
        if not 0 <= p <= 100:
            raise ConfigurationError(f"percentile out of range: {p}")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * len(self._values)))
        return self._values[rank - 1]


def attr_reader(obj, attr):
    """Closure reading ``obj.attr`` -- the standard probe source for
    components that keep hot-path counters as plain integers."""
    return lambda: getattr(obj, attr)


class _Probe:
    """Callback-backed metric, sampled only at snapshot time."""

    __slots__ = ("name", "description", "kind", "fn")

    def __init__(self, name, fn, kind, description=""):
        if kind not in ("counter", "gauge"):
            raise ConfigurationError(
                f"probe {name}: kind must be counter or gauge, got {kind}"
            )
        self.name = name
        self.description = description
        self.kind = kind
        self.fn = fn

    @property
    def value(self):
        return self.fn()


def flatten_histogram(histogram, values, kinds):
    """Flatten one histogram into snapshot keys (shared by
    :meth:`MetricsRegistry.snapshot` and the cross-process merge, so
    both produce byte-identical key sets).

    An empty histogram keeps ``count``/``sum`` at 0 (counters must
    stay numeric so deltas subtract) but reports the statistical
    gauges as ``None``: a min or percentile of zero observations is
    not 0, and rendering it as one made empty-window snapshots carry
    phantom values (exporters render None as ``-``)."""
    name = histogram.name
    empty = histogram.count == 0
    values[f"{name}.count"] = histogram.count
    values[f"{name}.sum"] = histogram.sum
    kinds[f"{name}.count"] = "counter"
    kinds[f"{name}.sum"] = "counter"
    values[f"{name}.min"] = None if empty else histogram.min
    values[f"{name}.max"] = None if empty else histogram.max
    kinds[f"{name}.min"] = "gauge"
    kinds[f"{name}.max"] = "gauge"
    for p in HISTOGRAM_PERCENTILES:
        values[f"{name}.p{p}"] = None if empty else histogram.percentile(p)
        kinds[f"{name}.p{p}"] = "gauge"


#: flat-key suffixes of the per-histogram statistical gauges.
HISTOGRAM_GAUGE_SUFFIXES = (".min", ".max") + tuple(
    f".p{p}" for p in HISTOGRAM_PERCENTILES
)


class Snapshot:
    """Cycle-stamped flat view of every registered metric.

    ``values`` maps fully-qualified metric names to numbers; histograms
    flatten to ``<name>.count`` / ``.sum`` / ``.min`` / ``.max`` /
    ``.p50`` / ``.p90`` / ``.p99``.  ``kinds`` records, per flat key,
    whether the value accumulates (``counter``: deltas subtract) or is
    instantaneous (``gauge``: deltas keep the later value).
    """

    __slots__ = ("cycle", "since_cycle", "values", "kinds")

    def __init__(self, cycle, values, kinds, since_cycle=None):
        self.cycle = cycle
        self.since_cycle = since_cycle
        self.values = values
        self.kinds = kinds

    def __getitem__(self, name):
        return self.values[name]

    def get(self, name, default=0):
        return self.values.get(name, default)

    def __contains__(self, name):
        return name in self.values

    def as_dict(self):
        return dict(self.values)

    def filtered(self, prefix):
        """The subset of values whose name starts with ``prefix``."""
        return {name: value for name, value in self.values.items()
                if name.startswith(prefix)}

    def delta(self, earlier):
        """What happened between ``earlier`` and this snapshot.

        Counter-kind keys subtract; gauge-kind keys (and histogram
        min/max/percentiles) keep this snapshot's value, since a
        difference of instantaneous readings has no meaning.  Keys
        registered only after ``earlier`` count from zero.
        """
        values = {}
        kinds = self.kinds
        for name, value in self.values.items():
            if kinds.get(name) == "counter":
                values[name] = value - earlier.values.get(name, 0)
            else:
                values[name] = value
        # A histogram's min/max/percentile gauges describe its
        # observations; a window in which it recorded nothing (delta
        # count == 0) has no observations, so carrying the whole-run
        # statistics forward would report stale values for the window.
        for name in values:
            if not name.endswith(HISTOGRAM_GAUGE_SUFFIXES):
                continue
            count_key = f"{name.rsplit('.', 1)[0]}.count"
            if (kinds.get(name) == "gauge"
                    and kinds.get(count_key) == "counter"
                    and values.get(count_key) == 0):
                values[name] = None
        return Snapshot(self.cycle, values, dict(self.kinds),
                        since_cycle=earlier.cycle)

    def __sub__(self, earlier):
        return self.delta(earlier)

    @property
    def cycles_elapsed(self):
        """Cycles covered by a delta snapshot (0 for absolute ones)."""
        if self.since_cycle is None:
            return 0
        return self.cycle - self.since_cycle

    def __repr__(self):
        span = (f"{self.since_cycle}->{self.cycle}"
                if self.since_cycle is not None else f"@{self.cycle}")
        return f"Snapshot({span}, {len(self.values)} metrics)"


class MetricsRegistry:
    """All named metrics of one machine, snapshot together.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the same instrument (so two components can
    share one counter), but asking with a different kind is a
    configuration error.  Probes replace a same-named probe (a monitor
    re-attaching re-registers its views) but cannot shadow an owned
    instrument.
    """

    def __init__(self, clock=None):
        self._clock = clock
        self._metrics = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name, description=""):
        return self._instrument(Counter, name, description)

    def gauge(self, name, description=""):
        return self._instrument(Gauge, name, description)

    def histogram(self, name, description=""):
        return self._instrument(Histogram, name, description)

    def _instrument(self, cls, name, description):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, description)
        self._metrics[name] = metric
        return metric

    def probe(self, name, fn, kind="counter", description=""):
        """Register a callback-backed metric (sampled at snapshot).

        Replacing a *counter* probe folds the predecessor's final value
        into the new one as a base, so the metric stays monotonic when
        its backing object is recreated (a new program's allocator, a
        re-attached monitor).  Without the base, a snapshot taken
        before the swap would make the next delta negative or zero.
        """
        existing = self._metrics.get(name)
        if existing is not None and not isinstance(existing, _Probe):
            raise ConfigurationError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if (existing is not None and kind == "counter"
                and existing.kind == "counter"):
            base = existing.value
            if base:
                inner = fn
                fn = lambda: base + inner()  # noqa: E731
        probe = _Probe(name, fn, kind, description)
        self._metrics[name] = probe
        return probe

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def names(self):
        return sorted(self._metrics)

    def describe(self):
        """``{name: (kind, description)}`` for every registered metric."""
        return {name: (m.kind, m.description)
                for name, m in sorted(self._metrics.items())}

    def value(self, name):
        """Current value of one metric (histograms report count)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def instruments(self):
        """``{name: instrument}`` view (dump/merge machinery)."""
        return dict(self._metrics)

    @property
    def current_cycle(self):
        """The bound clock's cycle count (0 when clockless)."""
        return self._clock.cycles if self._clock is not None else 0

    def __contains__(self, name):
        return name in self._metrics

    def snapshot(self):
        """Flatten every metric into a cycle-stamped :class:`Snapshot`."""
        values = {}
        kinds = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                flatten_histogram(metric, values, kinds)
            else:
                values[name] = metric.value
                kinds[name] = metric.kind
        return Snapshot(self.current_cycle, values, kinds)
