"""The monitor stack: one config, one factory, every front door.

Before this module, ``repro monitor``, ``repro fleet``, ``repro
validate``, and ``repro run`` each hand-copied a flag set and
hand-wired its own monitor / sampling-profiler / alert-engine /
stream / forensic-recorder combination.  Now there is exactly one
description of a production monitoring stack:

- :class:`MonitorStackConfig` -- a JSON-able dataclass carrying the
  monitor choice, the allocation :class:`~repro.core.sampling.
  SamplingPolicy`, and the sampler/alert/stream/dump settings;
- :func:`add_monitoring_arguments` -- the single argparse parent all
  four commands mount, so they accept *identical* monitoring flags;
- :meth:`MonitorStackConfig.from_args` -- flags to config, one way;
- :func:`build_monitor_stack` -- config to a live :class:`MonitorStack`
  (machine + monitor + profiler + alert engine + stream + recorder)
  with a start/stop/close lifecycle.

The config crosses process boundaries (fleet workers) through
``to_dict``/``from_dict`` and derives per-machine sampling seeds with
:meth:`MonitorStackConfig.for_machine`.
"""

import argparse
import pathlib
from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.core.sampling import SamplingPolicy
from repro.obs.trend import DEFAULT_WINDOW, DETECTORS, MIN_SLOPE_POINTS

#: default profiler interval the ``repro monitor`` command uses.
DEFAULT_SAMPLE_EVERY = 100_000


@dataclass(frozen=True)
class MonitorStackConfig:
    """Everything needed to stand up one production monitoring stack."""

    #: monitor short name (see ``repro.analysis.runner.MONITOR_FACTORIES``).
    monitor: str = "safemem"
    #: chipset profile name (codec, scrub cadence, fault noise) every
    #: machine in the stack boots with; see ``repro.ecc.profile``.
    profile: str = "e7500"
    #: allocation sampling policy; None = classic always-on monitoring.
    sampling: SamplingPolicy = None
    #: sampling-profiler interval in cycles; None = no profiler.
    sample_every: int = None
    #: alert rules spec: "default", "none", or a JSON rule file path.
    rules: str = "default"
    #: stream ``repro.events/v1`` records to this rotating JSONL path.
    stream: str = None
    #: rotation threshold for ``stream`` (None = sink default).
    stream_max_bytes: int = None
    #: write ``repro.dump/v1`` forensic bundles here on panic.
    dump_dir: str = None
    #: also dump when any alert reaches ``firing`` (defaults
    #: ``dump_dir`` to ./dumps).
    dump_on_alert: bool = False
    #: trend-analytics detector driving the default ``trend`` rules
    #: (``theil-sen``/``cusum``/``page-hinkley``); None = analytics off.
    trend: str = None
    #: samples per trend series window (None = engine default).
    trend_window: int = None
    #: fold trend series onto this period (cycles) and subtract a
    #: frozen per-phase median baseline before detection; None = flat
    #: calibration (requires --trend).
    seasonal_period: int = None
    #: keep bounded tiered metric history (``repro.history/v1``).
    history: bool = False
    #: write a ``repro.checkpoint/v1`` document every N cycles
    #: (evaluated at request boundaries); None = off.
    checkpoint_every: int = None
    #: directory checkpoint documents land in (default ./checkpoints).
    checkpoint_dir: str = None

    # ------------------------------------------------------------------
    # validation / derived views
    # ------------------------------------------------------------------
    def validate(self):
        from repro.ecc.profile import get_profile
        get_profile(self.profile)
        if self.sample_every is not None and self.sample_every < 1:
            raise ConfigurationError(
                f"--sample-every must be >= 1 cycle, got "
                f"{self.sample_every}")
        if self.stream_max_bytes is not None \
                and self.stream_max_bytes < 1:
            raise ConfigurationError(
                f"--stream-max-bytes must be >= 1, got "
                f"{self.stream_max_bytes}")
        if self.sampling is not None:
            self.sampling.validate()
        if self.trend is not None:
            if self.trend not in DETECTORS:
                raise ConfigurationError(
                    f"--trend must be one of {', '.join(DETECTORS)}, "
                    f"got {self.trend!r}")
            if self.sample_every is None:
                raise ConfigurationError(
                    "--trend requires --sample-every (the trend engine "
                    "consumes profiler samples)")
        if self.trend_window is not None:
            if self.trend is None:
                raise ConfigurationError(
                    "--trend-window requires --trend")
            if self.trend_window < MIN_SLOPE_POINTS:
                raise ConfigurationError(
                    f"--trend-window must be >= {MIN_SLOPE_POINTS} "
                    f"samples, got {self.trend_window}")
        if self.seasonal_period is not None:
            if self.trend is None:
                raise ConfigurationError(
                    "--seasonal-period requires --trend (the baseline "
                    "feeds the trend detectors)")
            if self.seasonal_period < 1:
                raise ConfigurationError(
                    f"--seasonal-period must be >= 1 cycle, got "
                    f"{self.seasonal_period}")
        if self.history and self.sample_every is None:
            raise ConfigurationError(
                "--history requires --sample-every (the history store "
                "consumes profiler samples)")
        if self.checkpoint_every is not None \
                and self.checkpoint_every < 1:
            raise ConfigurationError(
                f"--checkpoint-every must be >= 1 cycle, got "
                f"{self.checkpoint_every}")
        if self.checkpoint_dir is not None \
                and self.checkpoint_every is None:
            raise ConfigurationError(
                "--checkpoint-dir requires --checkpoint-every")
        return self

    @property
    def wants_profiler(self):
        return self.sample_every is not None

    @property
    def wants_trend(self):
        return self.trend is not None

    @property
    def wants_forensics(self):
        return self.dump_dir is not None or self.dump_on_alert

    @property
    def wants_history(self):
        return self.history

    @property
    def wants_checkpoints(self):
        return self.checkpoint_every is not None

    def resolved_dump_dir(self):
        """``--dump-on-alert`` without ``--dump-dir`` lands in ./dumps."""
        return self.dump_dir or ("dumps" if self.dump_on_alert
                                 else None)

    def resolved_checkpoint_dir(self):
        """``--checkpoint-every`` without a dir lands in ./checkpoints."""
        return self.checkpoint_dir or (
            "checkpoints" if self.checkpoint_every is not None else None)

    def for_machine(self, index):
        """Per-fleet-machine config: distinct sampling seed stream."""
        if self.sampling is None:
            return self
        return replace(self, sampling=self.sampling.for_machine(index))

    # ------------------------------------------------------------------
    # codecs
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "monitor": self.monitor,
            "profile": self.profile,
            "sampling": (self.sampling.to_dict()
                         if self.sampling is not None else None),
            "sample_every": self.sample_every,
            "rules": self.rules,
            "stream": self.stream,
            "stream_max_bytes": self.stream_max_bytes,
            "dump_dir": self.dump_dir,
            "dump_on_alert": self.dump_on_alert,
            "trend": self.trend,
            "trend_window": self.trend_window,
            "seasonal_period": self.seasonal_period,
            "history": self.history,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": self.checkpoint_dir,
        }

    @classmethod
    def from_dict(cls, payload):
        payload = dict(payload)
        sampling = payload.get("sampling")
        if sampling is not None:
            payload["sampling"] = SamplingPolicy.from_dict(sampling)
        return cls(**payload).validate()

    @classmethod
    def from_args(cls, args, monitor=None):
        """Build the stack config from parsed monitoring arguments.

        Works for any command that mounted
        :func:`add_monitoring_arguments`; flags a command does not
        expose fall back to their defaults.  ``monitor`` overrides the
        parsed ``--monitor`` (``validate`` has no monitor choice).
        """
        rate = getattr(args, "sample_rate", None)
        seed = getattr(args, "sample_seed", None)
        budget = getattr(args, "guard_budget", None)
        sampling = None
        if rate is not None or seed is not None or budget is not None:
            sampling = SamplingPolicy(
                rate=1.0 if rate is None else rate,
                seed=seed if seed is not None else 0,
                budget=budget,
            )
        return cls(
            monitor=(monitor if monitor is not None
                     else getattr(args, "monitor", "safemem")),
            profile=getattr(args, "profile", None) or "e7500",
            sampling=sampling,
            sample_every=getattr(args, "sample_every", None),
            rules=getattr(args, "rules", "default"),
            stream=getattr(args, "stream", None),
            stream_max_bytes=getattr(args, "stream_max_bytes", None),
            dump_dir=getattr(args, "dump_dir", None),
            dump_on_alert=getattr(args, "dump_on_alert", False),
            trend=getattr(args, "trend", None),
            trend_window=getattr(args, "trend_window", None),
            seasonal_period=getattr(args, "seasonal_period", None),
            history=getattr(args, "history", False),
            checkpoint_every=getattr(args, "checkpoint_every", None),
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
        ).validate()


def add_monitoring_arguments(parent=None, sample_every_default=None):
    """The shared monitoring flag set, as a reusable argparse parent.

    Every command that runs workloads mounts this parent (``monitor``,
    ``fleet``, ``validate``, ``run``), so the same ``--sample-rate`` /
    ``--sample-every`` / ``--rules`` / ``--stream`` / ``--dump-dir`` /
    ``--dump-on-alert`` spelling works everywhere and feeds one
    :meth:`MonitorStackConfig.from_args`.

    ``sample_every_default`` overrides the profiler interval default
    for commands whose whole point is the profiler (``repro monitor``
    defaults it to :data:`DEFAULT_SAMPLE_EVERY`).  It must be baked in
    here rather than via ``set_defaults`` on the mounting subparser:
    argparse parents share Action objects, so a post-hoc
    ``set_defaults`` would leak the default into every command.
    """
    parent = parent or argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("monitoring stack")
    group.add_argument(
        "--profile", default=None, metavar="NAME",
        help="chipset profile every machine boots with: ECC codec, "
             "scrub cadence, fault noise (default e7500, the paper's "
             "SEC-DED part; see docs/HARDWARE.md)",
    )
    group.add_argument(
        "--sample-rate", type=float, default=None, metavar="RATE",
        help="sample this fraction of allocations for monitoring "
             "(GWP-ASan-style production mode; default: monitor "
             "every allocation)",
    )
    group.add_argument(
        "--sample-seed", type=int, default=None, metavar="SEED",
        help="base seed of the allocation-sampling schedule "
             "(default 0; fleet machines derive per-machine seeds)",
    )
    group.add_argument(
        "--guard-budget", type=int, default=None, metavar="N",
        help="max concurrently guarded sampled allocations; when the "
             "pool saturates the sampling interval backs off "
             "adaptively (default: unbounded)",
    )
    group.add_argument(
        "--sample-every", type=int, default=sample_every_default,
        metavar="CYCLES",
        help="run the sampling profiler + alert engine at this "
             "cycle interval (default: "
             + (str(sample_every_default)
                if sample_every_default is not None else "off") + ")",
    )
    group.add_argument(
        "--trend", default=None, choices=DETECTORS, metavar="DETECTOR",
        help="run streaming leak-trend analytics over profiler "
             "samples and install its alert rules; pick the detector "
             "driving them: " + ", ".join(DETECTORS)
             + " (requires --sample-every)",
    )
    group.add_argument(
        "--trend-window", type=int, default=None, metavar="SAMPLES",
        help="samples per trend series window (default "
             + str(DEFAULT_WINDOW) + "; requires --trend)",
    )
    group.add_argument(
        "--seasonal-period", type=int, default=None, metavar="CYCLES",
        help="fold trend series onto this period and subtract a "
             "frozen per-phase median baseline before detection "
             "(diurnal traffic; requires --trend)",
    )
    group.add_argument(
        "--history", action="store_true",
        help="keep bounded tiered metric history (repro.history/v1; "
             "raw ring + widening min/max/mean/count buckets; "
             "requires --sample-every)",
    )
    group.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="write a repro.checkpoint/v1 document every N cycles, "
             "evaluated at request boundaries (resume with "
             "'repro resume')",
    )
    group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory checkpoint documents land in "
             "(default ./checkpoints; requires --checkpoint-every)",
    )
    group.add_argument(
        "--rules", default="default", metavar="default|none|FILE",
        help="alert rules for --sample-every: the built-in "
             "production set, none, or a JSON rule file",
    )
    group.add_argument(
        "--stream", metavar="PATH", default=None,
        help="stream repro.events/v1 records to a rotating JSONL "
             "file (fleet/validate machines write per-machine "
             "suffixed files)",
    )
    group.add_argument(
        "--stream-max-bytes", type=int, default=None,
        help="rotation threshold for --stream (default 1 MiB)",
    )
    group.add_argument(
        "--dump-dir", default=None, metavar="DIR",
        help="write repro.dump/v1 forensic bundles here on kernel "
             "panic (and, with --dump-on-alert, on firing alerts)",
    )
    group.add_argument(
        "--dump-on-alert", action="store_true",
        help="also dump a bundle when any alert reaches firing "
             "(defaults --dump-dir to ./dumps)",
    )
    return parent


def _labelled_path(path, label):
    """Insert a per-machine label before the stream file suffix."""
    if label is None:
        return path
    pure = pathlib.PurePath(path)
    if pure.suffix:
        return str(pure.with_name(f"{pure.stem}.{label}{pure.suffix}"))
    return str(pure.with_name(f"{pure.name}.{label}"))


class MonitorStack:
    """One live monitoring stack around one machine and monitor.

    Built by :func:`build_monitor_stack`; the owner brackets the
    workload with :meth:`start` / :meth:`stop` and finishes with
    :meth:`close` (idempotent, exception-safe) so streams always flush
    and recorders always detach.
    """

    def __init__(self, config, machine, monitor, sampler=None,
                 engine=None, sink=None, stream=None, recorder=None,
                 alert_rules=(), trend=None, history=None,
                 scheduler=None):
        self.config = config
        self.machine = machine
        self.monitor = monitor
        self.sampler = sampler
        self.engine = engine
        self.sink = sink
        self.stream = stream
        self.recorder = recorder
        self.alert_rules = list(alert_rules)
        self.trend = trend
        self.history = history
        self.scheduler = scheduler
        self._closed = False

    def start(self):
        if self.sampler is not None:
            self.sampler.start()
        return self

    def stop(self):
        if self.sampler is not None:
            self.sampler.stop()

    def close(self):
        if self._closed:
            return
        self._closed = True
        if self.recorder is not None:
            self.recorder.detach()
        if self.stream is not None:
            self.stream.close()

    # -- summaries -----------------------------------------------------
    def alert_summary(self):
        return self.engine.summary() if self.engine is not None else {}

    @property
    def alerts_fired(self):
        return sum(fired for fired, _, _ in
                   self.alert_summary().values())

    @property
    def alerts_resolved(self):
        return sum(resolved for _, resolved, _ in
                   self.alert_summary().values())

    @property
    def bundle_paths(self):
        return (list(self.recorder.bundle_paths)
                if self.recorder is not None else [])

    @property
    def checkpoint_paths(self):
        return (list(self.scheduler.checkpoint_paths)
                if self.scheduler is not None else [])

    @property
    def request_hook(self):
        """Workload request-boundary hook, or None when unneeded.

        Pass as ``run_workload(..., request_hook=stack.request_hook)``
        so the checkpoint scheduler sees every boundary; purely
        observational, so passing it never changes the run.
        """
        return (self.scheduler.on_request
                if self.scheduler is not None else None)

    def monitoring_info(self):
        """The ``monitoring`` sub-dict a forensic bundle records."""
        info = {}
        if self.config.wants_profiler:
            info["sample_every"] = self.config.sample_every
            info["rules"] = [rule.to_dict()
                             for rule in self.alert_rules]
        if self.config.sampling is not None:
            info["sampling"] = self.config.sampling.to_dict()
        if self.trend is not None:
            info["trend"] = {
                "detector": self.config.trend,
                "window": self.trend.window,
                "seasonal_period": self.trend.seasonal_period,
                "seasonal_phases": self.trend.seasonal_phases,
                "seasonal_warmup": self.trend.seasonal_warmup,
            }
        if self.history is not None:
            info["history"] = True
        return info


def build_monitor_stack(config, machine=None, monitor=None,
                        run_info=None, label=None):
    """Stand up a :class:`MonitorStack` from one config.

    ``machine``/``monitor`` reuse pre-built instances (the monitor must
    already match ``config.monitor``/``config.sampling``); when None
    they are created here, which is how every command now boots its
    stack.  ``run_info`` (workload/monitor/buggy/requests/seed) arms a
    forensic recorder when the config asks for dumps; ``label``
    suffixes per-machine stream files and dump bundles in fleet runs.
    """
    # Lazy imports: obs.stack is imported by the CLI front end, while
    # the factories below pull in the whole analysis/machine layer.
    from repro.analysis.runner import CACHE_SIZE, DRAM_SIZE, make_monitor
    from repro.machine.machine import Machine

    config.validate()
    if machine is None:
        machine = Machine(dram_size=DRAM_SIZE, cache_size=CACHE_SIZE,
                          cache_ways=16, profile=config.profile)
    if monitor is None:
        monitor = make_monitor(config.monitor, sampling=config.sampling)

    sampler = engine = trend = history = None
    rules = []
    if config.wants_profiler:
        from repro.obs.alerts import (
            AlertEngine,
            default_trend_rules,
            resolve_rules,
        )
        from repro.obs.sampler import SamplingProfiler, leak_group_source
        rules = resolve_rules(config.rules)
        sampler = SamplingProfiler(
            machine, interval_cycles=config.sample_every,
            group_source=leak_group_source(monitor))
        if config.wants_trend:
            from repro.obs.trend import TrendEngine
            trend = TrendEngine(
                machine, window=config.trend_window or DEFAULT_WINDOW,
                seasonal_period=config.seasonal_period)
            rules = rules + default_trend_rules(config.trend)
            # The trend listener must observe before the alert engine
            # evaluates, so trend rules judge this sample's verdicts.
            sampler.add_listener(trend.observe)
        engine = AlertEngine(rules, events=machine.events,
                             metrics=machine.metrics,
                             trend_source=trend)
        sampler.add_listener(engine.evaluate)
        if config.wants_history:
            from repro.obs.history import HistoryStore
            history = HistoryStore(metrics=machine.metrics)
            sampler.add_listener(history.observe)

    sink = stream = None
    if config.stream is not None:
        from repro.obs.sink import (
            DEFAULT_MAX_BYTES,
            JsonlSink,
            TelemetryStream,
        )
        sink = JsonlSink(_labelled_path(config.stream, label),
                         max_bytes=config.stream_max_bytes
                         or DEFAULT_MAX_BYTES)
        stream = TelemetryStream(sink, machine=machine,
                                 sampler=sampler, engine=engine)

    stack = MonitorStack(config, machine, monitor, sampler=sampler,
                         engine=engine, sink=sink, stream=stream,
                         alert_rules=rules, trend=trend,
                         history=history)
    info = None
    if run_info is not None:
        info = dict(run_info)
        monitoring = stack.monitoring_info()
        if monitoring:
            info["monitoring"] = monitoring
    if config.wants_forensics and info is not None:
        from repro.obs.forensics import ForensicRecorder
        stack.recorder = ForensicRecorder(
            machine, monitor=monitor, run_info=info,
            dump_dir=config.resolved_dump_dir(),
            label=label or info.get("workload", "run"),
            on_alert=config.dump_on_alert,
            trend=trend,
        )
    if config.wants_checkpoints and info is not None:
        from repro.obs.checkpoint import CheckpointScheduler
        stack.scheduler = CheckpointScheduler(
            machine, config.checkpoint_every, monitor=monitor,
            run_info=info, sampler=sampler, engine=engine, trend=trend,
            history=history,
            checkpoint_dir=config.resolved_checkpoint_dir(),
            label=label or info.get("workload", "run"),
        )
    return stack
