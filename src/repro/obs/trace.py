"""Trace spans on the simulated clock, plus the PANIC flight recorder.

A :class:`Tracer` records nested spans -- workload phase, syscall, ECC
fault delivery, user handler -- stamped in simulated CPU cycles, so a
span's duration is exactly the monitoring cost the paper's tables
charge for it.  Finished spans land in a bounded ring buffer (the
"flight recorder"); when the machine panics, the tracer freezes a copy
of the ring so post-mortems can see the final approach to the crash
even though the exception already unwound the stack.

Span durations also feed ``span.<name>.cycles`` histograms in the
machine's :class:`~repro.obs.metrics.MetricsRegistry`, which is how
"how expensive is a WatchMemory call" becomes a percentile instead of
an anecdote.
"""

import contextlib
from collections import deque

from repro.common.events import EventKind

#: Finished spans retained by the flight recorder.
DEFAULT_CAPACITY = 256


class Span:
    """One timed operation; nested spans record their full path."""

    __slots__ = ("name", "path", "depth", "start_cycle", "end_cycle",
                 "attrs")

    def __init__(self, name, path, depth, start_cycle, attrs):
        self.name = name
        self.path = path
        self.depth = depth
        self.start_cycle = start_cycle
        self.end_cycle = None
        self.attrs = attrs

    @property
    def duration_cycles(self):
        if self.end_cycle is None:
            return None
        return self.end_cycle - self.start_cycle

    def to_dict(self):
        return {
            "name": self.name,
            "path": "/".join(self.path),
            "depth": self.depth,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "duration_cycles": self.duration_cycles,
            "attrs": dict(self.attrs),
        }

    def __repr__(self):
        duration = self.duration_cycles
        timing = (f"{duration} cycles" if duration is not None else "open")
        return f"Span({'/'.join(self.path)}, {timing})"


class Tracer:
    """Span recorder bound to one machine's clock and event log."""

    def __init__(self, clock, registry=None, events=None,
                 capacity=DEFAULT_CAPACITY):
        self.clock = clock
        self.registry = registry
        self._stack = []
        self._recent = deque(maxlen=capacity)
        self.spans_started = 0
        self.spans_dropped = 0
        #: frozen flight-recorder dump captured at the last PANIC.
        self.panic_dump = None
        if registry is not None:
            registry.probe("trace.spans", lambda: self.spans_started,
                           kind="counter",
                           description="spans started on this machine")
        if events is not None:
            events.subscribe(self._on_panic_event, kind=EventKind.PANIC)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(self, name, **attrs):
        """Record one nested span around the ``with`` body."""
        span = self.start(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    def start(self, name, **attrs):
        parent_path = self._stack[-1].path if self._stack else ()
        span = Span(
            name=name,
            path=parent_path + (name,),
            depth=len(self._stack),
            start_cycle=self.clock.cycles,
            attrs=attrs,
        )
        self._stack.append(span)
        self.spans_started += 1
        return span

    def finish(self, span):
        span.end_cycle = self.clock.cycles
        # Exceptions may unwind several spans at once; close every span
        # nested inside the one being finished.
        while self._stack:
            top = self._stack.pop()
            if top.end_cycle is None:
                top.end_cycle = self.clock.cycles
            if len(self._recent) == self._recent.maxlen:
                self.spans_dropped += 1
            self._recent.append(top)
            if self.registry is not None:
                self.registry.histogram(
                    f"span.{top.name}.cycles",
                    description=f"duration of {top.name} spans",
                ).observe(top.duration_cycles)
            if top is span:
                break

    @property
    def current(self):
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def active_spans(self):
        """Open spans, outermost first (the sampler's stack view)."""
        return list(self._stack)

    # ------------------------------------------------------------------
    # flight recorder
    # ------------------------------------------------------------------
    def flight_record(self):
        """Recent finished spans, oldest first."""
        return list(self._recent)

    def _on_panic_event(self, event):
        self.mark_panic(event.detail.get("reason", "panic"))

    def mark_panic(self, reason):
        """Freeze the ring buffer (called on the PANIC event)."""
        self.panic_dump = {
            "reason": reason,
            "cycle": self.clock.cycles,
            "spans": [span.to_dict() for span in self._recent],
            "open_spans": [span.to_dict() for span in self._stack],
        }
        return self.panic_dump
