"""Post-mortem forensics: crash dumps, deterministic replay, run diffing.

SafeMem's value proposition is diagnosing leaks and corruption *after
the fact*; until now everything the monitoring stack knew died with the
process.  This module makes that state durable and re-drivable:

- :func:`capture_bundle` freezes one machine into a **ForensicBundle**
  -- a versioned ``repro.dump/v1`` JSON document bundling machine
  config, the recorded run (workload/monitor/seed), the current cycle,
  a full metrics snapshot, the tracer flight recorder, the EventLog
  tail, watch-registry contents, the allocator heap map with
  ``(size, call-stack signature)`` leak-group lifetime tables, and the
  interrupt-controller state;
- :class:`ForensicRecorder` captures bundles automatically: always on
  kernel PANIC, optionally on any alert reaching ``firing``
  (``--dump-on-alert``), writing each to a dump directory;
- :func:`replay_bundle` re-runs the recorded workload from its seed on
  a freshly booted identical machine -- the simulation has no
  wall-clock and no unseeded randomness, so replay is **bit-exact** --
  to an optional breakpoint (``--until-cycle N`` /
  ``--break-on <event-kind|address>``) and returns the live machine for
  state inspection;
- :func:`verify_replay` checks a replay's event stream against the
  bundle's recorded tail (the differential pin);
- :func:`diff_documents` compares two bundles or ``repro.metrics/v1``
  snapshots: counter deltas, gauge changes, histogram shift, alerts
  that appear/disappear, and leak-group growth.

Capture is observation-only: it reads registries, rings, and tables but
never ticks the simulated clock or emits events, so a run that was
dumped mid-flight replays identically whether or not a recorder was
attached.  See ``docs/SCHEMAS.md`` for the full field tables.
"""

import json
import pathlib
import re
from dataclasses import dataclass, field

from repro.common.errors import (
    ConfigurationError,
    MachinePanic,
    ReproError,
)
from repro.common.events import EventKind
from repro.obs.export import snapshot_document, snapshot_from_document
from repro.obs.sampler import group_stats

#: schema tag of a forensic bundle document.
DUMP_SCHEMA = "repro.dump/v1"

#: events kept in a bundle's tail (newest; the full log stays in RAM).
EVENT_TAIL_LIMIT = 256

#: live allocations listed in a bundle's heap map (largest first).
HEAP_MAP_LIMIT = 512

#: leak groups listed in a bundle (largest live_bytes first).
GROUP_LIMIT = 64


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def event_to_dict(event):
    """One :class:`~repro.common.events.Event` as a JSON-able record.

    The same encoding is used at capture time and at replay-verify
    time, so stream comparison is bit-exact by construction.
    """
    return {
        "kind": event.kind.value,
        "cycle": event.cycle,
        "address": event.address,
        "size": event.size,
        "detail": {key: _jsonable(value)
                   for key, value in sorted(event.detail.items())},
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _heap_map(allocator, limit):
    blocks = sorted(allocator.live_allocations(),
                    key=lambda a: (-a.size, a.address))
    return {
        "live_bytes": sum(block.size for block in blocks),
        "live_blocks": len(blocks),
        "total_allocs": allocator.total_allocs,
        "total_frees": allocator.total_frees,
        "peak_live_bytes": allocator.peak_live_bytes,
        "truncated": max(0, len(blocks) - limit),
        "allocations": [
            {"address": block.address, "size": block.size,
             "requested_size": block.requested_size}
            for block in blocks[:limit]
        ],
    }


def capture_bundle(machine, monitor=None, run_info=None, reason="manual",
                   trigger=None, event_tail=EVENT_TAIL_LIMIT,
                   heap_map_limit=HEAP_MAP_LIMIT, group_limit=GROUP_LIMIT,
                   trend=None):
    """Freeze one machine (and its attached monitor) into a bundle dict.

    ``run_info`` records how to re-drive the run (workload / monitor /
    buggy / requests / seed / heap_size, plus an optional ``monitoring``
    sub-dict with ``sample_every`` and serialized alert rules); without
    it the bundle is inspectable but not replayable.  ``trend`` is the
    run's :class:`~repro.obs.trend.TrendEngine`, whose per-series
    verdicts land under the bundle's ``trends`` key.
    """
    cycle = machine.clock.cycles
    snapshot = machine.metrics.snapshot()
    tracer = machine.tracer
    kernel = machine.kernel
    irq = kernel.interrupts
    bundle = {
        "schema": DUMP_SCHEMA,
        "reason": reason,
        "trigger": {key: _jsonable(value)
                    for key, value in sorted((trigger or {}).items())},
        "cycle": cycle,
        "idle_cycles": machine.clock.idle_cycles,
        "run": dict(run_info or {}),
        "machine": dict(getattr(machine, "boot_config", {})),
        "metrics": snapshot_document(snapshot),
        "spans": {
            "recent": [span.to_dict()
                       for span in tracer.flight_record()],
            "open": [span.to_dict() for span in tracer.active_spans()],
            "panic": tracer.panic_dump,
        },
        "events": {
            "total": len(machine.events),
            "tail": [event_to_dict(event)
                     for event in machine.events.query(limit=event_tail)],
        },
        "watches": [
            {"vaddr": region.vaddr, "size": region.size,
             "lines": [[vline, pline]
                       for vline, pline in sorted(region.lines.items())]}
            for region in sorted(kernel.watches.all_regions(),
                                 key=lambda r: r.vaddr)
        ],
        "interrupts": {
            "delivered": irq.delivered,
            "panics": irq.panics,
            "handler_registered": irq.user_handler is not None,
            "ecc_traps": kernel.ecc_traps,
            "pinned_pages": kernel.pinned_pages,
        },
        "heap": None,
        "groups": [],
        "trends": trend.summary() if trend is not None else None,
    }
    program = getattr(monitor, "program", None) if monitor is not None \
        else None
    if program is not None and getattr(program, "allocator", None) \
            is not None:
        bundle["heap"] = _heap_map(program.allocator, heap_map_limit)
    leak = getattr(monitor, "leak", None) if monitor is not None else None
    if leak is not None:
        bundle["groups"] = group_stats(leak.groups, limit=group_limit,
                                       now=cycle)
    return bundle


def write_bundle(bundle, path):
    """Write a bundle to ``path`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(bundle, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def load_bundle(path):
    """Load and schema-check one ``repro.dump/v1`` bundle."""
    with open(path) as stream:
        bundle = json.load(stream)
    if not isinstance(bundle, dict) or bundle.get("schema") != DUMP_SCHEMA:
        raise ConfigurationError(
            f"{path}: not a {DUMP_SCHEMA} bundle "
            f"(schema={bundle.get('schema') if isinstance(bundle, dict) else None!r})"
        )
    return bundle


def _safe_label(label):
    return re.sub(r"[^A-Za-z0-9._-]+", "-", str(label)).strip("-") or "run"


class ForensicRecorder:
    """Automatic black-box capture bound to one machine.

    Subscribes to the machine's event log and writes a bundle when a
    kernel PANIC event fires (``on_panic``) and, optionally, when any
    alert transitions to ``firing`` (``on_alert``, one bundle per rule
    -- the first firing is the evidence; repeats of the same rule are
    not re-dumped).  ``max_bundles`` bounds total disk output.
    """

    def __init__(self, machine, monitor=None, run_info=None,
                 dump_dir="dumps", label="run", on_panic=True,
                 on_alert=False, max_bundles=4,
                 event_tail=EVENT_TAIL_LIMIT, trend=None):
        self.machine = machine
        self.monitor = monitor
        self.trend = trend
        self.run_info = dict(run_info or {})
        self.dump_dir = pathlib.Path(dump_dir)
        self.label = _safe_label(label)
        self.max_bundles = max_bundles
        self.event_tail = event_tail
        self.bundle_paths = []
        self.bundles_skipped = 0
        self._seen_alert_rules = set()
        self._tokens = []
        if on_panic:
            self._tokens.append(machine.events.subscribe(
                self._on_panic, kind=EventKind.PANIC))
        if on_alert:
            self._tokens.append(machine.events.subscribe(
                self._on_alert, kind=EventKind.ALERT))

    def _on_panic(self, event):
        self.capture("panic", {
            "reason": event.detail.get("reason"),
            "address": event.address,
        })

    def _on_alert(self, event):
        if event.detail.get("state") != "firing":
            return
        rule = event.detail.get("rule")
        if rule in self._seen_alert_rules:
            return
        self._seen_alert_rules.add(rule)
        self.capture("alert", {
            "rule": rule,
            "severity": event.detail.get("severity"),
            "value": event.detail.get("value"),
        })

    def capture(self, reason="manual", trigger=None):
        """Capture and write one bundle now; returns its path (or None
        when ``max_bundles`` is exhausted -- counted, never silent)."""
        if len(self.bundle_paths) >= self.max_bundles:
            self.bundles_skipped += 1
            return None
        bundle = capture_bundle(
            self.machine, monitor=self.monitor, run_info=self.run_info,
            reason=reason, trigger=trigger, event_tail=self.event_tail,
            trend=self.trend,
        )
        path = self.dump_dir / (
            f"{self.label}-{reason}-c{bundle['cycle']}"
            f"-{len(self.bundle_paths)}.dump.json"
        )
        write_bundle(bundle, path)
        self.bundle_paths.append(path)
        return path

    def detach(self):
        """Unsubscribe from the machine (retained paths stay readable)."""
        for token in self._tokens:
            self.machine.events.unsubscribe(token)
        self._tokens = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.detach()
        return False


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
class ReplayBreak(ReproError):
    """Control-flow exception: a replay breakpoint was reached."""


def machine_from_config(config):
    """Boot a fresh machine from a bundle's recorded ``machine`` dict."""
    from repro.ecc.controller import EccMode
    from repro.machine.machine import Machine
    kwargs = dict(config or {})
    mode = kwargs.get("ecc_mode")
    if isinstance(mode, str):
        kwargs["ecc_mode"] = EccMode(mode)
    return Machine(**kwargs)


def parse_breakpoint(text):
    """``<event-kind|address>`` -> ``(kind, address)`` (one is None)."""
    try:
        return None, int(str(text), 0)
    except ValueError:
        pass
    try:
        return EventKind(str(text)), None
    except ValueError:
        kinds = ", ".join(kind.value for kind in EventKind)
        raise ConfigurationError(
            f"breakpoint {text!r} is neither an address nor an event "
            f"kind (kinds: {kinds})"
        ) from None


@dataclass
class ReplayResult:
    """A finished (or broken) replay, live machine included."""

    machine: object
    monitor: object
    program: object
    #: GroundTruth when the workload ran to completion, else None.
    truth: object
    #: events recorded up to the break (the full log on a clean run).
    events: list = field(default_factory=list)
    broke: bool = False
    break_cycle: int = 0
    #: panic message when the replay re-panicked (full replays only).
    panic: object = None


def replay_bundle(bundle, until_cycle=None, break_on=None):
    """Re-run a bundle's recorded workload from its seed, bit-exactly.

    The bundle must carry ``run`` info (workload, monitor, seed...).
    ``until_cycle`` breaks once the simulated clock reaches that cycle;
    ``break_on`` breaks at the first matching event (an
    :class:`~repro.common.events.EventKind` value or an address).  A
    replay of a panicked run re-panics identically; the panic is
    caught and reported on the result.
    """
    from repro.analysis.runner import HEAP_SIZE, make_monitor
    from repro.machine.program import Program
    from repro.workloads.registry import get_workload

    run = dict(bundle.get("run") or {})
    if "workload" not in run or "monitor" not in run:
        raise ConfigurationError(
            "bundle records no run (workload/monitor); it was captured "
            "without run_info and cannot be replayed"
        )
    machine = machine_from_config(bundle.get("machine"))
    monitoring = dict(run.get("monitoring") or {})
    sampling = monitoring.get("sampling")
    if sampling is not None:
        from repro.core.sampling import SamplingPolicy
        sampling = SamplingPolicy.from_dict(sampling)
    monitor = make_monitor(run["monitor"], sampling=sampling)

    # Recreate the monitoring stack the original run carried: the alert
    # engine emits ALERT events and the allocation sampler steers the
    # heap layout, so leaving either out would change the replayed
    # event stream.
    sampler = None
    if monitoring.get("sample_every"):
        from repro.obs.alerts import AlertEngine, AlertRule
        from repro.obs.sampler import SamplingProfiler, leak_group_source
        sampler = SamplingProfiler(
            machine, interval_cycles=monitoring["sample_every"],
            group_source=leak_group_source(monitor),
        )
        trend = None
        trend_info = monitoring.get("trend")
        if trend_info:
            # The trend engine emits TREND events into the log, so a
            # bundle captured with one only replays bit-exactly when
            # the replay runs the same engine in the same listener slot
            # -- including any seasonal baseline the original carried,
            # which gates and shifts what the detectors see.
            from repro.obs.trend import (
                DEFAULT_SEASONAL_PHASES,
                DEFAULT_SEASONAL_WARMUP,
                DEFAULT_WINDOW,
                TrendEngine,
            )
            trend = TrendEngine(
                machine,
                window=trend_info.get("window") or DEFAULT_WINDOW,
                seasonal_period=trend_info.get("seasonal_period"),
                seasonal_phases=(trend_info.get("seasonal_phases")
                                 or DEFAULT_SEASONAL_PHASES),
                seasonal_warmup=(trend_info.get("seasonal_warmup")
                                 or DEFAULT_SEASONAL_WARMUP),
            )
            sampler.add_listener(trend.observe)
        rules = [AlertRule.from_dict(spec)
                 for spec in monitoring.get("rules", [])]
        if rules:
            engine = AlertEngine(rules, events=machine.events,
                                 metrics=machine.metrics,
                                 trend_source=trend)
            sampler.add_listener(engine.evaluate)
        sampler.start()

    state = {"break_index": None, "break_cycle": None}

    def _break(cycle):
        state["break_index"] = len(machine.events)
        state["break_cycle"] = cycle
        raise ReplayBreak(f"replay breakpoint at cycle {cycle}")

    timer = None
    tokens = []
    if until_cycle is not None:
        if until_cycle <= machine.clock.cycles:
            raise ConfigurationError(
                f"--until-cycle {until_cycle} is not in the future "
                f"(replay starts at cycle {machine.clock.cycles})"
            )

        def _on_deadline(clock):
            if clock.cycles >= until_cycle:
                _break(clock.cycles)

        timer = machine.clock.every(until_cycle - machine.clock.cycles,
                                    _on_deadline)
    if break_on is not None:
        kind, address = parse_breakpoint(break_on)

        def _on_event(event):
            if address is not None and event.address != address:
                return
            _break(event.cycle)

        tokens.append(machine.events.subscribe(_on_event, kind=kind))

    truth = panic = None
    try:
        program = Program(machine, monitor=monitor,
                          heap_size=run.get("heap_size", HEAP_SIZE))
        workload = get_workload(run["workload"],
                                requests=run.get("requests"),
                                seed=run.get("seed", 0))
        with machine.tracer.span(f"workload.{run['workload']}",
                                 monitor=run["monitor"],
                                 buggy=run.get("buggy", False)):
            truth = workload.run(program, buggy=run.get("buggy", False))
    except ReplayBreak:
        pass
    except MachinePanic as error:
        panic = str(error)
    except ReproError:
        # A break raised mid-request can surface as a teardown error
        # during unwind; the breakpoint state is already recorded.
        if state["break_index"] is None:
            raise
    finally:
        if sampler is not None:
            sampler.stop()
        if timer is not None:
            machine.clock.cancel(timer)
        for token in tokens:
            machine.events.unsubscribe(token)

    broke = state["break_index"] is not None
    events = machine.events.query()
    if broke:
        events = events[:state["break_index"]]
    return ReplayResult(
        machine=machine,
        monitor=monitor,
        program=getattr(monitor, "program", None),
        truth=truth,
        events=events,
        broke=broke,
        break_cycle=(state["break_cycle"] if broke
                     else machine.clock.cycles),
        panic=panic,
    )


def verify_replay(bundle, result):
    """Differential check: replayed events vs the bundle's tail.

    Returns ``(ok, message)``.  The bundle stores the last
    ``EVENT_TAIL_LIMIT`` events up to its capture point; a bit-exact
    replay must reproduce exactly that suffix at the same position in
    its stream.  When the replay broke *before* the capture point, the
    comparison covers every event strictly below the break cycle (the
    log is appended in non-decreasing cycle order, so that prefix is
    complete on both sides).
    """
    recorded = bundle.get("events", {})
    tail = recorded.get("tail", [])
    total = recorded.get("total", len(tail))
    replayed = [event_to_dict(event) for event in result.events]
    if len(replayed) >= total:
        expected = tail
        got = replayed[:total]
        scope = f"the {total}-event capture prefix"
    else:
        cutoff = result.break_cycle
        expected = [record for record in tail if record["cycle"] < cutoff]
        got = [record for record in replayed if record["cycle"] < cutoff]
        scope = f"events below break cycle {cutoff}"
    if not expected:
        return True, f"nothing to compare in {scope}"
    if len(got) < len(expected):
        return False, (
            f"replay produced {len(got)} event(s) in {scope}; the "
            f"bundle recorded {len(expected)}"
        )
    window = got[-len(expected):]
    for index, (want, have) in enumerate(zip(expected, window)):
        if want != have:
            return False, (
                f"replay diverged at tail event {index}: recorded "
                f"{want['kind']}@{want['cycle']} != replayed "
                f"{have['kind']}@{have['cycle']}"
            )
    return True, (
        f"{len(expected)} recorded event(s) matched bit-exactly in "
        f"{scope}"
    )


# ----------------------------------------------------------------------
# inspection
# ----------------------------------------------------------------------
def known_document_schemas():
    """``{schema string: inspect kind}`` for every loadable document."""
    from repro.obs.checkpoint import CHECKPOINT_SCHEMA
    from repro.obs.export import SCHEMA as METRICS_SCHEMA
    from repro.obs.history import HISTORY_SCHEMA
    from repro.obs.sink import EVENTS_SCHEMA
    return {
        DUMP_SCHEMA: "dump",
        METRICS_SCHEMA: "metrics",
        EVENTS_SCHEMA: "stream",
        CHECKPOINT_SCHEMA: "checkpoint",
        HISTORY_SCHEMA: "history",
    }


def load_document(path):
    """Load any versioned repro document by its schema tag.

    Returns ``(kind, payload)`` where kind is ``"dump"``,
    ``"metrics"``, ``"checkpoint"``, ``"history"``, or ``"stream"``
    (a list of ``repro.events/v1`` records for JSONL streams).  An
    unrecognized or future-version schema fails with an error naming
    the offending string and every schema this build understands, so
    documents written by newer builds degrade loudly, not obscurely.
    """
    from repro.obs.sink import EVENTS_SCHEMA, read_jsonl
    known = known_document_schemas()
    path = pathlib.Path(path)
    text = path.read_text()
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict):
        schema = document.get("schema")
        kind = known.get(schema)
        if kind == "stream":
            # A one-record stream parses as a single JSON document.
            return "stream", [document]
        if kind is not None:
            return kind, document
        raise ConfigurationError(
            f"{path}: unrecognized schema {schema!r}; this build "
            f"understands: " + ", ".join(sorted(known))
        )
    records = read_jsonl(path)
    if records and all(record.get("schema") == EVENTS_SCHEMA
                       for record in records):
        return "stream", records
    raise ConfigurationError(
        f"{path}: neither a JSON document nor a {EVENTS_SCHEMA} stream"
    )


def bundle_snapshot(bundle):
    """The bundle's embedded metrics as a live Snapshot object."""
    return snapshot_from_document(bundle["metrics"])


def _fired_alerts(metrics):
    """Rule names with a positive ``alerts.rule.<name>.fired`` counter."""
    fired = []
    for name, value in metrics.items():
        match = re.fullmatch(r"alerts\.rule\.(.+)\.fired", name)
        if match and value > 0:
            fired.append(match.group(1))
    return sorted(fired)


def render_bundle_summary(bundle):
    """The `repro inspect` headline view of one bundle."""
    run = bundle.get("run") or {}
    machine = bundle.get("machine") or {}
    events = bundle.get("events") or {}
    heap = bundle.get("heap")
    lines = [
        f"forensic bundle ({bundle['schema']}) -- reason: "
        f"{bundle.get('reason', '?')}",
    ]
    trigger = bundle.get("trigger") or {}
    if trigger:
        rendered = ", ".join(f"{key}={value}"
                             for key, value in sorted(trigger.items()))
        lines.append(f"  trigger:   {rendered}")
    lines.append(f"  cycle:     {bundle.get('cycle', 0):,} "
                 f"(+{bundle.get('idle_cycles', 0):,} idle)")
    if run:
        monitoring = run.get("monitoring")
        lines.append(
            f"  run:       {run.get('workload', '?')}/"
            f"{run.get('monitor', '?')} "
            f"({'buggy' if run.get('buggy') else 'normal'} input, "
            f"{run.get('requests', '?')} requests, "
            f"seed {run.get('seed', '?')}"
            + (f", sampled every {monitoring['sample_every']:,} cycles"
               if monitoring else "")
            + ")"
        )
    else:
        lines.append("  run:       (not recorded; bundle is not "
                     "replayable)")
    if machine:
        lines.append(
            f"  machine:   {machine.get('dram_size', 0) >> 20} MiB DRAM, "
            f"{machine.get('cache_size', 0) >> 10} KiB cache, "
            f"ecc={machine.get('ecc_mode', '?')}"
        )
    lines.append(f"  events:    {events.get('total', 0):,} total, "
                 f"{len(events.get('tail', []))} in tail")
    watches = bundle.get("watches") or []
    armed = sum(len(region["lines"]) for region in watches)
    lines.append(f"  watches:   {len(watches)} region(s), "
                 f"{armed} armed line(s)")
    irq = bundle.get("interrupts") or {}
    lines.append(
        f"  interrupts: {irq.get('delivered', 0)} delivered, "
        f"{irq.get('panics', 0)} panic(s), "
        f"{irq.get('ecc_traps', 0)} ecc trap(s), handler "
        f"{'registered' if irq.get('handler_registered') else 'absent'}"
    )
    if heap:
        lines.append(
            f"  heap:      {heap['live_bytes']:,} B live in "
            f"{heap['live_blocks']} block(s) "
            f"(peak {heap['peak_live_bytes']:,} B, "
            f"{heap['total_allocs']} allocs / "
            f"{heap['total_frees']} frees)"
        )
    groups = bundle.get("groups") or []
    if groups:
        top = groups[0]
        lines.append(
            f"  top group: size {top['size']} @ callsig "
            f"{top['call_signature']:#x} -- {top['live_count']} live, "
            f"{top['live_bytes']:,} B"
        )
    fired = _fired_alerts(bundle.get("metrics", {}).get("metrics", {}))
    if fired:
        lines.append("  alerts fired: " + ", ".join(fired))
    trends = bundle.get("trends")
    if trends:
        breaching = sum(
            1 for series in trends.get("series", [])
            for verdict in series.get("verdicts", [])
            if verdict.get("breached")
        )
        lines.append(
            f"  trends:    {len(trends.get('series', []))} series "
            f"tracked, {breaching} verdict(s) breaching "
            f"({trends.get('breach_onsets', 0)} onset(s) total)"
        )
    panic = (bundle.get("spans") or {}).get("panic")
    if panic:
        lines.append(f"  panic:     {panic.get('reason')} @ cycle "
                     f"{panic.get('cycle', 0):,}")
    return "\n".join(lines)


def render_bundle_groups(bundle, top=10):
    """Leak-group lifetime table: the Figure 3 view from a bundle."""
    groups = (bundle.get("groups") or [])[:top]
    if not groups:
        return "no allocation groups recorded"
    lines = [
        "allocation groups (largest live_bytes first):",
        "  size  callsig      live      bytes    allocs     frees "
        "max_life   stable",
    ]
    for group in groups:
        lines.append(
            f"  {group['size']:>4}  {group['call_signature']:#09x} "
            f"{group['live_count']:>7} {group['live_bytes']:>10,} "
            f"{group['total_allocated']:>9} {group['total_freed']:>9} "
            f"{group['max_lifetime']:>8,} {group['stable_time']:>8,}"
        )
    return "\n".join(lines)


def render_bundle_heap(bundle, top=10):
    """Largest live heap blocks recorded in a bundle."""
    heap = bundle.get("heap")
    if not heap:
        return "no heap map recorded (monitor had no attached program)"
    lines = [
        f"heap map: {heap['live_bytes']:,} B live in "
        f"{heap['live_blocks']} block(s)"
        + (f" ({heap['truncated']} truncated)" if heap["truncated"]
           else ""),
    ]
    for block in heap["allocations"][:top]:
        lines.append(f"  {block['address']:#010x}  {block['size']:>8,} B"
                     f"  (requested {block['requested_size']:,})")
    return "\n".join(lines)


def render_bundle_events(bundle, kind=None, since_cycle=None, limit=20):
    """Query the bundle's event tail the way `EventLog.query` would."""
    records = bundle.get("events", {}).get("tail", [])
    if kind is not None:
        records = [r for r in records if r["kind"] == kind]
    if since_cycle is not None:
        records = [r for r in records if r["cycle"] >= since_cycle]
    records = records[-limit:]
    if not records:
        return "no matching events in the recorded tail"
    lines = []
    for record in records:
        extras = "".join(f" {key}={value}"
                         for key, value in record["detail"].items())
        addr = (f"{record['address']:#010x}"
                if record["address"] is not None else "-")
        lines.append(
            f"[{record['cycle']:>12}] {record['kind']:<18}"
            f" addr={addr} size={record['size']}{extras}"
        )
    return "\n".join(lines)


def render_bundle_trends(bundle):
    """Trend-analytics view: per-series detector verdicts at capture."""
    trends = bundle.get("trends")
    if not trends:
        return ("no trend analytics recorded "
                "(run was captured without --trend)")
    lines = [
        f"trend analytics: {len(trends.get('series', []))} series, "
        f"window {trends.get('window', '?')} samples, "
        f"{trends.get('evaluations', 0)} evaluation(s), "
        f"{trends.get('series_ended', 0)} series ended, "
        f"{trends.get('breach_onsets', 0)} breach onset(s)",
    ]
    for series in trends.get("series", []):
        lines.append(
            f"  {series['name']} -- {series['points']} point(s) in "
            f"window, last {series['last_value']:,.0f} B @ cycle "
            f"{series['last_cycle']:,}"
        )
        for verdict in series.get("verdicts", []):
            state = "BREACHED" if verdict["breached"] else "ok"
            lines.append(
                f"    {verdict['detector']:<12} {verdict['value']:>14,.1f}"
                f"  {state}"
            )
    return "\n".join(lines)


def render_stream_summary(records):
    """Summary of a ``repro.events/v1`` JSONL stream."""
    by_type = {}
    for record in records:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
    cycles = [record["cycle"] for record in records]
    lines = [
        f"events stream: {len(records)} record(s), cycles "
        f"{min(cycles):,} -> {max(cycles):,}" if records
        else "events stream: empty",
    ]
    for record_type in sorted(by_type):
        lines.append(f"  {record_type:<8} {by_type[record_type]}")
    firing = [record["alert"]["rule"] for record in records
              if record["type"] == "alert"
              and record["alert"].get("state") == "firing"]
    if firing:
        lines.append("  alerts firing: " + ", ".join(sorted(set(firing))))
    markers = [record["run"].get("marker") for record in records
               if record["type"] == "run"]
    if markers:
        lines.append("  run markers: " + " -> ".join(str(m)
                                                     for m in markers))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
#: flattened-histogram suffixes (see repro.obs.metrics.flatten_histogram).
_HISTOGRAM_SUFFIXES = (".count", ".sum", ".min", ".max",
                       ".p50", ".p90", ".p99")


def _metrics_of(document):
    """``(values, kinds)`` of a bundle or a metrics document."""
    schema = document.get("schema")
    if schema == DUMP_SCHEMA:
        document = document.get("metrics", {})
        schema = document.get("schema")
    from repro.obs.export import SCHEMA as METRICS_SCHEMA
    if schema != METRICS_SCHEMA:
        raise ConfigurationError(
            f"cannot diff schema {schema!r}; expected {DUMP_SCHEMA} or "
            f"{METRICS_SCHEMA}"
        )
    return document.get("metrics", {}), document.get("kinds", {})


def _histogram_bases(names):
    bases = set()
    for name in names:
        if name.endswith(".p50") and name[:-len(".p50")] + ".count" \
                in names:
            bases.add(name[:-len(".p50")])
    return bases


def diff_documents(a, b):
    """Structured diff of two bundles / metrics documents (A -> B)."""
    values_a, kinds_a = _metrics_of(a)
    values_b, kinds_b = _metrics_of(b)
    names = set(values_a) | set(values_b)
    bases = _histogram_bases(names)

    def is_histogram_key(name):
        return any(name == base + suffix for base in bases
                   for suffix in _HISTOGRAM_SUFFIXES)

    counters, gauges = [], []
    for name in sorted(names):
        if is_histogram_key(name):
            continue
        kind = kinds_b.get(name) or kinds_a.get(name) or "gauge"
        va = values_a.get(name)
        vb = values_b.get(name)
        if kind == "counter":
            delta = (vb or 0) - (va or 0)
            if delta or (name in values_b) != (name in values_a):
                counters.append({"name": name, "a": va, "b": vb,
                                 "delta": delta})
        elif va != vb:
            gauges.append({"name": name, "a": va, "b": vb})

    histograms = []
    for base in sorted(bases):
        row = {"name": base}
        changed = False
        for suffix in (".count", ".p50", ".p90", ".p99"):
            key = base + suffix
            row[f"a{suffix}"] = values_a.get(key)
            row[f"b{suffix}"] = values_b.get(key)
            changed = changed or values_a.get(key) != values_b.get(key)
        if changed:
            histograms.append(row)

    fired_a = set(_fired_alerts(values_a))
    fired_b = set(_fired_alerts(values_b))
    trends = _diff_trends(a, b)
    groups = []
    if a.get("schema") == DUMP_SCHEMA and b.get("schema") == DUMP_SCHEMA:
        rows_a = {(g["size"], g["call_signature"]): g
                  for g in a.get("groups") or []}
        rows_b = {(g["size"], g["call_signature"]): g
                  for g in b.get("groups") or []}
        for key in sorted(set(rows_a) | set(rows_b)):
            live_a = rows_a.get(key, {}).get("live_bytes", 0)
            live_b = rows_b.get(key, {}).get("live_bytes", 0)
            if live_a != live_b:
                groups.append({"size": key[0], "call_signature": key[1],
                               "a": live_a, "b": live_b,
                               "delta": live_b - live_a})
        groups.sort(key=lambda row: -abs(row["delta"]))

    return {
        "cycle_a": _cycle_of(a),
        "cycle_b": _cycle_of(b),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "alerts": {
            "appeared": sorted(fired_b - fired_a),
            "disappeared": sorted(fired_a - fired_b),
        },
        "groups": groups,
        "trends": trends,
    }


def _trend_verdict_map(document):
    """``(series, detector) -> verdict`` of a bundle's trends section."""
    trends = document.get("trends") if document.get("schema") \
        == DUMP_SCHEMA else None
    verdicts = {}
    for series in (trends or {}).get("series", []):
        for verdict in series.get("verdicts", []):
            verdicts[(series["name"], verdict["detector"])] = verdict
    return verdicts


def _diff_trends(a, b):
    """Changed trend verdicts between two bundles (A -> B)."""
    rows_a = _trend_verdict_map(a)
    rows_b = _trend_verdict_map(b)
    rows = []
    for key in sorted(set(rows_a) | set(rows_b)):
        va = rows_a.get(key)
        vb = rows_b.get(key)
        value_a = va["value"] if va else None
        value_b = vb["value"] if vb else None
        breached_a = va["breached"] if va else None
        breached_b = vb["breached"] if vb else None
        if value_a != value_b or breached_a != breached_b:
            rows.append({
                "series": key[0], "detector": key[1],
                "a": value_a, "b": value_b,
                "breached_a": breached_a, "breached_b": breached_b,
            })
    return rows


def _cycle_of(document):
    if document.get("schema") == DUMP_SCHEMA:
        return document.get("cycle", 0)
    return document.get("generated", {}).get("cycle", 0)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.4f}"
    return f"{value:,}"


def render_diff(diff, limit=20):
    """Human-readable rendering of :func:`diff_documents` output."""
    lines = [f"diff A (cycle {diff['cycle_a']:,}) -> "
             f"B (cycle {diff['cycle_b']:,})"]
    if diff["counters"]:
        lines.append(f"counters ({len(diff['counters'])} changed):")
        for row in diff["counters"][:limit]:
            lines.append(f"  {row['name']:<40} {_fmt(row['a']):>12} -> "
                         f"{_fmt(row['b']):>12}  ({row['delta']:+,})")
    if diff["gauges"]:
        lines.append(f"gauges ({len(diff['gauges'])} changed):")
        for row in diff["gauges"][:limit]:
            lines.append(f"  {row['name']:<40} {_fmt(row['a']):>12} -> "
                         f"{_fmt(row['b']):>12}")
    if diff["histograms"]:
        lines.append(f"histogram shift ({len(diff['histograms'])} "
                     f"changed):")
        for row in diff["histograms"][:limit]:
            lines.append(
                f"  {row['name']:<40} count {_fmt(row['a.count'])} -> "
                f"{_fmt(row['b.count'])}, p50 {_fmt(row['a.p50'])} -> "
                f"{_fmt(row['b.p50'])}, p99 {_fmt(row['a.p99'])} -> "
                f"{_fmt(row['b.p99'])}"
            )
    alerts = diff["alerts"]
    if alerts["appeared"]:
        lines.append("alerts appeared: " + ", ".join(alerts["appeared"]))
    if alerts["disappeared"]:
        lines.append("alerts disappeared: "
                     + ", ".join(alerts["disappeared"]))
    if diff["groups"]:
        lines.append("leak-group live_bytes shifts:")
        for row in diff["groups"][:limit]:
            lines.append(
                f"  size {row['size']:>4} @ {row['call_signature']:#09x}"
                f"  {row['a']:,} -> {row['b']:,}  ({row['delta']:+,})"
            )
    if diff.get("trends"):
        lines.append(f"trend verdicts ({len(diff['trends'])} changed):")
        for row in diff["trends"][:limit]:
            def _state(breached):
                if breached is None:
                    return "absent"
                return "BREACHED" if breached else "ok"
            lines.append(
                f"  {row['detector']:<12} {row['series']:<28} "
                f"{_fmt(row['a']):>12} ({_state(row['breached_a'])}) -> "
                f"{_fmt(row['b']):>12} ({_state(row['breached_b'])})"
            )
    if len(lines) == 1:
        lines.append("no differences")
    return "\n".join(lines)
