"""Unified telemetry: metrics, spans, sampling, alerts, streaming.

The one observability layer of the simulated machine.  Components
register named metrics in the machine's :class:`MetricsRegistry`;
phases are timed with :class:`Tracer` spans on the simulated clock;
everything is read via cycle-stamped snapshots and exported through
the stable ``repro.metrics/v1`` schema.  On top of that sits the
continuous-monitoring layer: a :class:`SamplingProfiler` driven by the
simulated clock, an :class:`AlertEngine` evaluating declarative rules
on every sample, and streaming sinks shipping ``repro.events/v1``
records (see ``docs/OBSERVABILITY.md``).
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    load_rules,
    resolve_rules,
)
from repro.obs.export import (
    SCHEMA,
    render_metrics_table,
    render_span_tree,
    snapshot_document,
    write_metrics_json,
)
from repro.obs.merge import dump_registry, merge_dumps, merge_registries
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    attr_reader,
)
from repro.obs.sampler import Sample, SamplingProfiler, render_top
from repro.obs.sink import (
    EVENTS_SCHEMA,
    JsonlSink,
    MemorySink,
    TelemetryStream,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "EVENTS_SCHEMA",
    "SCHEMA",
    "AlertEngine",
    "AlertRule",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "Sample",
    "SamplingProfiler",
    "Snapshot",
    "Span",
    "TelemetryStream",
    "Tracer",
    "attr_reader",
    "default_rules",
    "dump_registry",
    "load_rules",
    "merge_dumps",
    "merge_registries",
    "render_metrics_table",
    "render_span_tree",
    "render_top",
    "resolve_rules",
    "snapshot_document",
    "write_metrics_json",
]
