"""Unified telemetry: metrics registry, trace spans, exporters.

The one observability layer of the simulated machine.  Components
register named metrics in the machine's :class:`MetricsRegistry`;
phases are timed with :class:`Tracer` spans on the simulated clock;
everything is read via cycle-stamped snapshots and exported through
the stable ``repro.metrics/v1`` schema (see ``docs/OBSERVABILITY.md``).
"""

from repro.obs.export import (
    SCHEMA,
    render_metrics_table,
    render_span_tree,
    snapshot_document,
    write_metrics_json,
)
from repro.obs.merge import dump_registry, merge_dumps, merge_registries
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    attr_reader,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshot",
    "Span",
    "Tracer",
    "attr_reader",
    "dump_registry",
    "merge_dumps",
    "merge_registries",
    "render_metrics_table",
    "render_span_tree",
    "snapshot_document",
    "write_metrics_json",
]
