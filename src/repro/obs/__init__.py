"""Unified telemetry: metrics, spans, sampling, alerts, streaming.

The one observability layer of the simulated machine.  Components
register named metrics in the machine's :class:`MetricsRegistry`;
phases are timed with :class:`Tracer` spans on the simulated clock;
everything is read via cycle-stamped snapshots and exported through
the stable ``repro.metrics/v1`` schema.  On top of that sits the
continuous-monitoring layer: a :class:`SamplingProfiler` driven by the
simulated clock, an :class:`AlertEngine` evaluating declarative rules
on every sample, and streaming sinks shipping ``repro.events/v1``
records (see ``docs/OBSERVABILITY.md``).  Post-mortem forensics --
``repro.dump/v1`` crash bundles, deterministic replay, and run
diffing -- live in :mod:`repro.obs.forensics`.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    load_rules,
    resolve_rules,
)
from repro.obs.export import (
    SCHEMA,
    render_metrics_table,
    render_span_tree,
    snapshot_document,
    snapshot_from_document,
    write_metrics_json,
)
from repro.obs.forensics import (
    DUMP_SCHEMA,
    ForensicRecorder,
    ReplayResult,
    capture_bundle,
    diff_documents,
    load_bundle,
    load_document,
    render_bundle_summary,
    render_diff,
    replay_bundle,
    verify_replay,
    write_bundle,
)
from repro.obs.merge import dump_registry, merge_dumps, merge_registries
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    attr_reader,
)
from repro.obs.sampler import Sample, SamplingProfiler, render_top
from repro.obs.stack import (
    DEFAULT_SAMPLE_EVERY,
    MonitorStack,
    MonitorStackConfig,
    add_monitoring_arguments,
    build_monitor_stack,
)
from repro.obs.sink import (
    EVENTS_SCHEMA,
    JsonlSink,
    MemorySink,
    TelemetryStream,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "DUMP_SCHEMA",
    "EVENTS_SCHEMA",
    "SCHEMA",
    "AlertEngine",
    "AlertRule",
    "Counter",
    "ForensicRecorder",
    "MonitorStack",
    "MonitorStackConfig",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "ReplayResult",
    "Sample",
    "SamplingProfiler",
    "Snapshot",
    "Span",
    "TelemetryStream",
    "Tracer",
    "add_monitoring_arguments",
    "attr_reader",
    "build_monitor_stack",
    "default_rules",
    "diff_documents",
    "dump_registry",
    "load_bundle",
    "load_document",
    "load_rules",
    "merge_dumps",
    "merge_registries",
    "render_bundle_summary",
    "render_diff",
    "render_metrics_table",
    "render_span_tree",
    "render_top",
    "replay_bundle",
    "resolve_rules",
    "snapshot_document",
    "snapshot_from_document",
    "verify_replay",
    "write_bundle",
    "write_metrics_json",
]
