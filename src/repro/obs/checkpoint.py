"""Checkpoint/restore for long-horizon runs (``repro.checkpoint/v1``).

A multi-billion-cycle production simulation cannot restart from zero
every time the host process dies.  This module makes a run durable at
**request boundaries** -- the quiescent instants between workload
requests, where no span is mid-flight and no allocation is half done:

- :func:`capture_checkpoint` freezes the machine *and* the whole
  monitoring stack into one versioned JSON document: boot config,
  clock, DRAM/check-bit digests, the metrics snapshot, the event-log
  tail, watch registry, interrupt state, the allocator heap map and
  leak-group tables, plus the profiler ring, alert-engine state
  machines, trend-detector accumulators/latches/seasonal baselines,
  and history tiers (their ``state_dict`` payloads embedded verbatim);
- :class:`CheckpointScheduler` captures automatically every
  ``--checkpoint-every N`` cycles, evaluated at request boundaries via
  pure arithmetic -- **no clock timer is registered**, so a run
  behaves bit-identically with checkpointing on or off;
- :func:`resume_checkpoint` implements **reconstructive restore**: the
  simulation has no wall clock and no unseeded randomness, so resume
  re-executes the recorded run from its seed, *verifies* the
  reconstructed state against the checkpoint at the recorded request
  boundary (every top-level section must match bit-exactly, DRAM via
  SHA-256 digests), and then continues to the requested horizon.  The
  differential contract: run-to-N -> checkpoint -> resume-to-M equals
  a straight run to M in events, metrics, ALERT/TREND cycles, and
  verdict.

Capture is observation-only (reads registries, rings, digests; never
ticks the clock or emits events).  See docs/SCHEMAS.md for the field
table and docs/OBSERVABILITY.md for the operational story.
"""

import json
import pathlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, MachinePanic
from repro.obs.export import snapshot_document
from repro.obs.forensics import (
    EVENT_TAIL_LIMIT,
    GROUP_LIMIT,
    HEAP_MAP_LIMIT,
    _heap_map,
    _safe_label,
    event_to_dict,
    machine_from_config,
)
from repro.obs.sampler import group_stats

#: schema tag of a checkpoint document.
CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

#: checkpoints a scheduler writes before it starts skipping (counted,
#: never silent) -- bounds disk output on very long runs.
DEFAULT_MAX_CHECKPOINTS = 16

#: document sections compared by :func:`compare_checkpoints`.  ``run``
#: is deliberately absent: resume may override the request horizon, so
#: the recorded run spec legitimately differs from the fresh capture's.
VERIFIED_SECTIONS = (
    "cycle", "idle_cycles", "progress", "machine", "dram", "metrics",
    "events", "watches", "interrupts", "heap", "groups",
    "monitoring_state",
)


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def capture_checkpoint(machine, monitor=None, run_info=None,
                       request_index=None, sampler=None, engine=None,
                       trend=None, history=None,
                       event_tail=EVENT_TAIL_LIMIT,
                       heap_map_limit=HEAP_MAP_LIMIT,
                       group_limit=GROUP_LIMIT):
    """Freeze one machine + monitoring stack into a checkpoint dict.

    ``request_index`` is the zero-based index of the request boundary
    the capture sits on; ``run_info`` records how to re-drive the run
    (as in forensic bundles -- without it the checkpoint is
    inspectable but not resumable).  ``sampler``/``engine``/``trend``/
    ``history`` are the live stack components whose ``state_dict``
    payloads are embedded for durability tests and resume
    verification.
    """
    cycle = machine.clock.cycles
    kernel = machine.kernel
    irq = kernel.interrupts
    document = {
        "schema": CHECKPOINT_SCHEMA,
        "cycle": cycle,
        "idle_cycles": machine.clock.idle_cycles,
        "progress": {
            "request_index": request_index,
            "requests_completed": (request_index + 1
                                   if request_index is not None
                                   else None),
        },
        "run": dict(run_info or {}),
        "machine": dict(getattr(machine, "boot_config", {})),
        "dram": machine.dram.digest(),
        "metrics": snapshot_document(machine.metrics.snapshot()),
        "events": {
            "total": len(machine.events),
            "tail": [event_to_dict(event)
                     for event in machine.events.query(limit=event_tail)],
        },
        "watches": [
            {"vaddr": region.vaddr, "size": region.size,
             "lines": [[vline, pline]
                       for vline, pline in sorted(region.lines.items())]}
            for region in sorted(kernel.watches.all_regions(),
                                 key=lambda r: r.vaddr)
        ],
        "interrupts": {
            "delivered": irq.delivered,
            "panics": irq.panics,
            "handler_registered": irq.user_handler is not None,
            "ecc_traps": kernel.ecc_traps,
            "pinned_pages": kernel.pinned_pages,
        },
        "heap": None,
        "groups": [],
        "monitoring_state": {
            "sampler": (sampler.state_dict()
                        if sampler is not None else None),
            "alerts": (engine.state_dict()
                       if engine is not None else None),
            "trend": (trend.state_dict()
                      if trend is not None else None),
            "history": (history.to_dict()
                        if history is not None else None),
        },
    }
    program = getattr(monitor, "program", None) if monitor is not None \
        else None
    if program is not None and getattr(program, "allocator", None) \
            is not None:
        document["heap"] = _heap_map(program.allocator, heap_map_limit)
    leak = getattr(monitor, "leak", None) if monitor is not None else None
    if leak is not None:
        document["groups"] = group_stats(leak.groups, limit=group_limit,
                                         now=cycle)
    return document


def write_checkpoint(document, path):
    """Write a checkpoint to ``path`` as indented JSON; returns path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def load_checkpoint(path):
    """Load and schema-check one ``repro.checkpoint/v1`` document."""
    with open(path) as stream:
        document = json.load(stream)
    if (not isinstance(document, dict)
            or document.get("schema") != CHECKPOINT_SCHEMA):
        found = (document.get("schema") if isinstance(document, dict)
                 else type(document).__name__)
        raise ConfigurationError(
            f"{path}: not a {CHECKPOINT_SCHEMA} document "
            f"(schema={found!r})"
        )
    return document


class CheckpointScheduler:
    """Periodic checkpoint capture evaluated at request boundaries.

    Wire :meth:`on_request` as the workload's ``request_hook``.  The
    scheduler never registers a clock timer -- due-ness is pure
    arithmetic on the cycle counter at each boundary -- so the
    simulated execution is bit-identical whether or not checkpointing
    is enabled.  A boundary at or past ``next_due`` captures once and
    re-arms at the next multiple of ``every``.
    """

    def __init__(self, machine, every, monitor=None, run_info=None,
                 sampler=None, engine=None, trend=None, history=None,
                 checkpoint_dir="checkpoints", label="run",
                 max_checkpoints=DEFAULT_MAX_CHECKPOINTS):
        if every < 1:
            raise ConfigurationError(
                f"--checkpoint-every must be >= 1 cycle, got {every}"
            )
        self.machine = machine
        self.every = every
        self.monitor = monitor
        self.run_info = dict(run_info or {})
        self.sampler = sampler
        self.engine = engine
        self.trend = trend
        self.history = history
        self.checkpoint_dir = pathlib.Path(checkpoint_dir)
        self.label = _safe_label(label)
        self.max_checkpoints = max_checkpoints
        self.checkpoint_paths = []
        self.checkpoints_skipped = 0
        #: first cycle at which the next boundary will capture.
        self.next_due = every

    def on_request(self, index, truth):
        """Request-boundary hook: capture when a deadline has passed."""
        cycle = self.machine.clock.cycles
        if cycle < self.next_due:
            return None
        self.next_due = (cycle // self.every + 1) * self.every
        if len(self.checkpoint_paths) >= self.max_checkpoints:
            self.checkpoints_skipped += 1
            return None
        document = capture_checkpoint(
            self.machine, monitor=self.monitor, run_info=self.run_info,
            request_index=index, sampler=self.sampler,
            engine=self.engine, trend=self.trend, history=self.history,
        )
        path = self.checkpoint_dir / (
            f"{self.label}-c{cycle}-r{index}.ckpt.json"
        )
        write_checkpoint(document, path)
        self.checkpoint_paths.append(path)
        return path


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
def _normalize(value):
    """JSON round-trip, so tuples/ints/floats compare canonically."""
    return json.loads(json.dumps(value, sort_keys=True))


def compare_checkpoints(recorded, fresh):
    """``(ok, message)``: do two checkpoints agree section by section?

    Both documents are JSON-normalized first, so a freshly captured
    in-memory document compares cleanly against one loaded from disk.
    The ``run`` section is excluded (see :data:`VERIFIED_SECTIONS`).
    """
    recorded = _normalize(recorded)
    fresh = _normalize(fresh)
    mismatched = [section for section in VERIFIED_SECTIONS
                  if recorded.get(section) != fresh.get(section)]
    if mismatched:
        return False, (
            "reconstructed state diverged from the checkpoint in: "
            + ", ".join(mismatched)
        )
    return True, (
        f"{len(VERIFIED_SECTIONS)} sections verified bit-exact at "
        f"cycle {recorded.get('cycle', 0):,}"
    )


# ----------------------------------------------------------------------
# resume (reconstructive restore)
# ----------------------------------------------------------------------
@dataclass
class ResumeResult:
    """A finished resume, live machine included."""

    machine: object
    monitor: object
    program: object
    #: GroundTruth when the workload ran to completion, else None.
    truth: object
    #: full event list of the resumed run.
    events: list = field(default_factory=list)
    #: cycle the checkpoint was recorded at.
    checkpoint_cycle: int = 0
    #: None = verification skipped; else the comparison outcome.
    verified: bool = None
    verify_message: str = ""
    #: panic message when the resumed run re-panicked.
    panic: object = None


def build_monitoring_from_info(machine, monitor, monitoring):
    """Recreate sampler/trend/alerts/history from a recorded
    ``monitoring`` dict (the one :meth:`MonitorStack.monitoring_info`
    writes into run_info).  Returns a dict of live components with the
    sampler already started; listener order matches
    :func:`~repro.obs.stack.build_monitor_stack` exactly, which the
    bit-exact contract depends on.
    """
    from repro.obs.alerts import AlertEngine, AlertRule
    from repro.obs.sampler import SamplingProfiler, leak_group_source

    components = {"sampler": None, "engine": None, "trend": None,
                  "history": None}
    if not monitoring.get("sample_every"):
        return components
    sampler = SamplingProfiler(
        machine, interval_cycles=monitoring["sample_every"],
        group_source=leak_group_source(monitor),
    )
    components["sampler"] = sampler
    trend = None
    trend_info = monitoring.get("trend")
    if trend_info:
        from repro.obs.trend import (
            DEFAULT_SEASONAL_PHASES,
            DEFAULT_SEASONAL_WARMUP,
            DEFAULT_WINDOW,
            TrendEngine,
        )
        trend = TrendEngine(
            machine,
            window=trend_info.get("window") or DEFAULT_WINDOW,
            seasonal_period=trend_info.get("seasonal_period"),
            seasonal_phases=(trend_info.get("seasonal_phases")
                             or DEFAULT_SEASONAL_PHASES),
            seasonal_warmup=(trend_info.get("seasonal_warmup")
                             or DEFAULT_SEASONAL_WARMUP),
        )
        components["trend"] = trend
        sampler.add_listener(trend.observe)
    rules = [AlertRule.from_dict(spec)
             for spec in monitoring.get("rules", [])]
    if rules:
        engine = AlertEngine(rules, events=machine.events,
                             metrics=machine.metrics,
                             trend_source=trend)
        components["engine"] = engine
        sampler.add_listener(engine.evaluate)
    if monitoring.get("history"):
        from repro.obs.history import HistoryStore
        history = HistoryStore(metrics=machine.metrics)
        components["history"] = history
        sampler.add_listener(history.observe)
    sampler.start()
    return components


def resume_checkpoint(checkpoint, requests=None, verify=True):
    """Resume a checkpointed run: re-execute, verify, continue.

    Re-drives the recorded workload from its seed on a freshly booted
    identical machine (deterministic, so the reconstruction is exact),
    compares the reconstructed state against the checkpoint at the
    recorded request boundary when ``verify`` is on, and continues to
    ``requests`` total requests (default: the recorded horizon).
    """
    from repro.analysis.runner import HEAP_SIZE, make_monitor
    from repro.machine.program import Program
    from repro.workloads.registry import get_workload

    run = dict(checkpoint.get("run") or {})
    if "workload" not in run or "monitor" not in run:
        raise ConfigurationError(
            "checkpoint records no run (workload/monitor); it was "
            "captured without run_info and cannot be resumed"
        )
    boundary = (checkpoint.get("progress") or {}).get("request_index")
    if verify and boundary is None:
        raise ConfigurationError(
            "checkpoint records no request boundary; resume it with "
            "verification disabled"
        )
    target = requests if requests is not None else run.get("requests")
    if verify and target is not None and boundary is not None \
            and target <= boundary:
        raise ConfigurationError(
            f"cannot verify: the checkpoint sits at request boundary "
            f"{boundary} but the resumed run stops after {target} "
            f"request(s)"
        )
    machine = machine_from_config(checkpoint.get("machine"))
    monitoring = dict(run.get("monitoring") or {})
    sampling = monitoring.get("sampling")
    if sampling is not None:
        from repro.core.sampling import SamplingPolicy
        sampling = SamplingPolicy.from_dict(sampling)
    monitor = make_monitor(run["monitor"], sampling=sampling)
    components = build_monitoring_from_info(machine, monitor, monitoring)

    state = {"verified": None, "message": "verification disabled"}

    def _hook(index, truth):
        if not verify or index != boundary:
            return
        fresh = capture_checkpoint(
            machine, monitor=monitor, run_info=run,
            request_index=index, sampler=components["sampler"],
            engine=components["engine"], trend=components["trend"],
            history=components["history"],
        )
        ok, message = compare_checkpoints(checkpoint, fresh)
        state["verified"] = ok
        state["message"] = message

    truth = panic = None
    try:
        program = Program(machine, monitor=monitor,
                          heap_size=run.get("heap_size", HEAP_SIZE))
        workload = get_workload(run["workload"], requests=target,
                                seed=run.get("seed", 0))
        with machine.tracer.span(f"workload.{run['workload']}",
                                 monitor=run["monitor"],
                                 buggy=run.get("buggy", False)):
            truth = workload.run(program, buggy=run.get("buggy", False),
                                 request_hook=_hook)
    except MachinePanic as error:
        panic = str(error)
    finally:
        if components["sampler"] is not None:
            components["sampler"].stop()

    return ResumeResult(
        machine=machine,
        monitor=monitor,
        program=getattr(monitor, "program", None),
        truth=truth,
        events=machine.events.query(),
        checkpoint_cycle=checkpoint.get("cycle", 0),
        verified=state["verified"],
        verify_message=state["message"],
        panic=panic,
    )


# ----------------------------------------------------------------------
# inspection
# ----------------------------------------------------------------------
def render_checkpoint_summary(document):
    """The `repro inspect` headline view of one checkpoint."""
    run = document.get("run") or {}
    machine = document.get("machine") or {}
    progress = document.get("progress") or {}
    events = document.get("events") or {}
    monitoring_state = document.get("monitoring_state") or {}
    lines = [
        f"checkpoint ({document['schema']}) @ cycle "
        f"{document.get('cycle', 0):,} "
        f"(+{document.get('idle_cycles', 0):,} idle)",
    ]
    if progress.get("request_index") is not None:
        lines.append(
            f"  boundary:  after request #{progress['request_index']} "
            f"({progress.get('requests_completed')} completed)"
        )
    if run:
        lines.append(
            f"  run:       {run.get('workload', '?')}/"
            f"{run.get('monitor', '?')} "
            f"({'buggy' if run.get('buggy') else 'normal'} input, "
            f"{run.get('requests', '?')} requests, "
            f"seed {run.get('seed', '?')})"
        )
    else:
        lines.append("  run:       (not recorded; checkpoint is not "
                     "resumable)")
    if machine:
        lines.append(
            f"  machine:   {machine.get('dram_size', 0) >> 20} MiB "
            f"DRAM, {machine.get('cache_size', 0) >> 10} KiB cache, "
            f"ecc={machine.get('ecc_mode', '?')}"
        )
    dram = document.get("dram") or {}
    if dram:
        lines.append(f"  dram:      data sha256 "
                     f"{dram.get('data', '?')[:16]}..., check "
                     f"{dram.get('check', '?')[:16]}...")
    lines.append(f"  events:    {events.get('total', 0):,} total, "
                 f"{len(events.get('tail', []))} in tail")
    watches = document.get("watches") or []
    armed = sum(len(region["lines"]) for region in watches)
    lines.append(f"  watches:   {len(watches)} region(s), "
                 f"{armed} armed line(s)")
    heap = document.get("heap")
    if heap:
        lines.append(
            f"  heap:      {heap['live_bytes']:,} B live in "
            f"{heap['live_blocks']} block(s)"
        )
    present = sorted(name for name, payload
                     in monitoring_state.items() if payload)
    if present:
        lines.append("  stack state: " + ", ".join(present))
        sampler_state = monitoring_state.get("sampler")
        if sampler_state:
            lines.append(
                f"    sampler: {sampler_state['samples_taken']} "
                f"sample(s) taken, {len(sampler_state['ring'])} in "
                f"ring"
            )
        trend_state = monitoring_state.get("trend")
        if trend_state:
            latched = sum(
                1 for record in trend_state["series"].values()
                for breached in record["breached"].values() if breached
            )
            lines.append(
                f"    trend: {len(trend_state['series'])} series, "
                f"{latched} latch(es) breached, "
                f"{trend_state['breach_onsets']} onset(s)"
            )
        alert_state = monitoring_state.get("alerts")
        if alert_state:
            firing = sorted(
                name for name, record in alert_state["alerts"].items()
                if record["state"] == "firing"
            )
            lines.append(
                f"    alerts: {len(alert_state['alerts'])} rule(s)"
                + (", firing: " + ", ".join(firing) if firing else "")
            )
    return "\n".join(lines)
