"""Streaming telemetry sinks: the ``repro.events/v1`` record stream.

End-of-run snapshots answer "what happened"; a production operator
needs "what is happening".  This module turns samples, alert
transitions, and selected event-log events into a single stream of
structured records and ships them to a **sink**:

- :class:`JsonlSink` -- one JSON object per line with size-based
  rotation (``monitor.jsonl`` -> ``monitor.jsonl.1`` -> ...), the
  format every log shipper ingests,
- :class:`MemorySink` -- an in-memory list for tests and the live CLI.

Record schema ``repro.events/v1`` (every record carries ``schema``,
``type``, and ``cycle``)::

    {"schema": "repro.events/v1", "type": "sample",  "cycle": N,
     "sample": {...Sample.to_dict()...}}
    {"schema": "repro.events/v1", "type": "alert",   "cycle": N,
     "alert": {"rule": ..., "severity": ..., "state": "firing",
               "value": ...}}
    {"schema": "repro.events/v1", "type": "event",   "cycle": N,
     "event": {"kind": ..., "address": ..., "size": ..., "detail": {...}}}
    {"schema": "repro.events/v1", "type": "run",     "cycle": N,
     "run": {...open/close marker metadata...}}

:class:`TelemetryStream` wires one sink to a machine's
:class:`~repro.common.events.EventLog` (a curated kind set by default
-- streaming every allocation would drown the signal), a
:class:`~repro.obs.sampler.SamplingProfiler`, and an
:class:`~repro.obs.alerts.AlertEngine`, and detaches cleanly on close.
"""

import json
import pathlib

from repro.common.errors import ConfigurationError
from repro.common.events import EventKind

EVENTS_SCHEMA = "repro.events/v1"

#: event kinds streamed by default: operator-signal, not per-access
#: noise (ALLOC/FREE/SYSCALL stay queryable in the EventLog).
DEFAULT_STREAM_KINDS = (
    EventKind.ECC_FAULT,
    EventKind.LEAK_SUSPECT,
    EventKind.LEAK_PRUNED,
    EventKind.LEAK_REPORT,
    EventKind.CORRUPTION_REPORT,
    EventKind.PANIC,
    EventKind.ALERT,
    EventKind.TREND,
)

#: default rotation threshold for JSONL sinks.
DEFAULT_MAX_BYTES = 1 << 20


def sample_record(sample):
    """A profiler :class:`~repro.obs.sampler.Sample` as a stream record."""
    return {
        "schema": EVENTS_SCHEMA,
        "type": "sample",
        "cycle": sample.cycle,
        "sample": sample.to_dict(),
    }


def alert_record(transition):
    """An :class:`~repro.obs.alerts.AlertTransition` as a stream record."""
    return {
        "schema": EVENTS_SCHEMA,
        "type": "alert",
        "cycle": transition.cycle,
        "alert": transition.to_dict(),
    }


def event_record(event):
    """An :class:`~repro.common.events.Event` as a stream record."""
    return {
        "schema": EVENTS_SCHEMA,
        "type": "event",
        "cycle": event.cycle,
        "event": {
            "kind": event.kind.value,
            "address": event.address,
            "size": event.size,
            "detail": {key: _jsonable(value)
                       for key, value in event.detail.items()},
        },
    }


def run_record(cycle, **meta):
    """A run open/close marker record (workload, monitor, outcome...)."""
    return {
        "schema": EVENTS_SCHEMA,
        "type": "run",
        "cycle": cycle,
        "run": {key: _jsonable(value) for key, value in meta.items()},
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class MemorySink:
    """Collects records in memory (tests, the live CLI panel)."""

    def __init__(self):
        self.records = []
        self.closed = False

    def write(self, record):
        self.records.append(record)

    def of_type(self, record_type):
        return [record for record in self.records
                if record["type"] == record_type]

    def close(self):
        self.closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __len__(self):
        return len(self.records)


class JsonlSink:
    """Append-only JSONL file with size-based rotation.

    When the active file would exceed ``max_bytes`` the sink rotates:
    ``path`` -> ``path.1`` -> ``path.2`` ... keeping at most
    ``max_files`` rotated generations (the oldest is dropped).  A
    record is never split across files.
    """

    def __init__(self, path, max_bytes=DEFAULT_MAX_BYTES, max_files=3):
        if max_bytes <= 0:
            raise ConfigurationError(
                f"max_bytes must be positive: {max_bytes}"
            )
        if max_files < 1:
            raise ConfigurationError(
                f"max_files must be >= 1: {max_files}"
            )
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.records_written = 0
        self.rotations = 0
        self._stream = open(self.path, "w")
        self._size = 0

    def write(self, record):
        line = json.dumps(record, sort_keys=True) + "\n"
        encoded = len(line.encode())
        if self._size and self._size + encoded > self.max_bytes:
            self._rotate()
        self._stream.write(line)
        self._size += encoded
        self.records_written += 1

    def _rotate(self):
        self._stream.close()
        oldest = self.path.with_name(
            f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")
            if source.exists():
                source.replace(
                    self.path.with_name(f"{self.path.name}.{index + 1}")
                )
        self.path.replace(self.path.with_name(f"{self.path.name}.1"))
        self._stream = open(self.path, "w")
        self._size = 0
        self.rotations += 1

    def paths(self):
        """Active file first, then rotated generations, newest first."""
        found = [self.path]
        for index in range(1, self.max_files + 1):
            rotated = self.path.with_name(f"{self.path.name}.{index}")
            if rotated.exists():
                found.append(rotated)
        return found

    def flush(self):
        self._stream.flush()

    @property
    def closed(self):
        return self._stream.closed

    def close(self):
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Closing flushes, so a crash inside the ``with`` body still
        # leaves every written record on disk as complete lines.
        self.close()
        return False


def read_jsonl(path):
    """Parse one JSONL stream file back into records (test helper)."""
    records = []
    with open(path) as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TelemetryStream:
    """Wires events, samples, and alerts from one machine into one sink."""

    def __init__(self, sink, machine=None, sampler=None, engine=None,
                 kinds=DEFAULT_STREAM_KINDS):
        self.sink = sink
        self._event_tokens = []
        self._sampler = None
        self._engine = None
        self._machine = None
        if machine is not None:
            self._machine = machine
            for kind in kinds:
                if engine is not None and kind is EventKind.ALERT:
                    # Alert transitions already arrive as first-class
                    # "alert" records via the engine listener; a second
                    # copy through the event log would double-write.
                    continue
                self._event_tokens.append(
                    machine.events.subscribe(self._on_event, kind=kind)
                )
        if sampler is not None:
            self._sampler = sampler
            sampler.add_listener(self._on_sample)
        if engine is not None:
            self._engine = engine
            engine.add_listener(self._on_transition)

    def _on_event(self, event):
        self.sink.write(event_record(event))

    def _on_sample(self, sample):
        self.sink.write(sample_record(sample))

    def _on_transition(self, transition):
        self.sink.write(alert_record(transition))

    def mark(self, cycle, **meta):
        """Write a run marker record (start/finish metadata)."""
        self.sink.write(run_record(cycle, **meta))

    def close(self):
        """Detach every subscription and close the sink."""
        if self._machine is not None:
            for token in self._event_tokens:
                self._machine.events.unsubscribe(token)
            self._event_tokens = []
        if self._sampler is not None:
            self._sampler.remove_listener(self._on_sample)
            self._sampler = None
        if self._engine is not None:
            self._engine.remove_listener(self._on_transition)
            self._engine = None
        self.sink.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Exception-safe teardown: detach subscriptions and close (and
        # therefore flush) the sink even when the run inside the
        # ``with`` body panics.  close() is idempotent, so an explicit
        # close before the block exits is also fine.
        self.close()
        return False
