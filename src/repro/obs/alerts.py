"""Declarative alert rules evaluated on every profiler sample.

Production monitoring is rules plus a state machine, not a human
watching counters.  An :class:`AlertEngine` holds a set of
:class:`AlertRule` definitions and evaluates them against each
:class:`~repro.obs.sampler.Sample` the profiler captures.  Four rule
kinds:

- ``threshold`` -- the metric's current value compared against
  ``value`` with ``op``; ``clear_value`` gives hysteresis (breach at
  ``value``, clear only back below ``clear_value``),
- ``rate`` -- the metric's per-megacycle rate of change between
  consecutive samples compared against ``value`` (leak growth, fault
  storms),
- ``absence`` -- breaches when the metric is missing from the sample
  or has made no progress (counter unchanged) since the previous one,
- ``trend`` -- judges the :class:`~repro.obs.trend.TrendEngine`'s
  latest verdicts instead of a sample metric.  The rule's ``metric``
  is a ``<detector>/<series-pattern>`` selector (see
  :func:`~repro.obs.trend.parse_selector`); the rule breaches while
  any matching series is latched breached with a statistic ``op``
  ``value``, and clears once no matching series holds above
  ``clear_value``.  Requires an engine constructed with
  ``trend_source=``.

Every rule debounces: ``for_samples`` consecutive breaching samples are
required before ``ok -> firing`` (passing through a ``pending`` state),
and ``resolve_after`` consecutive clear samples before
``firing -> resolved`` -- so one noisy sample neither pages anyone nor
closes a live incident.  Transitions are published as
:data:`~repro.common.events.EventKind.ALERT` events and counted in the
``alerts.*`` metrics namespace, which makes them visible to streaming
sinks, to ``repro monitor``'s live panel, and (because counters merge)
to fleet-level aggregation.
"""

import json

from repro.common.errors import ConfigurationError
from repro.common.events import EventKind
from repro.obs.trend import DETECTORS, parse_selector

RULE_KINDS = ("threshold", "rate", "absence", "trend")
SEVERITIES = ("info", "warning", "critical")
OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

#: cycles per "megacycle" -- the rate rules' time unit.
MEGACYCLE = 1_000_000

#: states of one alert's lifecycle.
OK, PENDING, FIRING = "ok", "pending", "firing"


class AlertRule:
    """One declarative rule (immutable; runtime state lives in Alert)."""

    __slots__ = ("name", "metric", "kind", "op", "value", "clear_value",
                 "for_samples", "resolve_after", "severity",
                 "description")

    def __init__(self, name, metric, kind="threshold", op=">",
                 value=0.0, clear_value=None, for_samples=1,
                 resolve_after=2, severity="warning", description=""):
        if kind not in RULE_KINDS:
            raise ConfigurationError(
                f"alert rule {name!r}: unknown kind {kind!r} "
                f"(choose from {RULE_KINDS})"
            )
        if severity not in SEVERITIES:
            raise ConfigurationError(
                f"alert rule {name!r}: unknown severity {severity!r} "
                f"(choose from {SEVERITIES})"
            )
        if kind != "absence" and op not in OPS:
            raise ConfigurationError(
                f"alert rule {name!r}: unknown op {op!r}"
            )
        if for_samples < 1 or resolve_after < 1:
            raise ConfigurationError(
                f"alert rule {name!r}: for_samples and resolve_after "
                f"must be >= 1"
            )
        if kind == "trend":
            try:
                parse_selector(metric)
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"alert rule {name!r}: {error}"
                ) from None
        self.name = name
        self.metric = metric
        self.kind = kind
        self.op = op
        self.value = value
        #: hysteresis: the level the value must come back past to count
        #: as clear.  None means the firing threshold itself.
        self.clear_value = clear_value
        self.for_samples = for_samples
        self.resolve_after = resolve_after
        self.severity = severity
        self.description = description

    @property
    def severity_rank(self):
        return SEVERITIES.index(self.severity)

    def to_dict(self):
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "value": self.value,
            "clear_value": self.clear_value,
            "for_samples": self.for_samples,
            "resolve_after": self.resolve_after,
            "severity": self.severity,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, spec):
        spec = dict(spec)
        name = spec.pop("name", None)
        metric = spec.pop("metric", None)
        if not name or not metric:
            raise ConfigurationError(
                f"alert rule needs 'name' and 'metric': {spec}"
            )
        known = {slot for slot in cls.__slots__}
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"alert rule {name!r}: unknown keys {sorted(unknown)}"
            )
        return cls(name, metric, **spec)

    def __repr__(self):
        return (f"AlertRule({self.name}: {self.kind} {self.metric} "
                f"{self.op} {self.value}, {self.severity})")


class Alert:
    """Runtime state of one rule inside an engine."""

    __slots__ = ("rule", "state", "breach_streak", "clear_streak",
                 "fired_count", "resolved_count", "last_value",
                 "fired_at_cycle", "_previous")

    def __init__(self, rule):
        self.rule = rule
        self.state = OK
        self.breach_streak = 0
        self.clear_streak = 0
        self.fired_count = 0
        self.resolved_count = 0
        self.last_value = 0.0
        self.fired_at_cycle = None
        #: (cycle, value) of the previous sample -- rate/absence input.
        self._previous = None

    @property
    def firing(self):
        return self.state == FIRING


class AlertTransition:
    """One ``firing`` or ``resolved`` edge, as published to sinks."""

    __slots__ = ("cycle", "rule", "severity", "state", "value")

    def __init__(self, cycle, rule, severity, state, value):
        self.cycle = cycle
        self.rule = rule
        self.severity = severity
        self.state = state
        self.value = value

    def to_dict(self):
        return {
            "cycle": self.cycle,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "value": self.value,
        }

    def __repr__(self):
        return (f"AlertTransition({self.rule} -> {self.state} "
                f"@ {self.cycle})")


class AlertEngine:
    """Evaluates a rule set against each sample; owns the state machines.

    Wire it as a profiler listener::

        engine = AlertEngine(default_rules(), events=machine.events,
                             metrics=machine.metrics)
        sampler.add_listener(engine.evaluate)
    """

    def __init__(self, rules, events=None, metrics=None,
                 trend_source=None):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate alert rule names: {names}"
            )
        self.alerts = {rule.name: Alert(rule) for rule in rules}
        self.events = events
        self.metrics = metrics
        #: a TrendEngine (or anything with ``judge(selector)``) that
        #: ``trend``-kind rules consult; None disables them.
        self.trend_source = trend_source
        self.evaluations = 0
        self.transitions = []
        self._listeners = []
        if metrics is not None:
            metrics.probe("alerts.evaluations",
                          lambda: self.evaluations, kind="counter")
            metrics.probe("alerts.fired", self._total_fired,
                          kind="counter",
                          description="ok->firing transitions")
            metrics.probe("alerts.resolved", self._total_resolved,
                          kind="counter",
                          description="firing->resolved transitions")
            metrics.probe("alerts.firing", self._currently_firing,
                          kind="gauge",
                          description="rules currently in firing state")
            for name in self.alerts:
                metrics.probe(f"alerts.rule.{name}.fired",
                              self._rule_fired_probe(name),
                              kind="counter")

    def _rule_fired_probe(self, name):
        return lambda: self.alerts[name].fired_count

    def _total_fired(self):
        return sum(alert.fired_count for alert in self.alerts.values())

    def _total_resolved(self):
        return sum(alert.resolved_count
                   for alert in self.alerts.values())

    def _currently_firing(self):
        return sum(1 for alert in self.alerts.values() if alert.firing)

    def add_listener(self, listener):
        """Call ``listener(transition)`` on every firing/resolved edge."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener):
        self._listeners.remove(listener)

    def firing(self):
        """Alerts currently in the firing state, most severe first."""
        return sorted(
            (alert for alert in self.alerts.values() if alert.firing),
            key=lambda alert: -alert.rule.severity_rank,
        )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, sample):
        """Evaluate every rule against one sample; returns transitions."""
        self.evaluations += 1
        transitions = []
        for alert in self.alerts.values():
            transition = self._evaluate_one(alert, sample)
            if transition is not None:
                transitions.append(transition)
        for transition in transitions:
            self._publish(transition)
        return transitions

    def _evaluate_one(self, alert, sample):
        rule = alert.rule
        present = rule.metric in sample.metrics
        value = sample.metrics.get(rule.metric, 0)
        if value is None:
            # Null histogram gauges (empty window) carry no reading:
            # treat like a missing metric rather than comparing None.
            present = False
            value = 0
        alert.last_value = value
        # _judge overrides last_value with the computed statistic for
        # rate and trend rules, so the published transition carries the
        # judged number.
        breached, cleared = self._judge(alert, rule, sample, present,
                                        value)
        alert._previous = (sample.cycle, value if present else None)

        if alert.state in (OK, PENDING):
            if breached:
                alert.breach_streak += 1
                alert.state = PENDING
                if alert.breach_streak >= rule.for_samples:
                    alert.state = FIRING
                    alert.fired_count += 1
                    alert.fired_at_cycle = sample.cycle
                    alert.clear_streak = 0
                    return AlertTransition(sample.cycle, rule.name,
                                           rule.severity, "firing",
                                           alert.last_value)
            else:
                alert.breach_streak = 0
                alert.state = OK
        elif alert.state == FIRING:
            if cleared:
                alert.clear_streak += 1
                if alert.clear_streak >= rule.resolve_after:
                    alert.state = OK
                    alert.resolved_count += 1
                    alert.breach_streak = 0
                    alert.fired_at_cycle = None
                    return AlertTransition(sample.cycle, rule.name,
                                           rule.severity, "resolved",
                                           alert.last_value)
            else:
                alert.clear_streak = 0
        return None

    def _judge(self, alert, rule, sample, present, value):
        """(breached, cleared) for one rule against one sample."""
        if rule.kind == "threshold":
            if not present:
                return False, True
            breached = OPS[rule.op](value, rule.value)
            clear_at = rule.value if rule.clear_value is None \
                else rule.clear_value
            return breached, not OPS[rule.op](value, clear_at)
        if rule.kind == "rate":
            previous = alert._previous
            if not present or previous is None or previous[1] is None:
                return False, True
            elapsed = sample.cycle - previous[0]
            if elapsed <= 0:
                return False, True
            rate = (value - previous[1]) / elapsed * MEGACYCLE
            alert.last_value = rate
            breached = OPS[rule.op](rate, rule.value)
            clear_at = rule.value if rule.clear_value is None \
                else rule.clear_value
            return breached, not OPS[rule.op](rate, clear_at)
        if rule.kind == "trend":
            # Judged against the TrendEngine's latched verdicts, not a
            # sample metric; the engine's own hysteresis composes with
            # this rule's value/clear_value floor on the statistic.
            if self.trend_source is None:
                return False, True
            verdicts = self.trend_source.judge(rule.metric)
            if not verdicts:
                return False, True
            clear_at = rule.value if rule.clear_value is None \
                else rule.clear_value
            breaching = [v for v in verdicts if v.breached
                         and OPS[rule.op](v.value, rule.value)]
            holding = [v for v in verdicts if v.breached
                       and OPS[rule.op](v.value, clear_at)]
            pool = breaching or holding or verdicts
            alert.last_value = max(v.value for v in pool)
            return bool(breaching), not holding
        # absence: no metric, or a counter that made no progress.
        previous = alert._previous
        if not present:
            return True, False
        if previous is None or previous[1] is None:
            return False, True
        stalled = value <= previous[1]
        return stalled, not stalled

    def _publish(self, transition):
        self.transitions.append(transition)
        if self.events is not None:
            self.events.emit(
                EventKind.ALERT,
                rule=transition.rule,
                severity=transition.severity,
                state=transition.state,
                value=transition.value,
            )
        for listener in list(self._listeners):
            listener(transition)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self):
        """Per-rule ``{name: (fired, resolved, state)}`` totals."""
        return {
            name: (alert.fired_count, alert.resolved_count, alert.state)
            for name, alert in sorted(self.alerts.items())
        }

    # ------------------------------------------------------------------
    # durable state (repro.checkpoint/v1)
    # ------------------------------------------------------------------
    def state_dict(self):
        """JSON-able per-rule runtime state plus the transition log.

        Rule *definitions* are not captured here -- they travel in the
        run's monitoring configuration; this is only the mutable state
        machines, so ``load_state(state_dict())`` on an engine built
        from the same rules is the identity.
        """
        return {
            "evaluations": self.evaluations,
            "alerts": {
                name: {
                    "state": alert.state,
                    "breach_streak": alert.breach_streak,
                    "clear_streak": alert.clear_streak,
                    "fired_count": alert.fired_count,
                    "resolved_count": alert.resolved_count,
                    "last_value": alert.last_value,
                    "fired_at_cycle": alert.fired_at_cycle,
                    "previous": (list(alert._previous)
                                 if alert._previous is not None
                                 else None),
                }
                for name, alert in sorted(self.alerts.items())
            },
            "transitions": [transition.to_dict()
                            for transition in self.transitions],
        }

    def load_state(self, payload):
        """Restore :meth:`state_dict` output into this engine.

        The engine must have been built from the same rule set the
        checkpoint was taken under; an unknown or missing rule name is
        a configuration error.
        """
        recorded = set(payload["alerts"])
        mine = set(self.alerts)
        if recorded != mine:
            raise ConfigurationError(
                f"alert state mismatch: recorded rules "
                f"{sorted(recorded)}, engine has {sorted(mine)}"
            )
        self.evaluations = payload["evaluations"]
        for name, record in payload["alerts"].items():
            alert = self.alerts[name]
            alert.state = record["state"]
            alert.breach_streak = record["breach_streak"]
            alert.clear_streak = record["clear_streak"]
            alert.fired_count = record["fired_count"]
            alert.resolved_count = record["resolved_count"]
            alert.last_value = record["last_value"]
            alert.fired_at_cycle = record["fired_at_cycle"]
            alert._previous = (tuple(record["previous"])
                               if record["previous"] is not None
                               else None)
        self.transitions = [
            AlertTransition(record["cycle"], record["rule"],
                            record["severity"], record["state"],
                            record["value"])
            for record in payload.get("transitions", [])
        ]
        return self


# ----------------------------------------------------------------------
# built-in rule set and rule files
# ----------------------------------------------------------------------
def default_rules():
    """The shipped production rule set (see docs/OBSERVABILITY.md)."""
    return [
        AlertRule(
            "ecc-fault-storm", "kernel.ecc_traps", kind="rate",
            op=">", value=50.0, for_samples=2, resolve_after=2,
            severity="critical",
            description="ECC traps above 50 per Mcycle: a fault storm "
                        "(scrub or watch thrash), not isolated pruning",
        ),
        AlertRule(
            "watch-budget-exhaustion", "safemem.leak.skipped_watches",
            kind="rate", op=">", value=0.0, for_samples=1,
            resolve_after=2, severity="warning",
            description="suspects skipped because the ECC watch budget "
                        "(max_watched_suspects / pinning) is exhausted",
        ),
        AlertRule(
            "overhead-slo-breach", "sampler.overhead_fraction",
            kind="threshold", op=">", value=0.05, clear_value=0.03,
            for_samples=2, resolve_after=2, severity="warning",
            description="monitoring work above 5% of CPU cycles "
                        "(production SLO; clears below 3%)",
        ),
        AlertRule(
            "leak-suspect-growth", "safemem.leak.suspects",
            kind="rate", op=">", value=0.0, for_samples=3,
            resolve_after=3, severity="critical",
            description="leak-suspect count growing without bound "
                        "across consecutive samples",
        ),
    ]


def default_trend_rules(detector):
    """Rules installed when trend analytics is on (``--trend``).

    One critical rule per detector, scoped to the ``group:*`` series:
    whole-heap occupancy legitimately grows during warmup on clean
    workloads, but a single allocation site whose live bytes keep
    climbing after the window fills is the leak signature the
    head-to-head experiment scores (claim TREND-pr).
    """
    if detector not in DETECTORS:
        raise ConfigurationError(
            f"unknown trend detector {detector!r} "
            f"(choose from {', '.join(DETECTORS)})"
        )
    return [
        AlertRule(
            f"leak-trend-{detector}", f"{detector}/group:*",
            kind="trend", op=">", value=0.0, for_samples=2,
            resolve_after=2, severity="critical",
            description=f"sustained live-bytes growth on an allocation "
                        f"group ({detector} statistic latched above "
                        f"its threshold)",
        ),
    ]


def load_rules(path):
    """Load a JSON rule file: a list of :meth:`AlertRule.to_dict` specs."""
    try:
        specs = json.loads(open(path).read())
    except (OSError, ValueError) as error:
        raise ConfigurationError(
            f"cannot read alert rules from {path}: {error}"
        ) from None
    if not isinstance(specs, list):
        raise ConfigurationError(
            f"alert rules file {path} must hold a JSON list of rules"
        )
    rules = []
    for index, spec in enumerate(specs):
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"alert rules file {path}: entry #{index} is not a "
                f"JSON object ({type(spec).__name__})"
            )
        rules.append(AlertRule.from_dict(spec))
    return rules


def resolve_rules(spec):
    """CLI helper: ``"default"``, ``"none"``, or a rules-file path."""
    if spec in (None, "none"):
        return []
    if spec == "default":
        return default_rules()
    return load_rules(spec)
