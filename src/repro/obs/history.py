"""Bounded-memory tiered metric history (``repro.history/v1``).

The sampler ring answers "what happened recently" -- 512 samples at a
200k-cycle interval is ~100 Mcycles of lookback.  Long-horizon runs
(billions of cycles, the ROADMAP's production-service target) need the
classic round-robin-database shape instead: keep **raw** points for the
recent past and progressively coarser **aggregates** for the deep past,
so memory stays O(configured capacity) no matter how long the run is.

A :class:`HistoryStore` subscribes to the profiler
(``sampler.add_listener(store.observe)``) and, for each tracked series,
maintains:

- a raw ring of the newest ``raw_capacity`` ``(cycle, value)`` points;
- one bucket ring per retention **tier** ``(bucket_cycles, capacity)``:
  each bucket covers ``[start, start + bucket_cycles)`` (start aligned
  to the bucket width) and records ``min``/``max``/``sum``/``count``
  of the samples that fell in it -- the mean is derived at read time as
  ``sum / count``, never stored, so tier merges stay exact.

Tiers widen geometrically (the default keeps 256 buckets at 1, 16 and
256 Mcycles per bucket -- roughly 0.25, 4 and 65 Gcycles of lookback);
see docs/OBSERVABILITY.md for choosing-a-tier guidance.  Everything is
integer-cycle arithmetic plus sums of sampled values, so documents are
bit-exact across serialize/merge round-trips, and fleet machines'
documents merge associatively in :mod:`repro.obs.merge`: aligned
buckets combine as ``min(min)``/``max(max)``/``sum+sum``/
``count+count``, raw rings concatenate, sort, and keep the newest
points.

``HistoryStore.to_dict`` doubles as the checkpoint payload: loading it
back with :meth:`HistoryStore.from_dict` reproduces the store
bit-exactly (``repro.checkpoint/v1`` embeds it verbatim).
"""

from collections import deque

from repro.common.errors import ConfigurationError

#: schema tag for serialized history documents.
HISTORY_SCHEMA = "repro.history/v1"

#: series tracked by default: whole-heap occupancy, watch-pool
#: occupancy, and the live overhead fraction -- the three numbers a
#: long-horizon capacity review asks about first.
DEFAULT_SERIES = (
    "heap.live_bytes",
    "safemem.watch.armed",
    "sampler.overhead_fraction",
)

#: raw (cycle, value) points retained per series.
DEFAULT_RAW_CAPACITY = 256

#: retention tiers as ``(bucket_cycles, buckets_retained)`` pairs,
#: narrowest first.  1 Mcycle buckets cover the recent ~0.25 Gcycles,
#: 16 Mcycle buckets ~4 Gcycles, 256 Mcycle buckets ~65 Gcycles.
DEFAULT_TIERS = (
    (1_000_000, 256),
    (16_000_000, 256),
    (256_000_000, 256),
)


class _SeriesHistory:
    """Raw ring plus one bucket ring per tier, for one series."""

    __slots__ = ("raw", "tiers")

    def __init__(self, raw_capacity, tiers):
        self.raw = deque(maxlen=raw_capacity)
        #: one deque per tier of mutable ``[start, min, max, sum,
        #: count]`` buckets, oldest first.
        self.tiers = [deque(maxlen=capacity) for _, capacity in tiers]


class HistoryStore:
    """Tiered downsampling store fed by profiler samples.

    Observation-only, exactly like the sampler: recording a point never
    advances the simulated clock, so a run behaves bit-identically with
    history on or off (``benchmarks/bench_history.py`` measures the
    Python-time cost).
    """

    def __init__(self, series=DEFAULT_SERIES, tiers=DEFAULT_TIERS,
                 raw_capacity=DEFAULT_RAW_CAPACITY, metrics=None):
        tiers = tuple((int(width), int(capacity))
                      for width, capacity in tiers)
        if not tiers:
            raise ConfigurationError("history needs at least one tier")
        previous = 0
        for width, capacity in tiers:
            if width <= previous:
                raise ConfigurationError(
                    f"history tiers must widen strictly: {tiers}"
                )
            if capacity < 1:
                raise ConfigurationError(
                    f"history tier capacity must be >= 1: {tiers}"
                )
            previous = width
        if raw_capacity < 1:
            raise ConfigurationError(
                f"history raw_capacity must be >= 1: {raw_capacity}"
            )
        self.series = tuple(series)
        self.tiers = tiers
        self.raw_capacity = int(raw_capacity)
        self.observations = 0
        self.raw_evicted = 0
        self.buckets_evicted = 0
        self._series = {name: _SeriesHistory(self.raw_capacity, tiers)
                        for name in self.series}
        if metrics is not None:
            self._register_probes(metrics)

    # ------------------------------------------------------------------
    # probes (documented in docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def _register_probes(self, metrics):
        metrics.probe("history.observations",
                      lambda: self.observations, kind="counter",
                      description="samples recorded by the history "
                                  "store")
        metrics.probe("history.points", self._raw_points, kind="gauge",
                      description="raw points currently retained")
        metrics.probe("history.buckets", self._bucket_count,
                      kind="gauge",
                      description="aggregate buckets currently "
                                  "retained across tiers")
        metrics.probe("history.evicted",
                      lambda: self.raw_evicted + self.buckets_evicted,
                      kind="counter",
                      description="raw points + buckets aged out of "
                                  "the rings")

    def _raw_points(self):
        return sum(len(history.raw)
                   for history in self._series.values())

    def _bucket_count(self):
        return sum(len(tier)
                   for history in self._series.values()
                   for tier in history.tiers)

    # ------------------------------------------------------------------
    # recording (the sampler listener)
    # ------------------------------------------------------------------
    def observe(self, sample):
        """Record one :class:`~repro.obs.sampler.Sample`."""
        self.observations += 1
        cycle = sample.cycle
        metrics = sample.metrics
        for name in self.series:
            value = metrics.get(name)
            if value is None:
                continue
            history = self._series[name]
            raw = history.raw
            if len(raw) == raw.maxlen:
                self.raw_evicted += 1
            raw.append((cycle, value))
            for index, (width, _capacity) in enumerate(self.tiers):
                bucket_start = cycle - cycle % width
                tier = history.tiers[index]
                if tier and tier[-1][0] == bucket_start:
                    bucket = tier[-1]
                    if value < bucket[1]:
                        bucket[1] = value
                    if value > bucket[2]:
                        bucket[2] = value
                    bucket[3] += value
                    bucket[4] += 1
                else:
                    if len(tier) == tier.maxlen:
                        self.buckets_evicted += 1
                    tier.append([bucket_start, value, value, value, 1])

    # ------------------------------------------------------------------
    # serialization (repro.history/v1; embedded by repro.checkpoint/v1)
    # ------------------------------------------------------------------
    def to_dict(self):
        """Serialize to a ``repro.history/v1`` document."""
        return {
            "schema": HISTORY_SCHEMA,
            "tiers": [list(tier) for tier in self.tiers],
            "raw_capacity": self.raw_capacity,
            "observations": self.observations,
            "raw_evicted": self.raw_evicted,
            "buckets_evicted": self.buckets_evicted,
            "series": {
                name: {
                    "raw": [[cycle, value]
                            for cycle, value in history.raw],
                    "tiers": [[list(bucket) for bucket in tier]
                              for tier in history.tiers],
                }
                for name, history in sorted(self._series.items())
            },
        }

    @classmethod
    def from_dict(cls, document, metrics=None):
        """Rebuild a store from :meth:`to_dict` output, bit-exactly."""
        check_history_document(document)
        tiers = tuple((int(width), int(capacity))
                      for width, capacity in document["tiers"])
        store = cls(series=tuple(document["series"]), tiers=tiers,
                    raw_capacity=document["raw_capacity"],
                    metrics=metrics)
        store.observations = document["observations"]
        store.raw_evicted = document.get("raw_evicted", 0)
        store.buckets_evicted = document.get("buckets_evicted", 0)
        for name, record in document["series"].items():
            history = store._series[name]
            for cycle, value in record["raw"]:
                history.raw.append((cycle, value))
            for index, buckets in enumerate(record["tiers"]):
                for bucket in buckets:
                    history.tiers[index].append(list(bucket))
        return store


def check_history_document(document):
    """Validate the shape of a ``repro.history/v1`` dict; returns it."""
    if (not isinstance(document, dict)
            or document.get("schema") != HISTORY_SCHEMA):
        found = (document.get("schema") if isinstance(document, dict)
                 else type(document).__name__)
        raise ConfigurationError(
            f"not a {HISTORY_SCHEMA} document: {found!r}"
        )
    for key in ("tiers", "raw_capacity", "series"):
        if key not in document:
            raise ConfigurationError(
                f"{HISTORY_SCHEMA} document is missing {key!r}"
            )
    return document


def merge_history_documents(documents):
    """Merge ``repro.history/v1`` documents from fleet machines.

    All inputs must share the tier layout and raw capacity (they came
    from the same fleet configuration).  Aligned buckets combine
    exactly -- ``min``/``max``/``sum``/``count`` -- and raw rings
    concatenate, sort by cycle, and keep the newest points, so the
    merge is associative and order-independent.
    """
    documents = list(documents)
    if not documents:
        raise ConfigurationError("no history documents to merge")
    for document in documents:
        check_history_document(document)
    first = documents[0]
    tiers = [list(tier) for tier in first["tiers"]]
    raw_capacity = first["raw_capacity"]
    for document in documents[1:]:
        if ([list(tier) for tier in document["tiers"]] != tiers
                or document["raw_capacity"] != raw_capacity):
            raise ConfigurationError(
                "history documents disagree on tier layout; "
                "refusing to merge"
            )
    names = sorted({name for document in documents
                    for name in document["series"]})
    series = {}
    for name in names:
        raw = []
        merged_tiers = [{} for _ in tiers]
        for document in documents:
            record = document["series"].get(name)
            if record is None:
                continue
            raw.extend((cycle, value)
                       for cycle, value in record["raw"])
            for index, buckets in enumerate(record["tiers"]):
                merged = merged_tiers[index]
                for start, mn, mx, total, count in buckets:
                    bucket = merged.get(start)
                    if bucket is None:
                        merged[start] = [start, mn, mx, total, count]
                    else:
                        if mn < bucket[1]:
                            bucket[1] = mn
                        if mx > bucket[2]:
                            bucket[2] = mx
                        bucket[3] += total
                        bucket[4] += count
        raw.sort()
        series[name] = {
            "raw": [[cycle, value]
                    for cycle, value in raw[-raw_capacity:]],
            "tiers": [
                [merged[start] for start in sorted(merged)][-capacity:]
                for merged, (_width, capacity)
                in zip(merged_tiers, tiers)
            ],
        }
    return {
        "schema": HISTORY_SCHEMA,
        "tiers": tiers,
        "raw_capacity": raw_capacity,
        "observations": sum(d["observations"] for d in documents),
        "raw_evicted": sum(d.get("raw_evicted", 0) for d in documents),
        "buckets_evicted": sum(d.get("buckets_evicted", 0)
                               for d in documents),
        "series": series,
    }


# ----------------------------------------------------------------------
# rendering (the `repro history` view)
# ----------------------------------------------------------------------
def render_history(document, series=None, buckets=8):
    """Human summary of a history document.

    ``series`` narrows to one series name; ``buckets`` caps the
    newest buckets shown per tier.
    """
    check_history_document(document)
    names = sorted(document["series"])
    if series is not None:
        if series not in document["series"]:
            raise ConfigurationError(
                f"history document has no series {series!r} "
                f"(has: {', '.join(names)})"
            )
        names = [series]
    tiers = document["tiers"]
    lines = [
        f"history document ({HISTORY_SCHEMA})",
        f"  observations {document['observations']:,} | "
        f"raw capacity {document['raw_capacity']} | "
        f"tiers " + ", ".join(
            f"{width:,}c x{capacity}" for width, capacity in tiers),
    ]
    for name in names:
        record = document["series"][name]
        raw = record["raw"]
        lines.append(f"series {name}: {len(raw)} raw points")
        if raw:
            first_cycle, _ = raw[0]
            last_cycle, last_value = raw[-1]
            lines.append(
                f"  raw [{first_cycle:,} .. {last_cycle:,}] "
                f"latest {last_value:g}"
            )
        for index, (width, _capacity) in enumerate(tiers):
            tier = record["tiers"][index]
            lines.append(
                f"  tier {index} ({width:,} cycles/bucket): "
                f"{len(tier)} buckets"
            )
            for start, mn, mx, total, count in tier[-buckets:]:
                mean = total / count
                lines.append(
                    f"    @{start:>16,}  min {mn:>12g}  "
                    f"mean {mean:>12g}  max {mx:>12g}  n={count}"
                )
    return "\n".join(lines)
