"""Exporters: one stable JSON schema and one human-readable table.

Everything that leaves the machine -- ``repro stats``, the
``--emit-metrics`` flag, benchmark result files -- goes through
:func:`snapshot_document`, so downstream consumers parse exactly one
format.  The schema is versioned; additive changes keep the same
version, renames/removals bump it.

Schema ``repro.metrics/v1``::

    {
      "schema": "repro.metrics/v1",
      "generated": {"cycle": <int>, "since_cycle": <int|null>},
      "meta": {...caller-supplied context...},
      "metrics": {"<name>": <number>, ...},
      "kinds": {"<name>": "counter"|"gauge", ...},
      "spans": [{"name": ..., "path": ..., "depth": ...,
                 "start_cycle": ..., "end_cycle": ...,
                 "duration_cycles": ..., "attrs": {...}}, ...]
    }

``metrics`` values come from a :class:`~repro.obs.metrics.Snapshot`
(absolute or delta); ``kinds`` says which values accumulate.  ``meta``
and ``spans`` are optional and omitted when empty.
"""

import json

from repro.common.errors import ConfigurationError

SCHEMA = "repro.metrics/v1"


def snapshot_document(snapshot, spans=None, meta=None):
    """Render a snapshot (and optional spans) as the schema dict."""
    document = {
        "schema": SCHEMA,
        "generated": {
            "cycle": snapshot.cycle,
            "since_cycle": snapshot.since_cycle,
        },
        "metrics": {name: snapshot.values[name]
                    for name in sorted(snapshot.values)},
        "kinds": {name: snapshot.kinds[name]
                  for name in sorted(snapshot.kinds)},
    }
    if meta:
        document["meta"] = dict(meta)
    if spans:
        document["spans"] = [
            span if isinstance(span, dict) else span.to_dict()
            for span in spans
        ]
    return document


def snapshot_from_document(document):
    """Rebuild a :class:`~repro.obs.metrics.Snapshot` from a document.

    Inverse of :func:`snapshot_document` (spans and meta are not part
    of a snapshot and are dropped).  Lets every snapshot consumer --
    the human table, the diff engine -- work on persisted documents,
    including the one embedded in a ``repro.dump/v1`` bundle.
    """
    from repro.obs.metrics import Snapshot
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"not a {SCHEMA} document: "
            f"{document.get('schema') if isinstance(document, dict) else type(document).__name__!r}"
        )
    generated = document.get("generated", {})
    return Snapshot(
        generated.get("cycle", 0),
        dict(document.get("metrics", {})),
        dict(document.get("kinds", {})),
        since_cycle=generated.get("since_cycle"),
    )


def write_metrics_json(path, snapshot, spans=None, meta=None):
    """Write the schema document to ``path``; returns the document."""
    document = snapshot_document(snapshot, spans=spans, meta=meta)
    with open(path, "w") as stream:
        json.dump(document, stream, indent=2, sort_keys=False)
        stream.write("\n")
    return document


def render_metrics_table(snapshot, title="machine metrics",
                         prefix=None):
    """Human-readable two-column table of a snapshot.

    ``prefix`` filters to one component's namespace (e.g. ``"mmu."``).
    """
    values = snapshot.values if prefix is None else \
        snapshot.filtered(prefix)
    rows = []
    for name in sorted(values):
        value = values[name]
        if value is None:
            # Null histogram gauges: no observations in this window.
            rendered = "-"
        elif isinstance(value, float):
            rendered = f"{value:,.4f}"
        else:
            rendered = f"{value:,}"
        rows.append((name, rendered, snapshot.kinds.get(name, "")))
    width = max((len(r[0]) for r in rows), default=10)
    vwidth = max((len(r[1]) for r in rows), default=5)
    span = (f"cycles {snapshot.since_cycle:,} -> {snapshot.cycle:,}"
            if snapshot.since_cycle is not None
            else f"at cycle {snapshot.cycle:,}")
    lines = [f"{title} ({span})", "-" * (width + vwidth + 12)]
    for name, rendered, kind in rows:
        lines.append(f"{name:<{width}}  {rendered:>{vwidth}}  {kind}")
    return "\n".join(lines)


def render_span_tree(spans, limit=None):
    """Indented rendering of finished spans (flight-recorder style)."""
    if limit is not None:
        spans = spans[-limit:]
    lines = []
    for span in spans:
        entry = span.to_dict() if hasattr(span, "to_dict") else span
        indent = "  " * entry["depth"]
        attrs = "".join(f" {k}={v}" for k, v in entry["attrs"].items())
        lines.append(
            f"[{entry['start_cycle']:>12}] {indent}{entry['name']} "
            f"({entry['duration_cycles']} cycles){attrs}"
        )
    return "\n".join(lines)
