"""Cross-process telemetry merge for fleet runs.

One simulated machine owns one :class:`~repro.obs.metrics.MetricsRegistry`.
A fleet run (``repro fleet``, ``repro validate --jobs N``) boots many
machines across many worker processes, so their telemetry has to cross a
process boundary and then collapse into one snapshot.  The unit of
transfer is a **dump** -- a plain picklable/JSON-able dict produced by
:func:`dump_registry` that, unlike a flattened
:class:`~repro.obs.metrics.Snapshot`, keeps every raw histogram
observation.  That is the load-bearing difference: merged percentiles
must be recomputed from the *union* of observations, never averaged
from per-worker percentiles (the average of two medians is not the
median of the merged data).

Merge semantics (:func:`merge_dumps`):

- **counters** sum across machines -- the fleet total;
- **gauges** sum as well: for fleet aggregation a gauge like
  ``heap.live_bytes`` or ``kernel.pinned_pages`` reads as "across the
  whole fleet" (per-machine values remain available in the individual
  dumps);
- **histograms** concatenate their observations, then flatten through
  the same :func:`~repro.obs.metrics.flatten_histogram` helper the
  registry snapshot uses, so ``.count``/``.sum`` are exact totals and
  ``.min``/``.max``/``.p50``/``.p90``/``.p99`` are computed over the
  merged distribution;
- the merged snapshot's ``cycle`` is the **max** of the input cycles
  (the fleet's longest-running machine).

The result is an ordinary :class:`Snapshot`, so every existing exporter
(``repro.metrics/v1`` documents, the human table) works on merged fleet
telemetry unchanged.

Tiered history documents (``repro.history/v1``) cross the same process
boundary; :func:`~repro.obs.history.merge_history_documents` is
re-exported here so fleet code has one merge module to import.
"""

from repro.common.errors import ConfigurationError
from repro.obs.history import merge_history_documents  # noqa: F401
from repro.obs.metrics import Histogram, Snapshot, flatten_histogram

#: schema tag stamped on dumps so foreign dicts are rejected loudly.
DUMP_SCHEMA = "repro.metrics-dump/v1"


def dump_registry(registry):
    """Serialize a registry to a picklable dump (raw histograms kept).

    Probes are sampled at dump time, exactly as a snapshot would.
    """
    scalars = {}
    histograms = {}
    for name, metric in registry.instruments().items():
        if isinstance(metric, Histogram):
            histograms[name] = metric.values
        else:
            scalars[name] = {"kind": metric.kind, "value": metric.value}
    return {
        "schema": DUMP_SCHEMA,
        "cycle": registry.current_cycle,
        "scalars": scalars,
        "histograms": histograms,
    }


def _check_dump(dump):
    if not isinstance(dump, dict) or dump.get("schema") != DUMP_SCHEMA:
        raise ConfigurationError(
            f"not a {DUMP_SCHEMA} dump: {type(dump).__name__}"
        )
    return dump


def merge_dumps(dumps):
    """Collapse registry dumps into one fleet-wide :class:`Snapshot`.

    Deterministic: the output depends only on the multiset of inputs
    (values are summed / concatenated-then-sorted), not on their order.
    """
    values = {}
    kinds = {}
    observations = {}
    cycle = 0
    for dump in dumps:
        _check_dump(dump)
        cycle = max(cycle, dump.get("cycle", 0))
        for name, entry in dump["scalars"].items():
            kind = entry["kind"]
            if kinds.setdefault(name, kind) != kind:
                raise ConfigurationError(
                    f"metric {name!r} is {kinds[name]} in one worker "
                    f"and {kind} in another; refusing to merge"
                )
            values[name] = values.get(name, 0) + entry["value"]
        for name, series in dump["histograms"].items():
            observations.setdefault(name, []).extend(series)
    for name in sorted(observations):
        # Empty and single-observation unions are legitimate: a worker
        # registers a histogram (so the name must survive the merge
        # with its full flattened key set) but may observe nothing, or
        # exactly one value.  Pre-sorting keeps the percentile pass
        # from re-sorting inside flatten_histogram; an empty union
        # keeps zero count/sum counters while its min/max/percentile
        # gauges flatten to None (no observations -> no statistics).
        merged = Histogram(name)
        for value in sorted(observations[name]):
            merged.observe(value)
        flatten_histogram(merged, values, kinds)
    return Snapshot(cycle, values, kinds)


def merge_registries(registries):
    """In-process convenience: dump then merge live registries."""
    return merge_dumps([dump_registry(r) for r in registries])
