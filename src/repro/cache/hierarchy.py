"""Two-level cache hierarchy (L1 + L2).

The paper's machine (a Pentium 4) filters memory accesses through two
cache levels; what matters for SafeMem is that ``WatchMemory``'s flush
must evict the watched line from *every* level or the watchpoint never
fires.  The hierarchy keeps the same interface as a single
:class:`~repro.cache.cache.Cache`, so the machine can use either.

Model: non-inclusive write-back levels.  L1 misses fill from L2; L2
misses fill from the controller.  Dirty L1 victims write back into L2;
dirty L2 victims write back to memory.  ``flush_line`` walks both
levels top-down.
"""

from repro.common.constants import line_base
from repro.cache.cache import Cache


class _LevelBackend:
    """Adapts a Cache to act as the memory side of the level above it.

    The upper level calls ``read_line``/``write_line`` (the controller
    interface); we translate those into lower-level load/store of whole
    lines.
    """

    def __init__(self, lower):
        self.lower = lower

    def read_line(self, address):
        from repro.common.constants import CACHE_LINE_SIZE
        return self.lower.load(address, CACHE_LINE_SIZE)

    def write_line(self, address, data):
        self.lower.store(address, data)


class CacheHierarchy:
    """L1 over L2 over the ECC controller, presenting the Cache API."""

    def __init__(self, controller, l1_size=16 * 1024, l1_ways=4,
                 l2_size=256 * 1024, l2_ways=8, clock=None,
                 cost_model=None, metrics=None):
        # Only L1 charges the per-access hit cost; L2 charges its own
        # miss penalty through the shared cost hooks.
        self.l2 = Cache(controller, size=l2_size, ways=l2_ways,
                        clock=clock, cost_model=cost_model,
                        metrics=metrics, level="l2")
        self.l1 = Cache(_LevelBackend(self.l2), size=l1_size,
                        ways=l1_ways, clock=clock, cost_model=cost_model,
                        metrics=metrics, level="l1")
        self.controller = controller

    def register_metrics(self, metrics):
        """Publish both levels' ``cache.l1.*`` / ``cache.l2.*`` probes."""
        self.l1.register_metrics(metrics)
        self.l2.register_metrics(metrics)

    # ------------------------------------------------------------------
    # Cache-compatible interface
    # ------------------------------------------------------------------
    def load(self, paddr, size):
        return self.l1.load(paddr, size)

    def store(self, paddr, data):
        self.l1.store(paddr, data)

    def load_span(self, paddr, size):
        """Span read through L1 (L1 misses fill from L2 as usual)."""
        return self.l1.load_span(paddr, size)

    def store_span(self, paddr, data):
        """Span write through L1, write-allocate like :meth:`store`."""
        self.l1.store_span(paddr, data)

    def fast_read(self, paddr, size):
        """Short-circuit read: L1-resident lines only (else ``None``)."""
        return self.l1.fast_read(paddr, size)

    def fast_write(self, paddr, data):
        """Short-circuit write: L1-resident lines only (else ``False``)."""
        return self.l1.fast_write(paddr, data)

    def flush_line(self, paddr):
        """Evict from L1 (into L2), then from L2 (into memory)."""
        self.l1.flush_line(paddr)
        self.l2.flush_line(paddr)

    def flush_all(self):
        self.l1.flush_all()
        self.l2.flush_all()

    def contains(self, paddr):
        return self.l1.contains(paddr) or self.l2.contains(paddr)

    def invalidate_line(self, paddr):
        self.l1.invalidate_line(paddr)
        self.l2.invalidate_line(paddr)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def hits(self):
        return self.l1.hits + self.l2.hits

    @property
    def misses(self):
        # Hierarchy misses are the ones that reached memory.
        return self.l2.misses

    @property
    def writebacks(self):
        return self.l2.writebacks

    @property
    def flushes(self):
        return self.l1.flushes

    @property
    def evictions(self):
        return self.l1.evictions + self.l2.evictions

    def level_stats(self):
        return {
            "l1_hits": self.l1.hits,
            "l1_misses": self.l1.misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "l2_writebacks": self.l2.writebacks,
        }


def is_line_resident(hierarchy, paddr):
    """True when the line holding ``paddr`` is in any level."""
    return hierarchy.contains(line_base(paddr))
