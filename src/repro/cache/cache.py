"""Set-associative write-back CPU cache.

The cache matters to SafeMem for one reason (Section 2.2.2, "Dealing
with Cache Effects"): ECC checks happen only on *memory* reads, so a
watched line that is still cached would never fault.  ``WatchMemory``
therefore flushes the watched line; and because a write miss performs a
line fill (write-allocate), even the first *write* to a watched line
reaches DRAM and trips the watchpoint.

This model reproduces those mechanics: LRU set-associative lookup,
write-back of dirty victims, explicit ``clflush``, and line fills that
go through the ECC controller (and may therefore raise ECC faults).
"""

from repro.common.constants import CACHE_LINE_SIZE, line_base
from repro.common.errors import ConfigurationError
from repro.obs.metrics import attr_reader as _attr_reader


class _Line:
    """One resident cache line."""

    __slots__ = ("tag", "data", "dirty", "stamp")

    def __init__(self, tag, data, stamp):
        self.tag = tag
        self.data = bytearray(data)
        self.dirty = False
        self.stamp = stamp


class Cache:
    """Physically-indexed, physically-tagged write-back cache."""

    def __init__(self, controller, size=64 * 1024, ways=8,
                 clock=None, cost_model=None, metrics=None,
                 level="l1"):
        if size % (ways * CACHE_LINE_SIZE):
            raise ConfigurationError(
                f"cache size {size} not divisible into {ways}-way sets of "
                f"{CACHE_LINE_SIZE}-byte lines"
            )
        self.controller = controller
        self.ways = ways
        self.num_sets = size // (ways * CACHE_LINE_SIZE)
        self._sets = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.clock = clock
        self.cost_model = cost_model
        self.level = level
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.flushes = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``cache.<level>.*`` probes into a metrics registry."""
        prefix = f"cache.{self.level}"
        for name, attr in (
            (f"{prefix}.hit", "hits"),
            (f"{prefix}.miss", "misses"),
            (f"{prefix}.eviction", "evictions"),
            (f"{prefix}.writeback", "writebacks"),
            (f"{prefix}.flush", "flushes"),
        ):
            metrics.probe(name, _attr_reader(self, attr),
                          kind="counter")
        metrics.probe(
            f"{prefix}.resident_lines",
            lambda: sum(len(s) for s in self._sets),
            kind="gauge",
        )

    # ------------------------------------------------------------------
    # program-visible access path
    # ------------------------------------------------------------------
    def load(self, paddr, size):
        """Read ``size`` bytes at physical address ``paddr``.

        Splits accesses that straddle cache lines.  A miss fills the
        line through the ECC controller; an armed watchpoint on that
        line raises :class:`UncorrectableEccError` out of this call.
        """
        out = bytearray()
        for chunk_addr, chunk_size in _chunks(paddr, size):
            line = self._access_line(chunk_addr, for_write=False)
            offset = chunk_addr - line_base(chunk_addr)
            out += line.data[offset:offset + chunk_size]
        return bytes(out)

    def store(self, paddr, data):
        """Write bytes at ``paddr`` (write-allocate: misses fill first)."""
        position = 0
        for chunk_addr, chunk_size in _chunks(paddr, len(data)):
            line = self._access_line(chunk_addr, for_write=True)
            offset = chunk_addr - line_base(chunk_addr)
            line.data[offset:offset + chunk_size] = (
                data[position:position + chunk_size]
            )
            line.dirty = True
            position += chunk_size

    # ------------------------------------------------------------------
    # short-circuit access path (machine fast path)
    # ------------------------------------------------------------------
    def fast_read(self, paddr, size):
        """Serve a single-line read from a resident line, else ``None``.

        The caller guarantees ``[paddr, paddr+size)`` stays inside one
        cache line.  Bookkeeping (hit count, LRU stamp, cycle charge)
        matches :meth:`load` exactly, so taking this path never changes
        the simulated statistics or timings -- only the Python overhead.
        """
        base = paddr - (paddr % CACHE_LINE_SIZE)
        line = self._sets[
            (base // CACHE_LINE_SIZE) % self.num_sets
        ].get(base)
        if line is None:
            return None
        self.hits += 1
        self._tick += 1
        line.stamp = self._tick
        self._charge_hit()
        offset = paddr - base
        return bytes(line.data[offset:offset + size])

    def fast_write(self, paddr, data):
        """Write into a resident line; ``False`` when not resident.

        Single-line only, same bookkeeping contract as :meth:`fast_read`.
        """
        base = paddr - (paddr % CACHE_LINE_SIZE)
        line = self._sets[
            (base // CACHE_LINE_SIZE) % self.num_sets
        ].get(base)
        if line is None:
            return False
        self.hits += 1
        self._tick += 1
        line.stamp = self._tick
        self._charge_hit()
        offset = paddr - base
        line.data[offset:offset + len(data)] = data
        line.dirty = True
        return True

    # ------------------------------------------------------------------
    # span access path (machine batch engine)
    # ------------------------------------------------------------------
    def load_span(self, paddr, size):
        """Read ``size`` bytes, amortizing per-line Python overhead.

        Simulation-equivalent to :meth:`load`: identical hit/miss/LRU
        bookkeeping and cycle charges, applied in the same order.  The
        only liberty taken is batching the ``cache_hit`` charges of
        consecutive hits into one ``clock.tick`` -- legal while no
        timers are armed (checked up front and after every miss);
        otherwise each hit charges inline exactly like :meth:`load`.
        Any miss flushes the batched state first and goes through
        :meth:`_access_line`, so fills, evictions, write-backs, and
        ECC faults behave identically to the scalar path.
        """
        if size < 0:
            raise ConfigurationError(f"negative access size: {size}")
        sets = self._sets
        num_sets = self.num_sets
        clock = self.clock
        charging = clock is not None and self.cost_model is not None
        hit_cost = self.cost_model.cache_hit if charging else 0
        defer = charging and clock.timer_count == 0
        tick = self._tick
        hits = 0
        pending = 0
        out = bytearray()
        cursor = paddr
        remaining = size
        while remaining > 0:
            base = cursor - (cursor % CACHE_LINE_SIZE)
            take = min(remaining, base + CACHE_LINE_SIZE - cursor)
            line = sets[(base // CACHE_LINE_SIZE) % num_sets].get(base)
            if line is None:
                # Miss: restore exact cache/clock state, then take the
                # one true fill path (an armed line raises out of it
                # with all accumulated state already applied).
                self._tick = tick
                self.hits += hits
                hits = 0
                if pending:
                    clock.tick(pending)
                    pending = 0
                line = self._access_line(base, for_write=False)
                tick = self._tick
                defer = charging and clock.timer_count == 0
            else:
                tick += 1
                hits += 1
                line.stamp = tick
                if defer:
                    pending += hit_cost
                elif charging:
                    clock.tick(hit_cost)
            offset = cursor - base
            out += line.data[offset:offset + take]
            cursor += take
            remaining -= take
        self._tick = tick
        self.hits += hits
        if pending:
            clock.tick(pending)
        return bytes(out)

    def store_span(self, paddr, data):
        """Write ``data`` at ``paddr``; span twin of :meth:`store`.

        Same equivalence contract as :meth:`load_span` (write-allocate
        misses go through :meth:`_access_line` with flushed state).
        ``data`` may be any buffer, including a memoryview.
        """
        sets = self._sets
        num_sets = self.num_sets
        clock = self.clock
        charging = clock is not None and self.cost_model is not None
        hit_cost = self.cost_model.cache_hit if charging else 0
        defer = charging and clock.timer_count == 0
        tick = self._tick
        hits = 0
        pending = 0
        position = 0
        cursor = paddr
        remaining = len(data)
        while remaining > 0:
            base = cursor - (cursor % CACHE_LINE_SIZE)
            take = min(remaining, base + CACHE_LINE_SIZE - cursor)
            line = sets[(base // CACHE_LINE_SIZE) % num_sets].get(base)
            if line is None:
                self._tick = tick
                self.hits += hits
                hits = 0
                if pending:
                    clock.tick(pending)
                    pending = 0
                line = self._access_line(base, for_write=True)
                tick = self._tick
                defer = charging and clock.timer_count == 0
            else:
                tick += 1
                hits += 1
                line.stamp = tick
                if defer:
                    pending += hit_cost
                elif charging:
                    clock.tick(hit_cost)
            offset = cursor - base
            line.data[offset:offset + take] = data[position:position + take]
            line.dirty = True
            position += take
            cursor += take
            remaining -= take
        self._tick = tick
        self.hits += hits
        if pending:
            clock.tick(pending)

    # ------------------------------------------------------------------
    # maintenance operations
    # ------------------------------------------------------------------
    def flush_line(self, paddr):
        """clflush: write back if dirty, then invalidate.

        Used by WatchMemory so the next access must go to DRAM.
        """
        base = line_base(paddr)
        index = self._set_index(base)
        line = self._sets[index].pop(base, None)
        self.flushes += 1
        if line is not None and line.dirty:
            self.controller.write_line(base, bytes(line.data))
            self.writebacks += 1

    def flush_all(self):
        """Write back and invalidate every resident line."""
        for index, cache_set in enumerate(self._sets):
            for base, line in list(cache_set.items()):
                if line.dirty:
                    self.controller.write_line(base, bytes(line.data))
                    self.writebacks += 1
            cache_set.clear()

    def contains(self, paddr):
        """True when the line holding ``paddr`` is resident."""
        base = line_base(paddr)
        return base in self._sets[self._set_index(base)]

    def invalidate_line(self, paddr):
        """Drop a line without writing it back (test helper)."""
        base = line_base(paddr)
        self._sets[self._set_index(base)].pop(base, None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _access_line(self, paddr, for_write):
        base = line_base(paddr)
        index = self._set_index(base)
        cache_set = self._sets[index]
        self._tick += 1
        line = cache_set.get(base)
        if line is not None:
            self.hits += 1
            self._charge_hit()
            line.stamp = self._tick
            return line

        self.misses += 1
        self._charge_hit()
        self._charge_miss()
        if len(cache_set) >= self.ways:
            self._evict_lru(cache_set)
        # The fill goes through the controller: this is where an armed
        # watchpoint fires.  If it raises, no line is installed.
        data = self.controller.read_line(base)
        line = _Line(base, data, self._tick)
        cache_set[base] = line
        return line

    def _evict_lru(self, cache_set):
        victim_base = min(cache_set, key=lambda b: cache_set[b].stamp)
        victim = cache_set.pop(victim_base)
        self.evictions += 1
        if victim.dirty:
            self.controller.write_line(victim_base, bytes(victim.data))
            self.writebacks += 1
            self._charge_writeback()

    def _set_index(self, line_address):
        return (line_address // CACHE_LINE_SIZE) % self.num_sets

    def _charge_hit(self):
        if self.clock is not None and self.cost_model is not None:
            self.clock.tick(self.cost_model.cache_hit)

    def _charge_miss(self):
        if self.clock is not None and self.cost_model is not None:
            self.clock.tick(self.cost_model.cache_miss)

    def _charge_writeback(self):
        if self.clock is not None and self.cost_model is not None:
            self.clock.tick(self.cost_model.writeback)


def _chunks(address, size):
    """Split ``[address, address+size)`` at cache-line boundaries."""
    if size < 0:
        raise ConfigurationError(f"negative access size: {size}")
    remaining = size
    cursor = address
    while remaining > 0:
        line_end = line_base(cursor) + CACHE_LINE_SIZE
        chunk = min(remaining, line_end - cursor)
        yield cursor, chunk
        cursor += chunk
        remaining -= chunk
