"""CPU cache models (single level and two-level hierarchy)."""

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy

__all__ = ["Cache", "CacheHierarchy"]
