"""Content digests for the experiment result cache.

The fleet scheduler caches completed experiment results keyed by
``(job config, code digest)``: if neither the job's parameters nor any
simulator source file changed, re-running ``repro validate`` reuses the
cached rows instead of re-simulating.  The code digest covers every
``*.py`` file under the installed ``repro`` package, so *any* source
edit -- even a comment -- invalidates the cache; false invalidation is
cheap, a stale hit is not.
"""

import hashlib
import pathlib

_PACKAGE_DIGEST = None


def file_digest(path):
    """Hex SHA-256 of one file's bytes."""
    return hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()


def tree_digest(root, pattern="**/*.py"):
    """Hex SHA-256 over ``pattern`` matches under ``root``.

    Deterministic: files enter the hash in sorted relative-path order,
    each prefixed by its path, so renames and moves change the digest.
    """
    root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.glob(pattern)):
        if not path.is_file():
            continue
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def package_digest(refresh=False):
    """Digest of the live ``repro`` package source (memoized).

    One process sees one consistent code state, so the digest is
    computed once per process; ``refresh=True`` recomputes (tests).
    """
    global _PACKAGE_DIGEST
    if _PACKAGE_DIGEST is None or refresh:
        import repro
        package_root = pathlib.Path(repro.__file__).resolve().parent
        _PACKAGE_DIGEST = tree_digest(package_root)
    return _PACKAGE_DIGEST
