"""Cycle-cost model for the simulated machine and the monitoring tools.

Every interesting operation in the simulation charges cycles to the
program's :class:`~repro.common.clock.VirtualClock`.  Overhead numbers
(Table 3 of the paper) then fall out of *operation counts*, which is the
property the paper's evaluation actually depends on: SafeMem pays
per-allocation costs while Purify pays per-memory-access costs plus
periodic mark-and-sweep passes.

The default values are calibrated so that the three system calls land on
the paper's Table 2 microbenchmark numbers (WatchMemory 2.0 us,
DisableWatchMemory 1.5 us, mprotect 1.02 us) from their *components*
(trap, pin, per-line scramble/flush), not by hard-coding totals.
"""

from dataclasses import dataclass

from repro.common.constants import CYCLES_PER_MICROSECOND


@dataclass
class CostModel:
    """Cycle costs charged by the simulated machine.

    All fields are plain cycle counts so tests can construct cheap or
    degenerate models (for example, zero-cost models for functional
    tests that only care about behaviour).
    """

    # -- CPU core ------------------------------------------------------
    #: one simulated ALU instruction (Program.compute charges this each).
    instruction: int = 1

    # -- memory hierarchy ----------------------------------------------
    #: load/store that hits in the cache.
    cache_hit: int = 2
    #: additional penalty for a miss serviced from DRAM (incl. ECC check).
    cache_miss: int = 100
    #: write-back of a dirty victim line.
    writeback: int = 30
    #: explicit cache-line flush instruction (clflush).
    flush_line: int = 100

    # -- kernel entry/exit ---------------------------------------------
    #: user->kernel->user trap overhead common to every syscall.
    syscall_trap: int = 900
    #: pinning or unpinning one page in the VM system.
    pin_page: int = 500
    #: updating one page-table entry's protection bits + TLB shootdown.
    protect_page: int = 1550
    #: delivering an interrupt/fault to a user-level handler and back.
    fault_delivery: int = 2400

    # -- ECC controller manipulation ------------------------------------
    #: disable-ECC / enable-ECC window incl. bus lock per WatchMemory.
    #: Dominated by the serialising chipset register writes, so it is a
    #: per-call cost; the per-line work (scramble + flush) is cheap.
    ecc_toggle: int = 3200
    #: scrambling the groups of one cache line (ECC disabled).
    scramble_line: int = 100
    #: fixed part of DisableWatchMemory beyond trap + unpin (validating
    #: the region, cache maintenance setup).
    restore_fixed: int = 2100
    #: restoring one line's original data with ECC enabled (normal write
    #: path that recomputes and stores a fresh code).
    restore_line: int = 100
    #: scrub one cache line during a scrub pass.
    scrub_line: int = 20

    # -- allocator -------------------------------------------------------
    #: bookkeeping of one malloc/free in the simulated allocator.
    heap_op: int = 120

    # -- Purify-style instrumentation ------------------------------------
    #: shadow-memory lookup + status check on every load/store.  Purify
    #: instruments object code, so even cache hits pay this.
    purify_access_check: int = 30
    #: additional per-byte cost of an access check: the 2-bit status of
    #: every byte touched must be inspected (and, on stores, updated).
    #: Bulk copies become instrumented byte loops, which is what makes
    #: Purify catastrophic on copy-heavy servers (the paper's 49.3x).
    purify_access_check_per_byte: int = 20
    #: maintaining 2 status bits at allocation/free, per byte touched.
    purify_shadow_update_per_byte: int = 1
    #: mark-and-sweep: visiting one heap word during the sweep.
    purify_sweep_per_word: int = 6
    #: base cost of starting a mark-and-sweep pass.
    purify_sweep_base: int = 40_000
    #: dilation multiplier on plain computation from link-time
    #: instrumentation (function wrapping, register pressure).  Expressed
    #: in percent added to every ``instruction`` cycle.  380% -> 4.8x,
    #: the paper's observed Purify floor.
    purify_compute_dilation_pct: int = 380

    # -- SafeMem bookkeeping ----------------------------------------------
    #: group-table update at one malloc/free (hash + list splice).
    safemem_alloc_update: int = 90
    #: one step of the periodic outlier scan (per group examined).
    safemem_scan_per_group: int = 25
    #: recomputing the scramble signature in the user-level fault handler.
    safemem_handler_check: int = 300

    # ------------------------------------------------------------------
    # component sums for the paper's Table 2 operations
    # ------------------------------------------------------------------
    def watch_memory_cost(self, line_count):
        """Cost of the WatchMemory(addr, size) syscall.

        trap + pin + ECC disable/enable window + per-line scramble and
        flush.  With the default model and one line this is ~2.0 us.
        """
        return (
            self.syscall_trap
            + self.pin_page
            + self.ecc_toggle
            + line_count * (self.scramble_line + self.flush_line)
        )

    def disable_watch_cost(self, line_count):
        """Cost of DisableWatchMemory(addr): trap + unpin + restore write.

        With the default model and one line this is ~1.5 us.
        """
        return (
            self.syscall_trap
            + self.pin_page
            + self.restore_fixed
            + line_count * self.restore_line
        )

    def mprotect_cost(self, page_count):
        """Cost of mprotect over ``page_count`` pages (~1.02 us for one)."""
        return self.syscall_trap + page_count * self.protect_page

    def purify_instruction_cost(self):
        """Per-instruction cost under Purify's link-time instrumentation.

        Returned as a float (4.8 with the defaults); Program.compute
        rounds the total, so fractional dilation is preserved over long
        computations.
        """
        return self.instruction * (100 + self.purify_compute_dilation_pct) \
            / 100.0


def default_cost_model():
    """Return the calibrated default :class:`CostModel`."""
    return CostModel()


def zero_cost_model():
    """Return a model where everything is free.

    Useful in unit tests that assert on behaviour (faults raised, bugs
    detected) without caring about timing.
    """
    fields = {
        name: 0
        for name, value in CostModel().__dict__.items()
        if isinstance(value, int)
    }
    return CostModel(**fields)


def microseconds(cycles):
    """Convert cycles to microseconds (float) for reporting."""
    return cycles / CYCLES_PER_MICROSECOND
