"""Structured event log shared by the machine and the monitoring tools.

Components append :class:`Event` records to a single :class:`EventLog`
owned by the machine.  Experiments and tests query the log instead of
scraping stdout, which keeps the harness deterministic.
"""

from dataclasses import dataclass, field
from enum import Enum


class EventKind(Enum):
    """Categories of events the simulation records."""

    ALLOC = "alloc"
    FREE = "free"
    ECC_FAULT = "ecc_fault"
    ECC_CORRECTED = "ecc_corrected"
    WATCH = "watch"
    UNWATCH = "unwatch"
    SCRUB = "scrub"
    PAGE_SWAP_OUT = "page_swap_out"
    PAGE_SWAP_IN = "page_swap_in"
    PROTECTION_FAULT = "protection_fault"
    LEAK_SUSPECT = "leak_suspect"
    LEAK_REPORT = "leak_report"
    LEAK_PRUNED = "leak_pruned"
    CORRUPTION_REPORT = "corruption_report"
    PANIC = "panic"
    SYSCALL = "syscall"


@dataclass
class Event:
    """One timestamped record in the event log."""

    kind: EventKind
    cycle: int
    address: int = 0
    size: int = 0
    detail: dict = field(default_factory=dict)

    def __str__(self):
        extras = "".join(f" {k}={v}" for k, v in self.detail.items())
        return (
            f"[{self.cycle:>12}] {self.kind.value:<18}"
            f" addr={self.address:#010x} size={self.size}{extras}"
        )


class EventLog:
    """Append-only log of simulation events with simple query helpers."""

    def __init__(self, clock):
        self._clock = clock
        self._events = []

    def emit(self, kind, address=0, size=0, **detail):
        """Append an event stamped with the current CPU cycle."""
        event = Event(
            kind=kind,
            cycle=self._clock.cycles,
            address=address,
            size=size,
            detail=detail,
        )
        self._events.append(event)
        return event

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind):
        """Return all events of the given :class:`EventKind`."""
        return [event for event in self._events if event.kind is kind]

    def count(self, kind):
        """Return how many events of ``kind`` were recorded."""
        return sum(1 for event in self._events if event.kind is kind)

    def last(self, kind=None):
        """Return the most recent event, optionally filtered by kind."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind is kind:
                return event
        return None

    def clear(self):
        """Drop all recorded events."""
        self._events.clear()
