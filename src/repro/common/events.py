"""Structured event log shared by the machine and the monitoring tools.

Components append :class:`Event` records to a single :class:`EventLog`
owned by the machine.  Experiments and tests query the log instead of
scraping stdout, which keeps the harness deterministic.

Consumers have two supported access paths:

- **queries** -- :meth:`EventLog.query` (kind / since-cycle / address
  filters), plus the :meth:`of_kind` / :meth:`count` / :meth:`last`
  conveniences, all served from per-kind indices instead of scans,
- **subscriptions** -- :meth:`EventLog.subscribe` delivers events to a
  callback at emit time, so detectors and the tracer never re-scan the
  log looking for what just happened.

Iterating the log directly (``for event in log``) is deprecated in
favour of ``query()``; full scans were the pattern that made every
consumer O(total events).
"""

import warnings
from dataclasses import dataclass, field
from enum import Enum


class EventKind(Enum):
    """Categories of events the simulation records."""

    ALLOC = "alloc"
    FREE = "free"
    ECC_FAULT = "ecc_fault"
    ECC_CORRECTED = "ecc_corrected"
    WATCH = "watch"
    UNWATCH = "unwatch"
    SCRUB = "scrub"
    PAGE_SWAP_OUT = "page_swap_out"
    PAGE_SWAP_IN = "page_swap_in"
    PROTECTION_FAULT = "protection_fault"
    LEAK_SUSPECT = "leak_suspect"
    LEAK_REPORT = "leak_report"
    LEAK_PRUNED = "leak_pruned"
    CORRUPTION_REPORT = "corruption_report"
    PANIC = "panic"
    SYSCALL = "syscall"
    ALERT = "alert"
    TREND = "trend"


@dataclass
class Event:
    """One timestamped record in the event log."""

    kind: EventKind
    cycle: int
    address: int = 0
    size: int = 0
    detail: dict = field(default_factory=dict)

    def __str__(self):
        extras = "".join(f" {k}={v}" for k, v in self.detail.items())
        return (
            f"[{self.cycle:>12}] {self.kind.value:<18}"
            f" addr={self.address:#010x} size={self.size}{extras}"
        )


class EventLog:
    """Append-only log with indexed queries and emit-time subscriptions."""

    def __init__(self, clock):
        self._clock = clock
        self._events = []
        self._by_kind = {}
        #: kind (or None for every kind) -> list of callbacks.
        self._subscribers = {}

    def emit(self, kind, address=0, size=0, **detail):
        """Append an event stamped with the current CPU cycle."""
        event = Event(
            kind=kind,
            cycle=self._clock.cycles,
            address=address,
            size=size,
            detail=detail,
        )
        self._events.append(event)
        self._by_kind.setdefault(kind, []).append(event)
        for callback in self._subscribers.get(kind, ()):
            callback(event)
        for callback in self._subscribers.get(None, ()):
            callback(event)
        return event

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, callback, kind=None):
        """Call ``callback(event)`` on every future emit.

        ``kind`` limits delivery to one :class:`EventKind`; ``None``
        subscribes to everything.  Returns a token for
        :meth:`unsubscribe`.
        """
        self._subscribers.setdefault(kind, []).append(callback)
        return (kind, callback)

    def unsubscribe(self, token):
        """Cancel a subscription made with :meth:`subscribe`."""
        kind, callback = token
        callbacks = self._subscribers.get(kind, [])
        if callback in callbacks:
            callbacks.remove(callback)

    # ------------------------------------------------------------------
    # queries (index-backed; never a full scan per kind)
    # ------------------------------------------------------------------
    def query(self, kind=None, since_cycle=None, address=None,
              limit=None):
        """Filtered view of the log, oldest first.

        ``kind`` selects one event kind (index lookup); ``since_cycle``
        keeps events stamped at or after that cycle (binary search --
        the log is appended in non-decreasing cycle order);
        ``address``/``limit`` filter and truncate the result.
        """
        events = self._by_kind.get(kind, []) if kind is not None \
            else self._events
        if since_cycle is not None:
            events = events[_first_at_or_after(events, since_cycle):]
        elif events is self._events or kind is not None:
            events = list(events)
        if address is not None:
            events = [e for e in events if e.address == address]
        if limit is not None:
            events = events[-limit:]
        return events

    def of_kind(self, kind):
        """Return all events of the given :class:`EventKind`."""
        return list(self._by_kind.get(kind, ()))

    def count(self, kind):
        """Return how many events of ``kind`` were recorded."""
        return len(self._by_kind.get(kind, ()))

    def last(self, kind=None):
        """Return the most recent event, optionally filtered by kind."""
        events = self._events if kind is None else \
            self._by_kind.get(kind, [])
        return events[-1] if events else None

    def clear(self):
        """Drop all recorded events (subscriptions stay installed)."""
        self._events.clear()
        self._by_kind.clear()

    # ------------------------------------------------------------------
    # size / deprecated direct access
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._events)

    def __iter__(self):
        warnings.warn(
            "iterating EventLog directly is deprecated; use "
            "EventLog.query() (optionally with kind=/since_cycle=)",
            DeprecationWarning,
            stacklevel=2,
        )
        return iter(list(self._events))


def _first_at_or_after(events, cycle):
    """Index of the first event with ``event.cycle >= cycle``."""
    lo, hi = 0, len(events)
    while lo < hi:
        mid = (lo + hi) // 2
        if events[mid].cycle < cycle:
            lo = mid + 1
        else:
            hi = mid
    return lo
