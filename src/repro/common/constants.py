"""Architectural constants shared by every simulated subsystem.

The values mirror the platform of the SafeMem paper (Section 5.1): a
2.4 GHz Pentium 4 class machine with an Intel E7500 ECC chipset and
4 KiB pages.  The cache-line size is 64 bytes, which is both the P4 L2
line size and the granularity at which main memory (and therefore ECC
protection) is accessed.  The ratio ``PAGE_SIZE / CACHE_LINE_SIZE = 64``
is what produces the paper's 64-74x guard-space reduction of
ECC-protection over page-protection (Table 4).
"""

#: Bytes per cache line.  ECC watchpoints operate at this granularity
#: because accesses to main memory happen in cache-line units (Sec 2.2.1).
CACHE_LINE_SIZE = 64

#: Bytes per virtual-memory page.  Page-protection guards (mprotect) and
#: the pin/swap machinery operate at this granularity.
PAGE_SIZE = 4096

#: Cache lines per page.
LINES_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

#: Bits of data covered by one ECC code word.  The paper's chipset
#: protects 64 data bits with 8 check bits ("8 bits to protect 64 bits").
ECC_GROUP_BITS = 64

#: Bytes per ECC group.
ECC_GROUP_BYTES = ECC_GROUP_BITS // 8

#: Check bits stored alongside each ECC group (SEC-DED over 64 bits).
ECC_CHECK_BITS = 8

#: ECC groups per cache line.
GROUPS_PER_LINE = CACHE_LINE_SIZE // ECC_GROUP_BYTES

#: Simulated CPU frequency in cycles per microsecond (2.4 GHz).
CYCLES_PER_MICROSECOND = 2400

#: Simulated CPU frequency in cycles per second.
CYCLES_PER_SECOND = CYCLES_PER_MICROSECOND * 1_000_000

#: Number of bits SafeMem flips inside every ECC group of a watched line.
#: Three bits guarantee a *multi-bit* (uncorrectable) ECC fault -- a
#: single flipped bit would be silently corrected by the controller and
#: the watchpoint would never fire (Sec 2.2.2, "Data Scrambling").
SCRAMBLE_BIT_COUNT = 3

#: The fixed data-bit positions (within each 64-bit ECC group) flipped
#: by the scrambler.  Fixed positions give scrambled data a recognisable
#: signature, letting the fault handler distinguish a watchpoint hit
#: from a genuine hardware error.  The positions are chosen so the three
#: corresponding SEC-DED codeword positions (3, 13, 65) XOR to 79, an
#: invalid syndrome -- guaranteeing the decoder classifies the pattern
#: as an *uncorrectable* multi-bit error rather than mis-correcting it
#: as a single-bit error (see repro.ecc.codec).
SCRAMBLE_BIT_POSITIONS = (0, 8, 57)


def align_down(value, alignment):
    """Round ``value`` down to a multiple of ``alignment``."""
    return value - (value % alignment)


def align_up(value, alignment):
    """Round ``value`` up to a multiple of ``alignment``."""
    return align_down(value + alignment - 1, alignment)


def is_aligned(value, alignment):
    """Return True when ``value`` is a multiple of ``alignment``."""
    return value % alignment == 0


def line_base(address):
    """Return the base address of the cache line containing ``address``."""
    return align_down(address, CACHE_LINE_SIZE)


def page_base(address):
    """Return the base address of the page containing ``address``."""
    return align_down(address, PAGE_SIZE)
