"""Exception hierarchy for the simulated machine and the SafeMem tool."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class MachineError(ReproError):
    """Base class for errors raised by the simulated hardware/OS."""


class MachinePanic(MachineError):
    """The simulated kernel entered panic mode.

    This mirrors the paper's observation that stock Linux/Windows handle
    an unclaimed multi-bit ECC error by panicking (Section 2.1).
    """


class BusError(MachineError):
    """A physical access fell outside of installed DRAM."""


class PageFault(MachineError):
    """A virtual access touched an unmapped page."""

    def __init__(self, vaddr, message=None):
        super().__init__(message or f"page fault at {vaddr:#x}")
        self.vaddr = vaddr


class ProtectionFault(MachineError):
    """A virtual access violated the page protection bits.

    This is the fault the page-protection baseline (mprotect guards)
    relies on, analogous to SIGSEGV delivery.
    """

    def __init__(self, vaddr, access, message=None):
        super().__init__(
            message or f"protection fault ({access}) at {vaddr:#x}"
        )
        self.vaddr = vaddr
        self.access = access


class SyscallError(MachineError):
    """A simulated system call was invoked with invalid arguments."""


class PinLimitExceeded(SyscallError):
    """Pinning a page would exceed the kernel's pinned-memory budget.

    The paper notes that pinning watched pages "limits the total amount
    of monitored memory" (Section 2.2.2, "Dealing with Page Swapping").
    """


class FleetError(ReproError):
    """A sharded experiment fleet could not complete its jobs.

    Carries the per-job failures so the caller can report exactly which
    experiment shard crashed (one crashed shard fails the whole run --
    the serial path would have propagated the same exception).
    """

    def __init__(self, failures):
        self.failures = dict(failures)
        detail = "; ".join(f"{ident}: {error}"
                           for ident, error in sorted(self.failures.items()))
        super().__init__(f"{len(self.failures)} fleet job(s) failed: "
                         f"{detail}")


class HeapError(ReproError):
    """Base class for allocator misuse detected by the simulated heap."""


class OutOfMemory(HeapError):
    """The allocator could not satisfy a request."""


class InvalidFree(HeapError):
    """free() was called on an address that is not a live allocation."""


class DoubleFree(InvalidFree):
    """free() was called twice on the same allocation."""


class MonitorError(ReproError):
    """A dynamic monitoring tool detected a bug and stopped the program.

    SafeMem "pauses program execution to allow programmers to attach an
    interactive debugger" on the first corruption fault (Section 2.2.1);
    raising an exception is our simulation of that pause.
    """

    def __init__(self, report):
        super().__init__(str(report))
        self.report = report
