"""Virtual CPU clock.

The paper's leak detector reasons about *CPU time of the monitored
program*, explicitly excluding idle/IO wait (Section 3.1).  The
simulated machine therefore keeps two counters:

- ``cycles``: CPU cycles consumed by the program (and by monitoring
  work performed on its behalf -- that is exactly what shows up as
  monitoring *overhead*),
- ``idle_cycles``: wall-clock time that passed while the program was
  blocked (between server requests, waiting for IO, ...), which must
  NOT count toward object lifetimes.

The clock also hosts **periodic timers** (:meth:`VirtualClock.every`):
the continuous-monitoring layer (``repro.obs.sampler``) registers its
sampling cadence here so samples are driven by simulated CPU time, not
by wall time.  Timers are off the hot path when none are registered --
``tick`` pays one attribute comparison -- and fire on *busy* cycles
only, matching how lifetimes and overhead are accounted.
"""

from repro.common.constants import CYCLES_PER_MICROSECOND, CYCLES_PER_SECOND


class ClockTimer:
    """One periodic callback registered with :meth:`VirtualClock.every`."""

    __slots__ = ("interval", "next_fire", "callback", "cancelled",
                 "fired")

    def __init__(self, interval, next_fire, callback):
        self.interval = interval
        self.next_fire = next_fire
        self.callback = callback
        self.cancelled = False
        self.fired = 0

    def __repr__(self):
        state = "cancelled" if self.cancelled else \
            f"next@{self.next_fire}"
        return f"ClockTimer(every {self.interval} cycles, {state})"


class VirtualClock:
    """Cycle-granularity clock with separate busy and idle accounting."""

    def __init__(self):
        self.cycles = 0
        self.idle_cycles = 0
        self._timers = []
        #: earliest pending deadline, or None with no timers -- the one
        #: value ``tick`` checks, so an idle clock stays cheap.
        self._next_fire = None
        self._firing = False

    # ------------------------------------------------------------------
    # advancing time
    # ------------------------------------------------------------------
    def tick(self, cycles):
        """Consume ``cycles`` of CPU time."""
        if cycles < 0:
            raise ValueError(f"cannot tick a negative amount: {cycles}")
        self.cycles += cycles
        if self._next_fire is not None and self.cycles >= self._next_fire:
            self._fire_due_timers()

    def idle(self, cycles):
        """Let ``cycles`` of wall-clock time pass without CPU work."""
        if cycles < 0:
            raise ValueError(f"cannot idle a negative amount: {cycles}")
        self.idle_cycles += cycles

    # ------------------------------------------------------------------
    # periodic timers
    # ------------------------------------------------------------------
    def every(self, interval_cycles, callback):
        """Call ``callback(clock)`` whenever ``interval_cycles`` of CPU
        time have passed; returns a :class:`ClockTimer` for
        :meth:`cancel`.

        One large ``tick`` that crosses several deadlines fires the
        timer **once** and reschedules relative to the current cycle --
        ticks are atomic blocks of simulated work, so there is no
        mid-block instant at which a catch-up firing could observe
        anything different.
        """
        if interval_cycles <= 0:
            raise ValueError(
                f"timer interval must be positive: {interval_cycles}"
            )
        timer = ClockTimer(interval_cycles,
                           self.cycles + interval_cycles, callback)
        self._timers.append(timer)
        self._reschedule()
        return timer

    def cancel(self, timer):
        """Cancel a timer returned by :meth:`every` (idempotent)."""
        timer.cancelled = True
        if timer in self._timers:
            self._timers.remove(timer)
        self._reschedule()

    @property
    def timer_count(self):
        """Live timers on this clock (0 on a freshly booted machine)."""
        return len(self._timers)

    def _reschedule(self):
        self._next_fire = min(
            (timer.next_fire for timer in self._timers), default=None
        )

    def _fire_due_timers(self):
        # A callback may tick the clock itself (charging modelled
        # monitoring cost); the guard keeps that from recursing into
        # another timer pass mid-delivery.
        if self._firing:
            return
        self._firing = True
        try:
            for timer in list(self._timers):
                if timer.cancelled or self.cycles < timer.next_fire:
                    continue
                timer.next_fire = self.cycles + timer.interval
                timer.fired += 1
                timer.callback(self)
        finally:
            self._firing = False
            self._reschedule()

    # ------------------------------------------------------------------
    # reading time
    # ------------------------------------------------------------------
    @property
    def cpu_time(self):
        """CPU time consumed, in cycles.  Lifetimes are measured in this."""
        return self.cycles

    @property
    def wall_time(self):
        """Wall-clock time, in cycles (busy + idle)."""
        return self.cycles + self.idle_cycles

    @property
    def cpu_seconds(self):
        """CPU time in seconds of the simulated 2.4 GHz machine."""
        return self.cycles / CYCLES_PER_SECOND

    @property
    def cpu_microseconds(self):
        """CPU time in microseconds of the simulated machine."""
        return self.cycles / CYCLES_PER_MICROSECOND

    def snapshot(self):
        """Return ``(cycles, idle_cycles)`` for later delta computation."""
        return (self.cycles, self.idle_cycles)

    def __repr__(self):
        return (
            f"VirtualClock(cycles={self.cycles}, "
            f"idle_cycles={self.idle_cycles})"
        )


def cycles_to_microseconds(cycles):
    """Convert a cycle count to simulated microseconds."""
    return cycles / CYCLES_PER_MICROSECOND


def microseconds_to_cycles(microseconds):
    """Convert simulated microseconds to cycles."""
    return int(round(microseconds * CYCLES_PER_MICROSECOND))


def seconds_to_cycles(seconds):
    """Convert simulated seconds to cycles."""
    return int(round(seconds * CYCLES_PER_SECOND))
