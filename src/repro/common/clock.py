"""Virtual CPU clock.

The paper's leak detector reasons about *CPU time of the monitored
program*, explicitly excluding idle/IO wait (Section 3.1).  The
simulated machine therefore keeps two counters:

- ``cycles``: CPU cycles consumed by the program (and by monitoring
  work performed on its behalf -- that is exactly what shows up as
  monitoring *overhead*),
- ``idle_cycles``: wall-clock time that passed while the program was
  blocked (between server requests, waiting for IO, ...), which must
  NOT count toward object lifetimes.
"""

from repro.common.constants import CYCLES_PER_MICROSECOND, CYCLES_PER_SECOND


class VirtualClock:
    """Cycle-granularity clock with separate busy and idle accounting."""

    def __init__(self):
        self.cycles = 0
        self.idle_cycles = 0

    # ------------------------------------------------------------------
    # advancing time
    # ------------------------------------------------------------------
    def tick(self, cycles):
        """Consume ``cycles`` of CPU time."""
        if cycles < 0:
            raise ValueError(f"cannot tick a negative amount: {cycles}")
        self.cycles += cycles

    def idle(self, cycles):
        """Let ``cycles`` of wall-clock time pass without CPU work."""
        if cycles < 0:
            raise ValueError(f"cannot idle a negative amount: {cycles}")
        self.idle_cycles += cycles

    # ------------------------------------------------------------------
    # reading time
    # ------------------------------------------------------------------
    @property
    def cpu_time(self):
        """CPU time consumed, in cycles.  Lifetimes are measured in this."""
        return self.cycles

    @property
    def wall_time(self):
        """Wall-clock time, in cycles (busy + idle)."""
        return self.cycles + self.idle_cycles

    @property
    def cpu_seconds(self):
        """CPU time in seconds of the simulated 2.4 GHz machine."""
        return self.cycles / CYCLES_PER_SECOND

    @property
    def cpu_microseconds(self):
        """CPU time in microseconds of the simulated machine."""
        return self.cycles / CYCLES_PER_MICROSECOND

    def snapshot(self):
        """Return ``(cycles, idle_cycles)`` for later delta computation."""
        return (self.cycles, self.idle_cycles)

    def __repr__(self):
        return (
            f"VirtualClock(cycles={self.cycles}, "
            f"idle_cycles={self.idle_cycles})"
        )


def cycles_to_microseconds(cycles):
    """Convert a cycle count to simulated microseconds."""
    return cycles / CYCLES_PER_MICROSECOND


def microseconds_to_cycles(microseconds):
    """Convert simulated microseconds to cycles."""
    return int(round(microseconds * CYCLES_PER_MICROSECOND))


def seconds_to_cycles(seconds):
    """Convert simulated seconds to cycles."""
    return int(round(seconds * CYCLES_PER_SECOND))
