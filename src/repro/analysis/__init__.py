"""Experiment harnesses for the paper's tables and figures."""

from repro.analysis.experiments import (
    experiment_figure3,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)
from repro.analysis.runner import (
    MONITOR_FACTORIES,
    RunResult,
    make_monitor,
    overhead_percent,
    run_workload,
    slowdown_factor,
)

__all__ = [
    "experiment_figure3",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "MONITOR_FACTORIES",
    "RunResult",
    "make_monitor",
    "overhead_percent",
    "run_workload",
    "slowdown_factor",
]
