"""Experiment harnesses regenerating every table and figure of the paper.

Each ``experiment_*`` function runs the simulation and returns a result
object with structured rows plus a ``render()`` producing the
paper-style text table.  The benchmarks under ``benchmarks/`` call
these and print the output next to the paper's reference values.

Every multi-workload experiment is built from a per-workload unit
function (``table3_row``, ``table4_row``, ``table5_row``,
``figure3_series``): the serial ``experiment_*`` loop and the sharded
fleet scheduler (:mod:`repro.analysis.fleet`) both call the same unit,
which is what keeps ``repro validate --jobs N`` bit-identical to the
serial path -- each unit boots its own machines and the simulation is
deterministic per (workload, config, seed).
"""

from dataclasses import dataclass, field

from repro.analysis import paper
from repro.analysis.runner import (
    overhead_percent,
    run_workload,
    slowdown_factor,
)
from repro.analysis.tables import (
    fmt_factor,
    fmt_percent,
    render_series,
    render_table,
)
from repro.common.clock import cycles_to_microseconds
from repro.common.constants import CACHE_LINE_SIZE, CYCLES_PER_SECOND, PAGE_SIZE
from repro.machine.machine import Machine
from repro.mmu.pagetable import PROT_NONE, PROT_RW
from repro.workloads.registry import (
    CORRUPTION_WORKLOADS,
    LEAK_WORKLOADS,
    all_workload_names,
)

BASE = 0x4000_0000


# ----------------------------------------------------------------------
# Table 2: syscall microbenchmark
# ----------------------------------------------------------------------
@dataclass
class Table2Result:
    rows: list

    def render(self):
        return render_table(
            "Table 2: time for the ECC system calls",
            ["Call", "Measured (us)", "Paper (us)"],
            [(name, f"{measured:.2f}", f"{reference:.2f}")
             for name, measured, reference in self.rows],
            note="ECC calls cost more than mprotect because they pin "
                 "the page (paper Section 6.1)",
        )


def experiment_table2(iterations=64):
    """Measure WatchMemory / DisableWatchMemory / mprotect cost."""
    machine = Machine(dram_size=16 * 1024 * 1024)
    machine.kernel.mmap(BASE, 256 * PAGE_SIZE)
    # Touch the pages so the microbenchmark measures the call, not
    # demand paging.
    for i in range(iterations):
        machine.store(BASE + i * PAGE_SIZE, b"\0")

    def measure(operation):
        start = machine.clock.cycles
        for i in range(iterations):
            operation(i)
        return cycles_to_microseconds(
            (machine.clock.cycles - start) / iterations
        )

    watch_us = measure(lambda i: machine.kernel.watch_memory(
        BASE + i * PAGE_SIZE, CACHE_LINE_SIZE))
    disable_us = measure(lambda i: machine.kernel.disable_watch_memory(
        BASE + i * PAGE_SIZE))
    mprotect_us = measure(lambda i: machine.kernel.mprotect(
        BASE + i * PAGE_SIZE, PAGE_SIZE,
        PROT_NONE if i % 2 == 0 else PROT_RW))

    rows = [
        ("WatchMemory", watch_us,
         paper.TABLE2_MICROSECONDS["WatchMemory"]),
        ("DisableWatchMemory", disable_us,
         paper.TABLE2_MICROSECONDS["DisableWatchMemory"]),
        ("mprotect", mprotect_us,
         paper.TABLE2_MICROSECONDS["mprotect"]),
    ]
    return Table2Result(rows=rows)


# ----------------------------------------------------------------------
# Table 3: overhead comparison SafeMem vs Purify + bug detection
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    workload: str
    bug_class: str
    detected: bool
    ml_overhead: float
    mc_overhead: float
    full_overhead: float
    purify_slowdown: float
    #: ML+MC overhead over the steady-state tail of the run (fixed
    #: arming/setup costs excluded -- see steady_cycles_per_request).
    #: Defaults to None so older cached payloads still decode; readers
    #: fall back to full_overhead.
    steady_overhead: float = None

    @property
    def reduction_factor(self):
        """How many times smaller SafeMem's overhead is than Purify's."""
        purify_overhead = (self.purify_slowdown - 1.0) * 100.0
        if self.full_overhead <= 0:
            return float("inf")
        return purify_overhead / self.full_overhead


@dataclass
class Table3Result:
    rows: list

    def render(self):
        table_rows = []
        for row in self.rows:
            table_rows.append((
                row.workload,
                row.bug_class,
                "YES" if row.detected else "NO",
                fmt_percent(row.ml_overhead),
                fmt_percent(row.mc_overhead),
                fmt_percent(row.full_overhead),
                fmt_factor(row.purify_slowdown),
                fmt_factor(row.reduction_factor, 0),
            ))
        low, high = paper.TABLE3_SAFEMEM_OVERHEAD_BAND
        plow, phigh = paper.TABLE3_PURIFY_SLOWDOWN_BAND
        return render_table(
            "Table 3: overhead comparison between SafeMem and Purify",
            ["App", "Bug", "Detected?", "Only ML", "Only MC", "ML+MC",
             "Purify", "Reduction"],
            table_rows,
            note=f"paper bands: SafeMem ML+MC {low}%-{high}% "
                 f"(gzip {paper.TABLE3_GZIP_SAFEMEM_OVERHEAD}%), "
                 f"Purify {plow}x-{phigh}x; all bugs detected",
        )

    @property
    def full_overheads(self):
        return [row.full_overhead for row in self.rows]

    @property
    def steady_overheads(self):
        """Steady-state ML+MC overheads (full_overhead fallback).

        The T3-band claim checks these: whole-run overhead folds fixed
        arming costs over however many requests a run happens to use,
        so the same workload drifts in and out of the paper's band as
        the request count changes; the steady-state tail does not.
        """
        return [row.steady_overhead if row.steady_overhead is not None
                else row.full_overhead
                for row in self.rows]

    @property
    def purify_slowdowns(self):
        return [row.purify_slowdown for row in self.rows]


def detection_succeeded(result, bug_class):
    """Did the (buggy, SafeMem-monitored) run catch its bug?"""
    truth = result.truth
    if bug_class in ("overflow", "uaf"):
        reports = result.monitor.corruption_reports
        return bool(reports) and truth.corruption is not None
    reported = {r.object_address for r in result.monitor.leak_reports}
    return bool(reported & truth.leaked_addresses)


def steady_cycles_per_request(marks, frac=0.5):
    """Cycles per request over the steady-state tail of a run.

    ``marks`` are the cumulative cycle counts after each request
    (GroundTruth.cycle_marks).  The first ``frac`` of the run is warmup
    (arming watches, faulting in pages, growing the heap); the tail
    slope is the per-request cost once the detector reaches its
    production rhythm.  Entirely cycle-derived, so the value is
    identical no matter which process or shard ran the workload.
    Returns None when the run is too short to have a tail.
    """
    window = max(1, int(len(marks) * frac))
    tail = len(marks) - window
    if tail <= 0:
        return None
    return (marks[-1] - marks[window - 1]) / tail


def table3_row(name, requests=250, detection_requests=None):
    """One workload's Table 3 measurements (overheads + detection)."""
    bug_class = "ML" if name in LEAK_WORKLOADS else "MC"
    native = run_workload(name, "native", requests=requests)
    ml = run_workload(name, "safemem-ml", requests=requests)
    mc = run_workload(name, "safemem-mc", requests=requests)
    full = run_workload(name, "safemem", requests=requests)
    purify = run_workload(name, "purify", requests=requests)
    for run in (native, ml, mc, full, purify):
        if run.truth.detection is not None:
            raise AssertionError(
                f"{name} normal-input run under {run.monitor_name} "
                f"unexpectedly reported a bug: {run.truth.detection}"
            )
    buggy = run_workload(name, "safemem", buggy=True,
                         requests=detection_requests)
    detected = detection_succeeded(buggy, _bug_of(name))
    steady_native = steady_cycles_per_request(native.truth.cycle_marks)
    steady_full = steady_cycles_per_request(full.truth.cycle_marks)
    steady = None
    if steady_native and steady_full is not None:
        steady = overhead_percent(steady_full, steady_native)
    return Table3Row(
        workload=name,
        bug_class=bug_class,
        detected=detected,
        ml_overhead=overhead_percent(ml.cycles, native.cycles),
        mc_overhead=overhead_percent(mc.cycles, native.cycles),
        full_overhead=overhead_percent(full.cycles, native.cycles),
        purify_slowdown=slowdown_factor(purify.cycles, native.cycles),
        steady_overhead=steady,
    )


def experiment_table3(requests=250, detection_requests=None):
    """Overheads on normal inputs + detection on buggy inputs."""
    return Table3Result(rows=[
        table3_row(name, requests=requests,
                   detection_requests=detection_requests)
        for name in all_workload_names()
    ])


def _bug_of(name):
    from repro.workloads.registry import WORKLOADS
    return WORKLOADS[name].bug


# ----------------------------------------------------------------------
# Table 4: guard-space waste, ECC vs page protection
# ----------------------------------------------------------------------
@dataclass
class Table4Row:
    workload: str
    ecc_overhead_pct: float
    page_overhead_pct: float

    @property
    def reduction_factor(self):
        if self.ecc_overhead_pct <= 0:
            return float("inf")
        return self.page_overhead_pct / self.ecc_overhead_pct


@dataclass
class Table4Result:
    rows: list

    def render(self):
        low, high = paper.TABLE4_REDUCTION_BAND
        return render_table(
            "Table 4: space overhead of ECC-protection vs "
            "page-protection",
            ["App", "ECC-Protection", "Page-Protection", "Reduction"],
            [(row.workload,
              fmt_percent(row.ecc_overhead_pct, 3),
              fmt_percent(row.page_overhead_pct, 1),
              fmt_factor(row.reduction_factor, 1))
             for row in self.rows],
            note=f"paper reduction band: {low}x-{high}x "
                 "(PAGE_SIZE/CACHE_LINE_SIZE = "
                 f"{PAGE_SIZE // CACHE_LINE_SIZE})",
        )

    @property
    def reductions(self):
        return [row.reduction_factor for row in self.rows]


def table4_row(name, requests=250):
    """One workload's guard-space waste under both mechanisms."""
    ecc = run_workload(name, "safemem", requests=requests)
    page = run_workload(name, "pageprot", requests=requests)
    return Table4Row(
        workload=name,
        ecc_overhead_pct=ecc.monitor.space_overhead_fraction() * 100,
        page_overhead_pct=page.monitor.space_overhead_fraction() * 100,
    )


def experiment_table4(requests=250):
    """Space overhead over requested bytes, both guard mechanisms."""
    return Table4Result(rows=[
        table4_row(name, requests=requests)
        for name in all_workload_names()
    ])


# ----------------------------------------------------------------------
# Table 5: leak false positives before/after ECC pruning
# ----------------------------------------------------------------------
@dataclass
class Table5Row:
    workload: str
    before_pruning: int
    after_pruning: int
    true_leaks_reported: int


@dataclass
class Table5Result:
    rows: list

    def render(self):
        table_rows = []
        for row in self.rows:
            ref_before, ref_after = paper.TABLE5_FALSE_POSITIVES[
                row.workload
            ]
            table_rows.append((
                row.workload,
                row.before_pruning, row.after_pruning,
                f"{ref_before} -> {ref_after}",
                row.true_leaks_reported,
            ))
        return render_table(
            "Table 5: false memory leaks before and after ECC pruning",
            ["App", "Before", "After", "Paper (before -> after)",
             "True leaks reported"],
            table_rows,
            note="no false positives in memory corruption detection "
                 "(guards fire only on true bugs)",
        )


def table5_row(name, requests=None):
    """One leak application's false-positive counts (buggy input)."""
    result = run_workload(name, "safemem", buggy=True,
                          requests=requests)
    leak = result.monitor.leak
    truth = result.truth
    flagged = {s.object_address for s in leak.suspect_records}
    reported = {r.object_address for r in leak.reports}
    return Table5Row(
        workload=name,
        before_pruning=len(flagged - truth.leaked_addresses),
        after_pruning=len(reported - truth.leaked_addresses),
        true_leaks_reported=len(reported & truth.leaked_addresses),
    )


def experiment_table5(requests=None):
    """False positives on the four leak applications (buggy inputs)."""
    return Table5Result(rows=[
        table5_row(name, requests=requests) for name in LEAK_WORKLOADS
    ])


# ----------------------------------------------------------------------
# Figure 3: stability of maximal lifetime (WarmUpTime CDF)
# ----------------------------------------------------------------------
@dataclass
class Figure3Series:
    workload: str
    #: (stabilization time in seconds, cumulative percent of groups).
    points: list
    total_groups: int

    @property
    def final_percent(self):
        return self.points[-1][1] if self.points else 0.0

    @property
    def last_warmup_seconds(self):
        return self.points[-1][0] if self.points else 0.0


@dataclass
class Figure3Result:
    series: list
    run_seconds: dict

    def render(self):
        blocks = []
        for series in self.series:
            run_s = self.run_seconds[series.workload]
            blocks.append(render_series(
                f"Figure 3 ({series.workload}): stability of maximal "
                f"lifetime -- {series.total_groups} groups, run "
                f"{run_s:.3f}s CPU",
                series.points,
                x_label="WarmUpTime (s)",
                y_label="% stable groups",
            ))
        return "\n\n".join(blocks)


#: the three leak servers of the paper's Section 3.1 stability study.
FIGURE3_WORKLOADS = ("ypserv1", "proftpd", "squid1")


def figure3_series(name, requests=None, min_frees=3):
    """One workload's WarmUpTime CDF; returns (series, run_seconds)."""
    result = run_workload(name, "profiler", requests=requests)
    warmups = result.monitor.warmup_times_seconds(min_frees=min_frees)
    points = [
        (warmup, (index + 1) / len(warmups) * 100.0)
        for index, warmup in enumerate(warmups)
    ]
    series = Figure3Series(
        workload=name, points=points, total_groups=len(warmups),
    )
    return series, result.cpu_seconds


def experiment_figure3(requests=None, min_frees=3):
    """Per-group WarmUpTime CDF for the three leak servers.

    The paper's claim: every group's maximal lifetime stabilizes early
    in the execution.  A group counts as measured once it has freed at
    least ``min_frees`` objects.
    """
    series = []
    run_seconds = {}
    for name in FIGURE3_WORKLOADS:
        one, seconds = figure3_series(name, requests=requests,
                                      min_frees=min_frees)
        series.append(one)
        run_seconds[name] = seconds
    return Figure3Result(series=series, run_seconds=run_seconds)


# ----------------------------------------------------------------------
# Hardware-diversity matrix: per-codec watchpoint-contract tradeoffs
# ----------------------------------------------------------------------
@dataclass
class CodecTradeoffRow:
    """One chipset profile's measured watchpoint-contract behaviour."""

    profile: str
    codec: str
    check_bits: int
    #: simulated check-bit storage overhead (check bits / data bits).
    overhead_pct: float
    #: the verified scramble pattern, as data-bit positions.
    scramble: str
    #: wall cycles from arming a watchpoint to fault delivery, across
    #: one profile scrub interval plus a full scrub pass plus the
    #: faulting access (slower scrub cadences widen this window).
    detection_cycles: int
    #: armed lines the scrub pass *reported* as uncorrectable (must be
    #: the full armed count -- the scrubber sees the fault but must not
    #: clear it).
    scrub_faults_reported: int
    #: armed lines whose bytes the scrubber rewrote ("silent repair");
    #: any non-zero value breaks the watchpoint contract.
    false_scrub_corrections: int
    #: injected background single-bit upsets (profile.fault_noise
    #: scaled over the noise buffer) and how many the codec corrected.
    noise_flips: int
    noise_corrected: int
    #: the contract: scrambled write => uncorrectable fault on next
    #: read, scrubber never silently repairs, noise fully corrected.
    contract_ok: bool


@dataclass
class CodecMatrixResult:
    """Cross-backend tradeoff table (EXPERIMENTS.md hardware matrix)."""

    rows: list

    def render(self):
        return render_table(
            "Hardware matrix: watchpoint contract per ECC codec",
            ["Profile", "Codec", "Check bits", "Overhead",
             "Detect (cycles)", "Scrub faults", "Silent repairs",
             "Noise corrected", "Contract"],
            [(row.profile, row.codec, str(row.check_bits),
              fmt_percent(row.overhead_pct),
              str(row.detection_cycles),
              str(row.scrub_faults_reported),
              str(row.false_scrub_corrections),
              f"{row.noise_corrected}/{row.noise_flips}",
              "holds" if row.contract_ok else "BROKEN")
             for row in self.rows],
            note="scrambled write => uncorrectable fault on next read; "
                 "the scrubber reports armed lines but never silently "
                 "repairs them (docs/HARDWARE.md)",
        )


#: lines of the noise buffer the tradeoff experiment injects upsets
#: into; the flip count is profile.fault_noise scaled over this many
#: simulated group reads.
CODEC_NOISE_LINES = 32


def codec_tradeoff_row(profile_name):
    """Measure one chipset profile's watchpoint-contract behaviour.

    Boots a machine on the profile, arms a watchpoint over a line of
    known data, waits out the profile's scrub interval, runs a full
    scrub pass (no SafeMem suspend hooks -- the worst case), verifies
    the armed line was reported-but-untouched, then takes the fault on
    the next read.  Separately injects the profile's background
    fault-noise rate over an unwatched buffer and counts corrections.
    """
    import random

    from repro.common.constants import ECC_GROUP_BYTES
    from repro.ecc.controller import EccMode
    from repro.ecc.profile import get_profile

    profile = get_profile(profile_name)
    machine = Machine(dram_size=4 * 1024 * 1024,
                      ecc_mode=EccMode.CORRECT_AND_SCRUB,
                      profile=profile_name)
    kernel = machine.kernel
    codec = machine.controller.codec
    kernel.mmap(BASE, 4 * PAGE_SIZE)

    # -- background noise: seeded single-bit upsets over an unwatched
    # buffer, corrected (and counted) by the codec on read-back.
    rng = random.Random(f"codec-noise:{profile.name}")
    noise_base = BASE + PAGE_SIZE
    noise_bytes = CODEC_NOISE_LINES * CACHE_LINE_SIZE
    payload = bytes((index * 37 + 11) & 0xFF
                    for index in range(noise_bytes))
    machine.store(noise_base, payload)
    group_reads = noise_bytes // ECC_GROUP_BYTES
    noise_flips = max(1, round(profile.fault_noise * group_reads / 100))
    flipped_groups = set()
    for _ in range(noise_flips):
        while True:
            offset = rng.randrange(noise_bytes)
            paddr = machine.mmu.translate(noise_base + offset)
            group = paddr - paddr % ECC_GROUP_BYTES
            if group not in flipped_groups:
                flipped_groups.add(group)
                break
        machine.cache.flush_line(paddr)
        machine.dram.flip_data_bit(paddr, rng.randrange(8))
    corrected_before = machine.controller.corrected_errors
    assert machine.load(noise_base, noise_bytes) == payload
    noise_corrected = machine.controller.corrected_errors \
        - corrected_before

    # -- the watchpoint contract under scrub pressure.
    fired = []

    def handler(info):
        fired.append(machine.clock.wall_time)
        kernel.disable_watch_memory(BASE, restore_data=original)
        return True

    kernel.register_ecc_fault_handler(handler)
    original = b"codec tradeoff line bytes 0123456789 codec tradeoff!!padding...."[:CACHE_LINE_SIZE]
    machine.store(BASE, original)
    machine.load(BASE, CACHE_LINE_SIZE)
    armed_at = machine.clock.wall_time
    region = kernel.watch_memory(BASE, CACHE_LINE_SIZE)
    pline = next(iter(region.lines.values()))
    armed_bytes = machine.dram.read_raw(pline, CACHE_LINE_SIZE)
    armed_check = machine.dram.read_check(pline)

    # Wait out the profile's scrub cadence, then scrub everything.
    machine.clock.idle(profile.scrub_interval_cycles)
    assert kernel.scrubber.due()
    scrub_faults = kernel.run_scrub_pass()
    scrub_faults_reported = sum(
        1 for fault in scrub_faults if fault.line_address == pline)
    silently_repaired = (
        machine.dram.read_raw(pline, CACHE_LINE_SIZE) != armed_bytes
        or machine.dram.read_check(pline) != armed_check)
    false_scrub_corrections = 1 if silently_repaired else 0

    # The next read must deliver the fault, and the restored line must
    # decode cleanly afterwards.
    readback = machine.load(BASE, CACHE_LINE_SIZE)
    detection_cycles = (fired[0] - armed_at) if fired else -1
    contract_ok = bool(
        fired
        and scrub_faults_reported == 1
        and not silently_repaired
        and readback == original
        and noise_corrected == noise_flips
    )
    return CodecTradeoffRow(
        profile=profile.name,
        codec=codec.name,
        check_bits=codec.check_bits,
        overhead_pct=codec.overhead_percent,
        scramble="/".join(str(bit)
                          for bit in codec.scramble_bit_positions),
        detection_cycles=detection_cycles,
        scrub_faults_reported=scrub_faults_reported,
        false_scrub_corrections=false_scrub_corrections,
        noise_flips=noise_flips,
        noise_corrected=noise_corrected,
        contract_ok=contract_ok,
    )


def experiment_codec_matrix():
    """The cross-backend tradeoff table over every chipset profile."""
    from repro.ecc.profile import profile_names

    return CodecMatrixResult(rows=[
        codec_tradeoff_row(name) for name in profile_names()
    ])


# ----------------------------------------------------------------------
# Trend head-to-head: streaming detectors vs the lifetime-outlier method
# ----------------------------------------------------------------------
#: the buggy/clean corpus the head-to-head scores (the paper's leak
#: servers; each runs twice, leak injected and clean).
TREND_WORKLOADS = LEAK_WORKLOADS

#: profiler interval for the trend scenarios: fine-grained enough that
#: the Theil-Sen window fills while the lifetime-outlier detector is
#: still inside its warmup/confirmation periods.
TREND_SAMPLE_EVERY = 200_000


@dataclass
class TrendScenarioRow:
    """One (workload, input) run scored by every trend detector."""

    workload: str
    buggy: bool
    cycles: int
    samples: int
    #: first LEAK_REPORT cycle -- the lifetime-outlier baseline the
    #: trend detectors race (None when no report, i.e. clean runs).
    baseline_cycle: object
    #: detector name -> did its trend alert fire this run?
    fired: dict
    #: detector name -> cycle its trend alert first fired (or None).
    first_cycle: dict


def trend_scenario_row(name, buggy, requests=None,
                       sample_every=TREND_SAMPLE_EVERY):
    """Run one workload under SafeMem + every trend detector at once.

    One simulation serves all three detectors: the
    :class:`~repro.obs.trend.TrendEngine` computes every statistic per
    sample regardless of rule wiring, so installing the default trend
    rule of each detector side by side scores them on *identical*
    cycles -- and against the same lifetime-outlier LEAK_REPORT
    baseline -- without re-running the workload.
    """
    from repro.analysis.runner import (
        CACHE_SIZE,
        DRAM_SIZE,
        make_monitor,
    )
    from repro.common.events import EventKind
    from repro.obs.alerts import AlertEngine, default_trend_rules
    from repro.obs.sampler import SamplingProfiler, leak_group_source
    from repro.obs.trend import DETECTORS, TrendEngine

    machine = Machine(dram_size=DRAM_SIZE, cache_size=CACHE_SIZE,
                      cache_ways=16)
    monitor = make_monitor("safemem")
    sampler = SamplingProfiler(machine, interval_cycles=sample_every,
                               group_source=leak_group_source(monitor))
    trend = TrendEngine(machine)
    rules = [rule for detector in DETECTORS
             for rule in default_trend_rules(detector)]
    engine = AlertEngine(rules, events=machine.events,
                         metrics=machine.metrics, trend_source=trend)
    sampler.add_listener(trend.observe)
    sampler.add_listener(engine.evaluate)
    sampler.start()
    try:
        result = run_workload(name, "safemem", buggy=buggy,
                              requests=requests, machine=machine,
                              monitor=monitor)
    finally:
        sampler.stop()
    reports = machine.events.of_kind(EventKind.LEAK_REPORT)
    fired = {}
    first_cycle = {}
    for detector in DETECTORS:
        rule_name = f"leak-trend-{detector}"
        firing = [transition.cycle for transition in engine.transitions
                  if transition.rule == rule_name
                  and transition.state == "firing"]
        fired[detector] = bool(firing)
        first_cycle[detector] = firing[0] if firing else None
    return TrendScenarioRow(
        workload=name,
        buggy=buggy,
        cycles=result.cycles,
        samples=sampler.samples_taken,
        baseline_cycle=reports[0].cycle if reports else None,
        fired=fired,
        first_cycle=first_cycle,
    )


@dataclass
class TrendHeadToHeadResult:
    """Precision/recall head-to-head: trend vs lifetime-outlier."""

    sample_every: int
    rows: list

    def row(self, workload, buggy):
        for row in self.rows:
            if row.workload == workload and row.buggy == buggy:
                return row
        raise KeyError(f"no trend scenario for ({workload}, {buggy})")

    def detector_stats(self):
        """``detector -> {tp, fp, fn, precision, recall, wins}``.

        A buggy run counts as a true positive when the detector's
        alert fired; a *win* additionally requires firing no later
        than the lifetime-outlier baseline's first LEAK_REPORT.  Any
        alert on a clean run is a false positive.
        """
        from repro.obs.trend import DETECTORS
        stats = {}
        for detector in DETECTORS:
            tp = fp = fn = wins = 0
            for row in self.rows:
                caught = row.fired.get(detector, False)
                if row.buggy:
                    if caught:
                        tp += 1
                        first = row.first_cycle.get(detector)
                        if row.baseline_cycle is not None \
                                and first is not None \
                                and first <= row.baseline_cycle:
                            wins += 1
                    else:
                        fn += 1
                elif caught:
                    fp += 1
            stats[detector] = {
                "tp": tp, "fp": fp, "fn": fn,
                "precision": tp / (tp + fp) if tp + fp else 1.0,
                "recall": tp / (tp + fn) if tp + fn else 0.0,
                "wins": wins,
            }
        return stats

    def clean_alerts(self):
        """Total trend alerts fired across every clean run."""
        return sum(
            1 for row in self.rows if not row.buggy
            for caught in row.fired.values() if caught
        )

    def render(self):
        from repro.obs.trend import DETECTORS

        def fmt_cycle(value):
            return f"{value:,}" if value is not None else "-"

        race_rows = []
        for row in self.rows:
            if not row.buggy:
                continue
            clean = self.row(row.workload, False)
            race_rows.append((
                row.workload,
                fmt_cycle(row.baseline_cycle),
                *(fmt_cycle(row.first_cycle.get(d)) for d in DETECTORS),
                sum(1 for caught in clean.fired.values() if caught),
            ))
        race = render_table(
            "Trend head-to-head: first detection cycle on the injected "
            "leak (buggy runs)",
            ["App", "lifetime-outlier", *DETECTORS, "clean alerts"],
            race_rows,
            note=f"one run serves every detector (sampled every "
                 f"{self.sample_every:,} cycles); 'clean alerts' "
                 f"counts detectors firing on the leak-free twin",
        )
        stats = self.detector_stats()
        score = render_table(
            "Trend detector precision/recall vs the lifetime-outlier "
            "baseline",
            ["Detector", "TP", "FP", "FN", "Precision", "Recall",
             "No later than baseline"],
            [(detector,
              row["tp"], row["fp"], row["fn"],
              f"{row['precision']:.2f}", f"{row['recall']:.2f}",
              f"{row['wins']}/{row['tp'] + row['fn']}")
             for detector, row in stats.items()],
            note="a 'no later than baseline' scenario is one where the "
                 "trend alert fired at or before the lifetime-outlier "
                 "method's first LEAK_REPORT",
        )
        return race + "\n\n" + score


def experiment_trend_headtohead(requests=None,
                                sample_every=TREND_SAMPLE_EVERY):
    """The full buggy/clean sweep (serial path; validation shards it)."""
    rows = []
    for name in TREND_WORKLOADS:
        for buggy in (True, False):
            rows.append(trend_scenario_row(name, buggy,
                                           requests=requests,
                                           sample_every=sample_every))
    return TrendHeadToHeadResult(sample_every=sample_every, rows=rows)


# ----------------------------------------------------------------------
# Seasonal baseline vs flat detectors under diurnal traffic
# ----------------------------------------------------------------------
#: the diurnal corpus: each leak server wrapped in seasonal session
#: traffic (see repro.workloads.diurnal), run clean and leak-injected.
SEASON_WORKLOADS = ("ypserv1-diurnal", "proftpd-diurnal",
                    "squid1-diurnal", "ypserv2-diurnal")

#: profiler interval for the seasonal scenarios; divides the diurnal
#: period, so the per-phase baseline sees a stable sample cadence.
SEASON_SAMPLE_EVERY = 200_000

#: phase bins for the frozen baseline: one bin per two sample slots of
#: the 60M-cycle period, fine enough that the within-bin seasonal swing
#: stays far below every detector threshold.
SEASON_PHASES = 150


@dataclass
class SeasonScenarioRow:
    """One diurnal (workload, input) run scored seasonal vs flat."""

    workload: str
    buggy: bool
    cycles: int
    samples: int
    #: first LEAK_REPORT cycle from the lifetime-outlier method (None
    #: when no report -- clean runs).
    baseline_cycle: object
    #: detector name -> did its seasonal trend alert fire this run?
    fired: dict
    #: detector name -> cycle its seasonal alert first fired (or None).
    first_cycle: dict
    #: group-series breach onsets of the flat (no-baseline) control
    #: engine watching the very same samples.
    flat_onsets: int
    #: first flat control onset cycle (or None).
    flat_first_cycle: object


def season_scenario_row(name, buggy, requests=None,
                        sample_every=SEASON_SAMPLE_EVERY):
    """Run one diurnal workload with seasonal and flat engines side by
    side.

    The seasonal :class:`~repro.obs.trend.TrendEngine` (period-folded
    frozen baseline) drives the alert rules; a second, flat engine with
    ``emit_events=False`` observes the identical samples as a purely
    computational control -- it cannot perturb the event stream, and
    its breach onsets are read from ``TrendEngine.onsets``.  One
    simulation therefore scores both modes on the same cycles.
    """
    from repro.analysis.runner import (
        CACHE_SIZE,
        DRAM_SIZE,
        make_monitor,
    )
    from repro.common.events import EventKind
    from repro.obs.alerts import AlertEngine, default_trend_rules
    from repro.obs.sampler import SamplingProfiler, leak_group_source
    from repro.obs.trend import DETECTORS, TrendEngine
    from repro.workloads.diurnal import SEASON_PERIOD_CYCLES

    machine = Machine(dram_size=DRAM_SIZE, cache_size=CACHE_SIZE,
                      cache_ways=16)
    monitor = make_monitor("safemem")
    sampler = SamplingProfiler(machine, interval_cycles=sample_every,
                               group_source=leak_group_source(monitor))
    trend = TrendEngine(machine, seasonal_period=SEASON_PERIOD_CYCLES,
                        seasonal_phases=SEASON_PHASES)
    flat = TrendEngine(machine, emit_events=False,
                       register_probes=False)
    rules = [rule for detector in DETECTORS
             for rule in default_trend_rules(detector)]
    engine = AlertEngine(rules, events=machine.events,
                         metrics=machine.metrics, trend_source=trend)
    sampler.add_listener(trend.observe)
    sampler.add_listener(flat.observe)
    sampler.add_listener(engine.evaluate)
    sampler.start()
    try:
        result = run_workload(name, "safemem", buggy=buggy,
                              requests=requests, machine=machine,
                              monitor=monitor)
    finally:
        sampler.stop()
    reports = machine.events.of_kind(EventKind.LEAK_REPORT)
    fired = {}
    first_cycle = {}
    for detector in DETECTORS:
        rule_name = f"leak-trend-{detector}"
        firing = [transition.cycle for transition in engine.transitions
                  if transition.rule == rule_name
                  and transition.state == "firing"]
        fired[detector] = bool(firing)
        first_cycle[detector] = firing[0] if firing else None
    flat_group_onsets = [onset for onset in flat.onsets
                         if onset["series"].startswith("group:")]
    return SeasonScenarioRow(
        workload=name,
        buggy=buggy,
        cycles=result.cycles,
        samples=sampler.samples_taken,
        baseline_cycle=reports[0].cycle if reports else None,
        fired=fired,
        first_cycle=first_cycle,
        flat_onsets=len(flat_group_onsets),
        flat_first_cycle=(flat_group_onsets[0]["cycle"]
                          if flat_group_onsets else None),
    )


@dataclass
class SeasonHeadToHeadResult:
    """Seasonal-baseline vs flat detection on diurnal traffic."""

    sample_every: int
    rows: list

    def row(self, workload, buggy):
        for row in self.rows:
            if row.workload == workload and row.buggy == buggy:
                return row
        raise KeyError(f"no season scenario for ({workload}, {buggy})")

    def clean_seasonal_alerts(self):
        """Seasonal trend alerts across every clean diurnal run."""
        return sum(
            1 for row in self.rows if not row.buggy
            for caught in row.fired.values() if caught
        )

    def clean_flat_quiet(self):
        """Clean runs where the flat control raised NO false onset."""
        return [row.workload for row in self.rows
                if not row.buggy and row.flat_onsets == 0]

    def buggy_missed(self):
        """Buggy runs no seasonal detector caught."""
        return [row.workload for row in self.rows
                if row.buggy and not any(row.fired.values())]

    def render(self):
        from repro.obs.trend import DETECTORS

        def fmt_cycle(value):
            return f"{value:,}" if value is not None else "-"

        clean_rows = []
        buggy_rows = []
        for row in self.rows:
            if row.buggy:
                buggy_rows.append((
                    row.workload,
                    fmt_cycle(row.baseline_cycle),
                    *(fmt_cycle(row.first_cycle.get(d))
                      for d in DETECTORS),
                    row.flat_onsets,
                ))
            else:
                clean_rows.append((
                    row.workload,
                    sum(1 for caught in row.fired.values() if caught),
                    row.flat_onsets,
                    fmt_cycle(row.flat_first_cycle),
                ))
        clean = render_table(
            "Clean diurnal traffic: seasonal baseline vs flat "
            "detectors",
            ["App", "seasonal alerts", "flat false onsets",
             "first flat onset"],
            clean_rows,
            note="the flat control watches the identical samples with "
                 "no baseline; every onset on a clean run is a false "
                 "alarm",
        )
        buggy = render_table(
            "Injected leak under diurnal traffic: first seasonal "
            "alert cycle",
            ["App", "lifetime-outlier", *DETECTORS,
             "flat onsets"],
            buggy_rows,
            note=f"sampled every {self.sample_every:,} cycles; the "
                 f"seasonal baseline subtracts the diurnal swing, so "
                 f"a firing detector saw residual leak growth",
        )
        return clean + "\n\n" + buggy


def experiment_season_headtohead(requests=None,
                                 sample_every=SEASON_SAMPLE_EVERY):
    """The diurnal clean/buggy sweep (serial path; validation shards
    it)."""
    rows = []
    for name in SEASON_WORKLOADS:
        for buggy in (True, False):
            rows.append(season_scenario_row(name, buggy,
                                            requests=requests,
                                            sample_every=sample_every))
    return SeasonHeadToHeadResult(sample_every=sample_every, rows=rows)
