"""Sharded experiment fleet: parallel validation and fleet scenarios.

Every SafeMem experiment is an independent simulated machine, so the
whole evaluation shards cleanly across worker processes (the same shape
that lets GWP-ASan spread sampled detection across a production fleet).
This module provides the scheduler:

- :func:`enumerate_validation_jobs` breaks ``repro validate`` into
  per-workload **jobs** (one Table 3 row, one Table 4 row, ... each a
  self-contained simulation with declared parameters);
- :func:`run_jobs` fans jobs out over ``jobs`` worker processes
  (default ``os.cpu_count()``), collects their JSON-able payloads and
  per-machine telemetry dumps, and merges the telemetry into one
  fleet-wide snapshot (:mod:`repro.obs.merge`);
- :class:`ResultCache` memoizes completed job payloads keyed by
  ``(job config, code digest)`` so a no-op re-run is near-instant;
- :func:`run_validation` reassembles the shards into the *same* context
  dict, claim verdicts, and rendered tables the serial path produces --
  bit-identical, because both paths call the same per-workload unit
  functions in :mod:`repro.analysis.experiments` and the simulation is
  deterministic per (workload, config, seed);
- :func:`run_fleet` is the fleet-scale scenario: M concurrent simulated
  machines of one workload, telemetry aggregated across the fleet.

Payloads cross the process boundary (and enter the cache) in a
JSON-able encoding; the in-process ``jobs=1`` path round-trips through
the same encoding so serial and parallel runs cannot diverge through
the codec.  Telemetry dumps are *not* cached: merged fleet telemetry
describes machines that actually ran, so a fully-cached validation
reports no telemetry rather than stale telemetry.
"""

import atexit
import functools
import hashlib
import json
import multiprocessing
import os
import pathlib
from dataclasses import asdict, dataclass, field, replace

from repro.analysis.experiments import (
    FIGURE3_WORKLOADS,
    SEASON_SAMPLE_EVERY,
    SEASON_WORKLOADS,
    TREND_SAMPLE_EVERY,
    TREND_WORKLOADS,
    CodecMatrixResult,
    CodecTradeoffRow,
    Figure3Result,
    Figure3Series,
    SeasonHeadToHeadResult,
    SeasonScenarioRow,
    Table2Result,
    Table3Result,
    Table3Row,
    Table4Result,
    Table4Row,
    Table5Result,
    Table5Row,
    TrendHeadToHeadResult,
    TrendScenarioRow,
    codec_tradeoff_row,
    experiment_table2,
    figure3_series,
    season_scenario_row,
    table3_row,
    table4_row,
    table5_row,
    trend_scenario_row,
)
from repro.analysis.runner import (
    add_boot_tap,
    add_run_tap,
    overhead_percent,
    remove_boot_tap,
    remove_run_tap,
    run_workload,
)
from repro.common.digest import package_digest
from repro.common.errors import (
    ConfigurationError,
    FleetError,
    MachinePanic,
)
from repro.core.sampling import SamplingPolicy
from repro.ecc.profile import profile_names
from repro.obs.merge import (
    dump_registry,
    merge_dumps,
    merge_history_documents,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.stack import MonitorStackConfig, build_monitor_stack
from repro.workloads.registry import (
    LEAK_WORKLOADS,
    WORKLOADS,
    all_workload_names,
)

CACHE_SCHEMA = "repro.fleet-cache/v1"


# ----------------------------------------------------------------------
# Job model: (kind, ident, params) tuples -- picklable, cacheable
# ----------------------------------------------------------------------
def _encode_table2(result):
    return {"rows": [list(row) for row in result.rows]}


def _decode_table2(payload):
    return Table2Result(rows=[
        (name, measured, reference)
        for name, measured, reference in payload["rows"]
    ])


def _decode_figure3_series(payload):
    series = Figure3Series(
        workload=payload["workload"],
        points=[tuple(point) for point in payload["points"]],
        total_groups=payload["total_groups"],
    )
    return series, payload["run_seconds"]


@dataclass(frozen=True)
class _JobKind:
    run: object      # params dict -> payload object
    encode: object   # payload object -> JSON-able dict
    decode: object   # JSON-able dict -> payload object


def _machine_stack_config(params):
    """The machine's :class:`MonitorStackConfig`, new or legacy params.

    New-style fleet params carry a ``stack`` dict (the per-machine
    config, sampling seed already derived); legacy dicts carry loose
    ``sample_every``/``rules`` keys and are normalized here so cached
    or hand-built job specs keep working.
    """
    stack = params.get("stack")
    if stack is not None:
        return MonitorStackConfig.from_dict(stack)
    return MonitorStackConfig(
        monitor=params["monitor"],
        sample_every=params.get("sample_every"),
        rules=params.get("rules", "default"),
    ).validate()


def _machine_detected(workload, buggy, monitor_name, result):
    """Did this machine's monitor catch the workload's injected bug?

    Mirrors :func:`repro.analysis.experiments.detection_succeeded`, but
    tolerates monitors without report lists (profiler, native) so a
    mixed fleet still tallies.
    """
    if not buggy or monitor_name == "native":
        return False
    bug = WORKLOADS[workload].bug
    if bug is None:
        return False
    monitor = result.monitor
    if bug in ("overflow", "uaf"):
        return bool(getattr(monitor, "corruption_reports", ()) or ()) \
            and result.truth.corruption is not None
    reported = {report.object_address for report in
                getattr(monitor, "leak_reports", ()) or ()}
    return bool(reported & result.truth.leaked_addresses)


def _run_fleet_machine(params):
    """One fleet machine: run the workload, summarize the outcome.

    The machine's monitoring stack is described by ``params["stack"]``
    (a :class:`~repro.obs.stack.MonitorStackConfig` dict).  With an
    allocation :class:`~repro.core.sampling.SamplingPolicy` the monitor
    runs in sampled production mode; with ``sample_every`` the machine
    also runs the sampling profiler + alert engine.  Either way the run
    tap's registry dump carries ``safemem.sampling.*`` /
    ``sampler.*`` / ``alerts.*`` metrics into the fleet merge
    (counters sum, giving fleet-wide totals).
    """
    config = _machine_stack_config(params)
    stack = None
    machine = monitor = None
    run_info = None
    if config.wants_checkpoints:
        # The checkpoint scheduler records the run description in each
        # checkpoint document.  Forensic dumps in fleet mode are armed
        # by run_jobs' boot tap, not by the stack, so strip the dump
        # config here -- otherwise run_info would arm a second
        # recorder.
        run_info = {"workload": params["workload"],
                    "monitor": params["monitor"],
                    "buggy": params["buggy"],
                    "requests": params["requests"],
                    "seed": params["seed"]}
        config = replace(config, dump_dir=None, dump_on_alert=False)
    if config.sampling is not None or config.wants_profiler \
            or config.stream is not None or config.wants_checkpoints \
            or params.get("forensics"):
        # Pre-boot the full stack so the monitoring components (and, in
        # forensic mode, the panic handler below) can see the machine.
        stack = build_monitor_stack(config,
                                    label=f"m{params['index']}",
                                    run_info=run_info)
        machine, monitor = stack.machine, stack.monitor
        stack.start()
    try:
        result = run_workload(
            params["workload"], params["monitor"], buggy=params["buggy"],
            requests=params["requests"], seed=params["seed"],
            machine=machine, monitor=monitor, profile=config.profile,
            request_hook=(stack.request_hook
                          if stack is not None else None),
        )
        history_doc = (stack.history.to_dict()
                       if stack is not None and stack.history is not None
                       else None)
        checkpoint_paths = ([str(path) for path in stack.checkpoint_paths]
                            if stack is not None else [])
    except MachinePanic as error:
        if machine is None:
            raise
        # Forensic mode: the attached recorder already dumped the
        # machine at the PANIC event; turn the crash into a report row
        # so the rest of the fleet still renders (with the dump linked).
        return MachineReport(
            index=params["index"],
            seed=params["seed"],
            cycles=machine.clock.cycles,
            requests_completed=0,
            requests=params["requests"] or 0,
            detection=f"panic: {error}",
            leak_reports=len(getattr(monitor, "leak_reports", ()) or ()),
            corruption_reports=len(
                getattr(monitor, "corruption_reports", ()) or ()),
            overhead_pct=None,
            alerts_fired=stack.alerts_fired,
            alerts_resolved=stack.alerts_resolved,
        )
    finally:
        if stack is not None:
            stack.stop()
            stack.close()
    truth = result.truth
    overhead = None
    if params["monitor"] != "native" and truth.detection is None:
        native = run_workload(
            params["workload"], "native", buggy=params["buggy"],
            requests=params["requests"], seed=params["seed"],
        )
        overhead = overhead_percent(result.cycles, native.cycles)
    monitor = result.monitor
    return MachineReport(
        index=params["index"],
        seed=params["seed"],
        cycles=result.cycles,
        requests_completed=truth.requests_completed,
        requests=result.requests,
        detection=(str(truth.detection.report)
                   if truth.detection is not None else None),
        leak_reports=len(getattr(monitor, "leak_reports", ()) or ()),
        corruption_reports=len(
            getattr(monitor, "corruption_reports", ()) or ()),
        overhead_pct=overhead,
        alerts_fired=stack.alerts_fired if stack is not None else 0,
        alerts_resolved=(stack.alerts_resolved
                         if stack is not None else 0),
        detected=_machine_detected(params["workload"], params["buggy"],
                                   params["monitor"], result),
        history=history_doc,
        checkpoints=checkpoint_paths,
    )


JOB_KINDS = {
    "table2": _JobKind(
        run=lambda params: experiment_table2(),
        encode=_encode_table2,
        decode=_decode_table2,
    ),
    "table3-row": _JobKind(
        run=lambda params: table3_row(
            params["name"], requests=params["requests"],
            detection_requests=params["detection_requests"]),
        encode=asdict,
        decode=lambda payload: Table3Row(**payload),
    ),
    "table4-row": _JobKind(
        run=lambda params: table4_row(
            params["name"], requests=params["requests"]),
        encode=asdict,
        decode=lambda payload: Table4Row(**payload),
    ),
    "table5-row": _JobKind(
        run=lambda params: table5_row(
            params["name"], requests=params["requests"]),
        encode=asdict,
        decode=lambda payload: Table5Row(**payload),
    ),
    "figure3-series": _JobKind(
        run=lambda params: figure3_series(
            params["name"], requests=params["requests"]),
        encode=lambda payload: {**asdict(payload[0]),
                                "run_seconds": payload[1]},
        decode=_decode_figure3_series,
    ),
    "fleet-machine": _JobKind(
        run=_run_fleet_machine,
        encode=asdict,
        decode=lambda payload: MachineReport(**payload),
    ),
    "codec-row": _JobKind(
        run=lambda params: codec_tradeoff_row(params["profile"]),
        encode=asdict,
        decode=lambda payload: CodecTradeoffRow(**payload),
    ),
    "sampling-point": _JobKind(
        run=lambda params: sampling_curve_point(
            params["rate"], workload=params["workload"],
            machines=params["machines"], requests=params["requests"],
            base_seed=params["seed"]),
        encode=asdict,
        decode=lambda payload: SamplingPoint(**payload),
    ),
    "trend-scenario": _JobKind(
        run=lambda params: trend_scenario_row(
            params["name"], params["buggy"],
            requests=params["requests"],
            sample_every=params["sample_every"]),
        encode=asdict,
        decode=lambda payload: TrendScenarioRow(**payload),
    ),
    "season-scenario": _JobKind(
        run=lambda params: season_scenario_row(
            params["name"], params["buggy"],
            requests=params["requests"],
            sample_every=params["sample_every"]),
        encode=asdict,
        decode=lambda payload: SeasonScenarioRow(**payload),
    ),
}


def enumerate_validation_jobs(requests=250):
    """The validation run as independent jobs, in canonical order."""
    specs = [("table2", "table2", {})]
    for name in all_workload_names():
        specs.append(("table3-row", f"table3:{name}",
                      {"name": name, "requests": requests,
                       "detection_requests": None}))
    for name in all_workload_names():
        specs.append(("table4-row", f"table4:{name}",
                      {"name": name, "requests": requests}))
    for name in LEAK_WORKLOADS:
        specs.append(("table5-row", f"table5:{name}",
                      {"name": name, "requests": None}))
    for name in FIGURE3_WORKLOADS:
        specs.append(("figure3-series", f"figure3:{name}",
                      {"name": name, "requests": None}))
    for name in profile_names():
        specs.append(("codec-row", f"codec:{name}",
                      {"profile": name}))
    for rate in SAMPLING_CURVE_RATES:
        specs.append(("sampling-point", f"sampling:{rate:g}",
                      {"rate": rate,
                       "workload": SAMPLING_CURVE_WORKLOAD,
                       "machines": SAMPLING_CURVE_MACHINES,
                       "requests": None, "seed": 0}))
    for name in TREND_WORKLOADS:
        for buggy in (True, False):
            label = "buggy" if buggy else "clean"
            specs.append(("trend-scenario", f"trend:{name}:{label}",
                          {"name": name, "buggy": buggy,
                           "requests": None,
                           "sample_every": TREND_SAMPLE_EVERY}))
    for name in SEASON_WORKLOADS:
        for buggy in (True, False):
            label = "buggy" if buggy else "clean"
            specs.append(("season-scenario", f"season:{name}:{label}",
                          {"name": name, "buggy": buggy,
                           "requests": None,
                           "sample_every": SEASON_SAMPLE_EVERY}))
    return specs


# ----------------------------------------------------------------------
# Result cache: (job config, code digest) -> payload
# ----------------------------------------------------------------------
def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the CWD."""
    return pathlib.Path(os.environ.get("REPRO_CACHE_DIR",
                                       ".repro-cache"))


class ResultCache:
    """Experiment payloads keyed by job config + source digest.

    Any change to the job parameters or to any ``repro`` source file
    produces a new key, so stale hits are impossible as long as the
    simulation itself stays deterministic (it is: no wall-clock, no
    unseeded randomness).
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, spec, code_digest=None):
        kind, ident, params = spec
        material = json.dumps(
            {"kind": kind, "ident": ident, "params": params,
             "code": code_digest or package_digest()},
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def load(self, key):
        path = self.root / f"{key}.json"
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            return None
        return entry

    def store(self, key, spec, payload):
        kind, ident, params = spec
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "kind": kind, "ident": ident,
                 "params": params, "payload": payload}
        path = self.root / f"{key}.json"
        staging = path.with_suffix(".tmp")
        staging.write_text(json.dumps(entry, sort_keys=True) + "\n")
        staging.replace(path)


# ----------------------------------------------------------------------
# Execution: one job per task, in-process or over a worker pool
# ----------------------------------------------------------------------
#: The persistent warm pool.  Spawning a fresh Pool per run_jobs call
#: was costing more than the sharding won back (BENCH_fleet.json once
#: recorded --jobs 4 at 0.34x serial); workers are now spawned once and
#: reused for every subsequent fan-out of the same width.
_POOL = None
_POOL_WORKERS = 0


def _warm_pool(workers):
    """Return the shared pool, (re)creating it only on a width change."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        shutdown_pool()
    if _POOL is None:
        _POOL = multiprocessing.Pool(processes=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool():
    """Tear down the warm pool (atexit hook; also a test seam)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)
def _execute_job(spec, dump_dir=None, dump_on_alert=False):
    """Run one job; returns (ident, payload, dumps, bundles, error).

    Top-level so it pickles under any multiprocessing start method.  A
    run tap captures every machine the job boots (each ``run_workload``
    call builds a fresh machine, so absolute registry state is per-run
    state and the dumps never double count).

    With ``dump_dir`` set, a boot tap additionally attaches a
    :class:`~repro.obs.forensics.ForensicRecorder` to every machine the
    job boots: a kernel PANIC (and, with ``dump_on_alert``, any alert
    reaching ``firing``) auto-writes a ``repro.dump/v1`` bundle there,
    even when the job itself comes back as an error.
    """
    kind, ident, params = spec
    dumps = []
    recorders = []
    tap = add_run_tap(
        lambda result: dumps.append(dump_registry(result.machine.metrics))
    )
    boot_tap = None
    if dump_dir is not None:
        from repro.obs.forensics import ForensicRecorder

        def _attach_recorder(machine, monitor, run_info):
            info = dict(run_info)
            stacked = (params.get("stack")
                       if isinstance(params, dict) else None)
            if stacked and stacked.get("monitor") == info.get("monitor"):
                # Record the monitoring stack so replay recreates it:
                # the alert engine's ALERT events and the allocation
                # sampler's heap routing are both part of the stream a
                # bit-exact replay must reproduce.  (The guard skips
                # the machine's native overhead twin.)
                config = MonitorStackConfig.from_dict(stacked)
                monitoring = {}
                if config.wants_profiler:
                    from repro.obs.alerts import resolve_rules
                    monitoring["sample_every"] = config.sample_every
                    monitoring["rules"] = [
                        rule.to_dict()
                        for rule in resolve_rules(config.rules)
                    ]
                if config.sampling is not None:
                    monitoring["sampling"] = config.sampling.to_dict()
                if config.wants_trend:
                    from repro.obs.trend import DEFAULT_WINDOW
                    monitoring["trend"] = {
                        "detector": config.trend,
                        "window": config.trend_window or DEFAULT_WINDOW,
                    }
                if monitoring:
                    info["monitoring"] = monitoring
            label = ident.replace(":", "-")
            recorders.append(ForensicRecorder(
                machine, monitor=monitor, run_info=info,
                dump_dir=dump_dir, label=f"{label}-{len(recorders)}",
                on_alert=dump_on_alert,
            ))

        boot_tap = add_boot_tap(_attach_recorder)
    try:
        payload = JOB_KINDS[kind].run(params)
        encoded = JOB_KINDS[kind].encode(payload)
        bundles = _collect_bundles(recorders)
        if kind == "fleet-machine" and bundles:
            # Link the dumps from the row's own report (asdict keeps
            # the field, so the codec round-trips it).
            encoded["bundles"] = bundles
        return ident, encoded, dumps, bundles, None
    except Exception as error:
        return (ident, None, dumps, _collect_bundles(recorders),
                f"{type(error).__name__}: {error}")
    finally:
        remove_run_tap(tap)
        if boot_tap is not None:
            remove_boot_tap(boot_tap)
        for recorder in recorders:
            recorder.detach()


def _collect_bundles(recorders):
    return [str(path) for recorder in recorders
            for path in recorder.bundle_paths]


@dataclass
class FleetOutcome:
    """Everything a sharded run produced."""

    #: ident -> decoded payload object.
    payloads: dict
    #: merged fleet telemetry (a Snapshot), or None when nothing ran.
    metrics: object
    #: raw per-machine registry dumps (merge input; empty on cache hits).
    dumps: list = field(default_factory=list)
    #: forensic bundle paths written by machines in this run.
    bundles: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1


def resolve_jobs(jobs):
    """``None`` means one worker per CPU (the fleet default)."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def run_jobs(specs, jobs=None, cache=None, dump_dir=None,
             dump_on_alert=False):
    """Run job specs (sharded over processes when ``jobs > 1``).

    Payloads come back decoded, keyed by ident.  Any job error raises
    :class:`FleetError` naming every failed shard -- matching the
    serial path, which would have propagated the first exception.
    With ``dump_dir``, every booted machine carries a forensic
    recorder; bundle paths are aggregated into the outcome (and onto
    the raised ``FleetError.bundles``, so a crashed shard's dump is
    still reachable).
    """
    jobs = resolve_jobs(jobs)
    idents = [spec[1] for spec in specs]
    if len(set(idents)) != len(idents):
        raise ConfigurationError("duplicate job idents in fleet run")

    encoded = {}
    hits = misses = 0
    pending = []
    for spec in specs:
        if cache is not None:
            key = cache.key_for(spec)
            entry = cache.load(key)
            if entry is not None:
                encoded[spec[1]] = entry["payload"]
                hits += 1
                continue
            misses += 1
        pending.append(spec)

    dumps = []
    bundles = []
    failures = {}
    # Effective parallelism: never more workers than shards, and never
    # more than CPUs -- oversubscribing a small box just pays spawn and
    # scheduling cost to lose to serial.  A fan-out that degenerates to
    # one worker (or one shard, where a worker round-trip can't beat
    # the spawn cost) runs in-process instead; the payloads still
    # round-trip the codec, so the results cannot diverge.
    workers = min(jobs, len(pending), os.cpu_count() or 1) or 1
    execute = functools.partial(_execute_job, dump_dir=dump_dir,
                                dump_on_alert=dump_on_alert)
    if pending:
        if workers > 1 and len(pending) > 1:
            pool = _warm_pool(workers)
            # Job-size-aware dispatch: a few round trips per worker
            # amortizes IPC without starving the tail.
            chunksize = max(1, len(pending) // (workers * 4))
            outcomes = list(pool.imap_unordered(execute, pending,
                                                chunksize=chunksize))
        else:
            workers = 1
            outcomes = [execute(spec) for spec in pending]
        by_ident = {spec[1]: spec for spec in pending}
        for ident, payload, job_dumps, job_bundles, error in outcomes:
            dumps.extend(job_dumps)
            bundles.extend(job_bundles)
            if error is not None:
                failures[ident] = error
                continue
            encoded[ident] = payload
            if cache is not None:
                spec = by_ident[ident]
                cache.store(cache.key_for(spec), spec, payload)
    if failures:
        error = FleetError(failures)
        error.bundles = bundles
        raise error
    if cache is not None:
        cache.hits += hits
        cache.misses += misses

    kinds = {spec[1]: spec[0] for spec in specs}
    payloads = {ident: JOB_KINDS[kinds[ident]].decode(payload)
                for ident, payload in encoded.items()}
    return FleetOutcome(
        payloads=payloads,
        metrics=merge_dumps(dumps) if dumps else None,
        dumps=dumps,
        bundles=bundles,
        cache_hits=hits,
        cache_misses=misses,
        workers=workers,
    )


# ----------------------------------------------------------------------
# Validation assembly: shards -> the serial context, verbatim
# ----------------------------------------------------------------------
def assemble_context(payloads):
    """Rebuild the ``claims.gather_context`` dict from job payloads.

    Row order is the canonical workload order the serial loops use, so
    rendered tables match the serial output byte for byte.
    """
    series = []
    run_seconds = {}
    for name in FIGURE3_WORKLOADS:
        one, seconds = payloads[f"figure3:{name}"]
        series.append(one)
        run_seconds[name] = seconds
    return {
        "table2": payloads["table2"],
        "table3": Table3Result(rows=[
            payloads[f"table3:{name}"] for name in all_workload_names()
        ]),
        "table4": Table4Result(rows=[
            payloads[f"table4:{name}"] for name in all_workload_names()
        ]),
        "table5": Table5Result(rows=[
            payloads[f"table5:{name}"] for name in LEAK_WORKLOADS
        ]),
        "figure3": Figure3Result(series=series, run_seconds=run_seconds),
        "codecs": CodecMatrixResult(rows=[
            payloads[f"codec:{name}"] for name in profile_names()
        ]),
        "sampling": SamplingCurveResult(
            workload=SAMPLING_CURVE_WORKLOAD,
            machines=SAMPLING_CURVE_MACHINES,
            points=[payloads[f"sampling:{rate:g}"]
                    for rate in SAMPLING_CURVE_RATES],
        ),
        "trend": TrendHeadToHeadResult(
            sample_every=TREND_SAMPLE_EVERY,
            rows=[payloads[f"trend:{name}:{label}"]
                  for name in TREND_WORKLOADS
                  for label in ("buggy", "clean")],
        ),
        "season": SeasonHeadToHeadResult(
            sample_every=SEASON_SAMPLE_EVERY,
            rows=[payloads[f"season:{name}:{label}"]
                  for name in SEASON_WORKLOADS
                  for label in ("buggy", "clean")],
        ),
    }


@dataclass
class ValidationRun:
    """A full validation: claim results + context + fleet outcome."""

    results: list
    context: dict
    outcome: FleetOutcome

    @property
    def passed(self):
        return all(result.passed for result in self.results)

    def failed_idents(self):
        return [r.claim.ident for r in self.results if not r.passed]


def run_validation(requests=250, jobs=None, cache_dir=None,
                   use_cache=True, stack=None):
    """Sharded ``repro validate``: enumerate, fan out, merge, check.

    ``jobs=1`` runs every shard in-process (no pool) but still through
    the payload codec, so the only difference parallelism introduces is
    which process executed a shard.  ``stack`` (a
    :class:`~repro.obs.stack.MonitorStackConfig`) supplies the
    forensic settings: with a dump dir, any shard machine that panics
    leaves a ``repro.dump/v1`` bundle there.  (The claim experiments
    pin their own monitor configs, so the stack's monitor/sampling
    fields do not alter the validated runs.)
    """
    from repro.analysis.claims import validate
    if stack is None:
        stack = MonitorStackConfig()
    stack.validate()
    cache = None
    if use_cache:
        cache = ResultCache(cache_dir if cache_dir is not None
                            else default_cache_dir())
    specs = enumerate_validation_jobs(requests=requests)
    outcome = run_jobs(specs, jobs=jobs, cache=cache,
                       dump_dir=stack.resolved_dump_dir(),
                       dump_on_alert=stack.dump_on_alert)
    context = assemble_context(outcome.payloads)
    return ValidationRun(results=validate(context=context),
                         context=context, outcome=outcome)


RESULT_FILES = ("table2", "table3", "table4", "table5", "figure3",
                "codecs", "trend", "season")


def write_result_artifacts(context, results_dir):
    """Render every experiment into ``results/`` (benchmark layout).

    Same file names and format as the benchmark suite's ``publish``
    helper, so serial benchmarks, serial validate, and sharded validate
    all converge on one artifact layout.
    """
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in RESULT_FILES:
        path = results_dir / f"{name}.txt"
        path.write_text(context[name].render() + "\n")
        written.append(path)
    return written


# ----------------------------------------------------------------------
# Fleet scenario: M concurrent machines of one workload
# ----------------------------------------------------------------------
@dataclass
class MachineReport:
    """Summary of one fleet machine's run (crosses processes as JSON)."""

    index: int
    seed: int
    cycles: int
    requests_completed: int
    requests: int
    detection: object
    leak_reports: int
    corruption_reports: int
    overhead_pct: object
    #: alert-engine totals; 0 unless the fleet ran with sampling on.
    alerts_fired: int = 0
    alerts_resolved: int = 0
    #: forensic bundle paths this machine wrote (dump mode only).
    bundles: list = field(default_factory=list)
    #: did this machine's monitor catch the workload's injected bug?
    #: (always False on normal input or under the native monitor)
    detected: bool = False
    #: this machine's ``repro.history/v1`` document (``--history`` only).
    history: object = None
    #: checkpoint paths this machine wrote (``--checkpoint-every`` only).
    checkpoints: list = field(default_factory=list)


@dataclass
class FleetResult:
    """Aggregated outcome of M machines running one workload."""

    workload: str
    monitor: str
    buggy: bool
    reports: list
    #: merged fleet telemetry Snapshot (see repro.obs.merge).
    metrics: object
    workers: int

    @property
    def total_faults(self):
        return self.metrics.get("kernel.ecc_traps", 0) \
            if self.metrics is not None else 0

    @property
    def total_leak_reports(self):
        return sum(report.leak_reports for report in self.reports)

    @property
    def total_corruption_reports(self):
        return sum(report.corruption_reports for report in self.reports)

    @property
    def total_alerts_fired(self):
        return sum(report.alerts_fired for report in self.reports)

    @property
    def total_alerts_resolved(self):
        return sum(report.alerts_resolved for report in self.reports)

    @property
    def sampled(self):
        """True when the fleet ran with the monitoring stack enabled."""
        return self.metrics is not None and \
            "sampler.samples" in self.metrics.values

    @property
    def history(self):
        """Fleet-merged ``repro.history/v1`` document, or None.

        Each machine's tiered history crosses the process boundary on
        its :class:`MachineReport`; the merge is the same associative
        fold :mod:`repro.obs.merge` applies to metric dumps.
        """
        documents = [report.history for report in self.reports
                     if report.history]
        if not documents:
            return None
        return merge_history_documents(documents)

    @property
    def allocation_sampled(self):
        """True when machines ran with an allocation sampling policy."""
        return self.metrics is not None and \
            "safemem.sampling.sampled" in self.metrics.values

    @property
    def machines_detected(self):
        """Fleet-wide detection tally, read from the merged telemetry."""
        if self.metrics is not None and \
                "fleet.machines.detected" in self.metrics.values:
            return self.metrics.get("fleet.machines.detected", 0)
        return sum(1 for report in self.reports if report.detected)

    @property
    def detection_probability(self):
        """Fraction of fleet machines whose monitor caught the bug."""
        if not self.reports:
            return 0.0
        return self.machines_detected / len(self.reports)

    def overhead_distribution(self):
        """(min, median, max) overhead across machines, or None."""
        overheads = sorted(report.overhead_pct for report in self.reports
                           if report.overhead_pct is not None)
        if not overheads:
            return None
        return (overheads[0], overheads[len(overheads) // 2],
                overheads[-1])

    def render(self):
        from repro.analysis.tables import fmt_percent, render_table
        rows = []
        for report in self.reports:
            rows.append((
                report.index,
                report.seed,
                f"{report.cycles:,}",
                f"{report.requests_completed}/{report.requests}",
                (fmt_percent(report.overhead_pct)
                 if report.overhead_pct is not None else "-"),
                report.leak_reports,
                report.corruption_reports,
                report.detection or "-",
            ))
        distribution = self.overhead_distribution()
        note = (f"fleet totals: {self.total_faults} ECC faults, "
                f"{self.total_leak_reports} leak reports, "
                f"{self.total_corruption_reports} corruption reports")
        if self.sampled:
            note += (f"; {self.metrics.get('sampler.samples', 0)} "
                     f"samples, {self.total_alerts_fired} alerts fired "
                     f"/ {self.total_alerts_resolved} resolved")
        if self.allocation_sampled:
            note += (f"; allocation sampling: "
                     f"{self.metrics.get('safemem.sampling.sampled', 0)}"
                     f" sampled / "
                     f"{self.metrics.get('safemem.sampling.skipped', 0)}"
                     f" skipped")
        if self.buggy:
            note += (f"; detection "
                     f"{self.machines_detected}/{len(self.reports)} "
                     f"machines")
        if distribution is not None:
            low, median, high = distribution
            note += (f"; overhead min/median/max "
                     f"{fmt_percent(low)}/{fmt_percent(median)}/"
                     f"{fmt_percent(high)}")
        dumped = [(report.index, path) for report in self.reports
                  for path in report.bundles]
        if dumped:
            note += "\nforensic dumps:"
            for index, path in dumped:
                note += f"\n  machine {index}: {path}"
        checkpoints = [(report.index, path) for report in self.reports
                       for path in report.checkpoints]
        if checkpoints:
            note += "\ncheckpoints:"
            for index, path in checkpoints:
                note += f"\n  machine {index}: {path}"
        return render_table(
            f"Fleet: {len(self.reports)} machines of {self.workload} "
            f"under {self.monitor} "
            f"({'buggy' if self.buggy else 'normal'} input)",
            ["machine", "seed", "cycles", "requests", "overhead",
             "leaks", "corruption", "detection"],
            rows,
            note=note,
        )


def machine_seed(base_seed, index):
    """Workload seed of fleet machine ``index``.

    Pinned contract: ``base_seed + index`` -- each machine sees its own
    traffic, and machine 0 of ``base_seed=S`` replays exactly the solo
    run seeded ``S``.  The *sampling* seed of a machine is derived
    separately (:func:`repro.core.sampling.machine_sample_seed`, via
    ``MonitorStackConfig.for_machine``) so the sampling schedule is not
    correlated with the workload's request stream.
    """
    return base_seed + index


def _coerce_fleet_stack(stack, monitor):
    """Normalize run_fleet's monitoring arguments to one stack config."""
    if stack is None:
        return MonitorStackConfig(
            monitor=monitor if monitor is not None else "safemem",
        ).validate()
    if monitor is not None and monitor != stack.monitor:
        raise ConfigurationError(
            f"run_fleet(monitor={monitor!r}) conflicts with "
            f"stack.monitor={stack.monitor!r}")
    return stack.validate()


def run_fleet(workload, machines=4, monitor=None, requests=None,
              buggy=False, jobs=None, base_seed=0, stack=None):
    """Run ``machines`` simulated machines of one workload concurrently.

    Each machine gets its own workload seed (:func:`machine_seed`) so
    the fleet sees naturally varied traffic, and its telemetry merges
    into one fleet snapshot -- total faults, total reports, detection
    tallies, and an overhead distribution instead of a single anecdote.

    ``stack`` (a :class:`~repro.obs.stack.MonitorStackConfig`) is the
    one description of the per-machine monitoring stack: the monitor
    choice, an allocation :class:`~repro.core.sampling.SamplingPolicy`
    (each machine samples under its own derived seed, GWP-ASan style),
    the sampling profiler + alert engine (``sample_every``/``rules``),
    telemetry streaming, and forensic dumps.  ``monitor`` without a
    stack is shorthand for ``MonitorStackConfig(monitor=...)``.
    """
    if machines < 1:
        raise ConfigurationError(
            f"--machines must be >= 1, got {machines}")
    stack = _coerce_fleet_stack(stack, monitor)
    forensics = stack.wants_forensics
    specs = [
        ("fleet-machine", f"fleet:{workload}:{index}",
         {"workload": workload, "monitor": stack.monitor, "buggy": buggy,
          "requests": requests, "seed": machine_seed(base_seed, index),
          "index": index, "stack": stack.for_machine(index).to_dict(),
          "forensics": forensics})
        for index in range(machines)
    ]
    outcome = run_jobs(specs, jobs=jobs, cache=None,
                       dump_dir=stack.resolved_dump_dir(),
                       dump_on_alert=stack.dump_on_alert)
    reports = [outcome.payloads[f"fleet:{workload}:{index}"]
               for index in range(machines)]
    # Detection is aggregated through the same telemetry merge as every
    # other fleet-wide statistic: tally the per-machine outcomes into a
    # registry dump and fold it in with the machines' own dumps.
    tally = MetricsRegistry()
    detected = tally.counter(
        "fleet.machines.detected",
        "fleet machines whose monitor caught the injected bug")
    total = tally.counter("fleet.machines.total",
                          "fleet machines that ran to completion")
    for report in reports:
        total.inc()
        if report.detected:
            detected.inc()
    metrics = merge_dumps(outcome.dumps + [dump_registry(tally)])
    return FleetResult(workload=workload, monitor=stack.monitor,
                       buggy=buggy, reports=reports, metrics=metrics,
                       workers=outcome.workers)


# ----------------------------------------------------------------------
# Sampling curve: detection probability vs overhead across a fleet
# ----------------------------------------------------------------------
#: the curve's workload: an SLeak bug, because per-object lifetime
#: outlier detection still works on the sampled subset of allocations.
#: (ALeak detection thresholds on a group's *live count*, so at low
#: sampling rates a growing group never looks big enough -- fleet
#: sampling trades that detector away, which Figure 4's caption notes.)
SAMPLING_CURVE_WORKLOAD = "ypserv2"
#: ascending sampling rates: off, sparse, moderate, heavy, always-on.
SAMPLING_CURVE_RATES = (0.0, 0.02, 0.1, 0.5, 1.0)
SAMPLING_CURVE_MACHINES = 8


@dataclass
class SamplingPoint:
    """One (rate, fleet) measurement on the Figure 4 curve."""

    rate: float
    machines: int
    detected: int
    detection_probability: float
    #: mean per-machine overhead vs the native twin (None if no
    #: machine produced an overhead -- e.g. every machine panicked).
    mean_overhead_pct: object
    #: fleet totals of the allocation sampler's admission counters
    #: (0 at rate 1.0, which short-circuits to classic always-on).
    sampled_allocs: int
    skipped_allocs: int


@dataclass
class SamplingCurveResult:
    """Figure 4: detection probability vs overhead, fleet-sampled."""

    workload: str
    machines: int
    points: list

    def point(self, rate):
        for point in self.points:
            if point.rate == rate:
                return point
        raise KeyError(f"no sampling point at rate {rate!r}")

    def render(self):
        from repro.analysis.tables import fmt_percent, render_table
        rows = []
        for point in self.points:
            always_on = point.rate >= 1.0
            rows.append((
                f"{point.rate:g}",
                f"{point.detected}/{point.machines}",
                f"{point.detection_probability:.2f}",
                (fmt_percent(point.mean_overhead_pct)
                 if point.mean_overhead_pct is not None else "-"),
                "-" if always_on else point.sampled_allocs,
                "-" if always_on else point.skipped_allocs,
            ))
        return render_table(
            f"Figure 4. Detection probability vs overhead: "
            f"{self.machines}-machine fleet of {self.workload} under "
            f"sampled SafeMem",
            ["rate", "detected", "probability", "mean overhead",
             "sampled", "skipped"],
            rows,
            note=("rate 1.0 short-circuits to classic always-on "
                  "monitoring (no sampler on the hot path); each "
                  "machine samples under its own derived seed"),
        )


def sampling_curve_point(rate, workload=SAMPLING_CURVE_WORKLOAD,
                         machines=SAMPLING_CURVE_MACHINES,
                         requests=None, base_seed=0):
    """Measure one sampling rate across a buggy fleet.

    Runs in-process (``jobs=1``): a curve point is itself a shardable
    validation job, and pool workers must not spawn children.
    """
    stack = MonitorStackConfig(monitor="safemem",
                               sampling=SamplingPolicy(rate=rate))
    fleet = run_fleet(workload, machines=machines, requests=requests,
                      buggy=True, jobs=1, base_seed=base_seed,
                      stack=stack)
    overheads = [report.overhead_pct for report in fleet.reports
                 if report.overhead_pct is not None]
    return SamplingPoint(
        rate=rate,
        machines=machines,
        detected=fleet.machines_detected,
        detection_probability=fleet.detection_probability,
        mean_overhead_pct=(sum(overheads) / len(overheads)
                           if overheads else None),
        sampled_allocs=fleet.metrics.get("safemem.sampling.sampled", 0),
        skipped_allocs=fleet.metrics.get("safemem.sampling.skipped", 0),
    )


def experiment_sampling_curve(requests=None, rates=SAMPLING_CURVE_RATES,
                              workload=SAMPLING_CURVE_WORKLOAD,
                              machines=SAMPLING_CURVE_MACHINES,
                              base_seed=0):
    """The full Figure 4 sweep (serial path; validation shards it)."""
    return SamplingCurveResult(
        workload=workload,
        machines=machines,
        points=[sampling_curve_point(rate, workload=workload,
                                     machines=machines,
                                     requests=requests,
                                     base_seed=base_seed)
                for rate in rates],
    )
