"""Reference values from the paper, for side-by-side reporting.

Where the paper gives a per-cell number we record it; where only a
band is reported in the text (per-application overheads in Table 3 are
not individually recoverable from the source we reproduce from) we
record the band.
"""

#: Table 2: syscall microbenchmark (microseconds).
TABLE2_MICROSECONDS = {
    "WatchMemory": 2.0,
    "DisableWatchMemory": 1.5,
    "mprotect": 1.02,
}

#: Table 1 metadata (LOC and description per application).
TABLE1 = {
    "ypserv1": (11_200, "a NIS server", "Memory Leak"),
    "proftpd": (68_700, "a ftp server", "Memory Leak"),
    "squid1": (95_000, "a Web proxy cache server", "Memory Leak"),
    "ypserv2": (9_700, "a NIS server", "Memory Leak"),
    "gzip": (8_900, "a compression utility", "Memory Corruption"),
    "tar": (34_000, "an archiving utility", "Memory Corruption"),
    "squid2": (93_000, "a Web proxy cache server", "Memory Corruption"),
}

#: Table 3: SafeMem detects every bug; overhead bands from the text.
TABLE3_SAFEMEM_OVERHEAD_BAND = (1.6, 14.4)     # percent, ML+MC
TABLE3_PURIFY_SLOWDOWN_BAND = (4.8, 49.3)      # factor
TABLE3_GZIP_SAFEMEM_OVERHEAD = 3.0             # percent (named in text)
TABLE3_ALL_BUGS_DETECTED = True

#: Table 4: space overhead of ECC- vs page-protection.
TABLE4_ECC_BAND = (0.084, 334.0)               # percent
TABLE4_REDUCTION_BAND = (64.0, 74.0)           # factor

#: Table 5: leak false positives before/after ECC pruning.
TABLE5_FALSE_POSITIVES = {
    "ypserv1": (7, 0),
    "proftpd": (9, 0),
    "squid1": (13, 1),
    "ypserv2": (2, 0),
}

#: Figure 3: all memory object groups reach a stable maximal lifetime
#: "quickly in the very beginning of the program execution".
FIGURE3_APPS = ("ypserv", "proftpd", "squid")
