"""Combined experiment report: every table and figure in one document."""

import io
import time

from repro.analysis.experiments import (
    experiment_figure3,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
)

HEADER = """\
SafeMem reproduction -- full experiment report
===============================================

Every table and figure of "SafeMem: Exploiting ECC-Memory for Detecting
Memory Leaks and Memory Corruption During Production Runs" (HPCA 2005),
regenerated on the simulated machine.  Reference values/bands appear in
each table's note line; see EXPERIMENTS.md for the detailed
paper-vs-measured discussion.
"""


def generate_report(requests=250, stream=None):
    """Run all experiments and render one combined text report.

    ``requests`` scales the overhead runs (Tables 3 and 4); detection
    runs (Table 5) always use full-length inputs.  Returns the report
    string; also writes to ``stream`` if given.
    """
    out = io.StringIO()
    out.write(HEADER)
    out.write("\n")

    sections = (
        ("Table 2", lambda: experiment_table2()),
        ("Table 3", lambda: experiment_table3(requests=requests)),
        ("Table 4", lambda: experiment_table4(requests=requests)),
        ("Table 5", lambda: experiment_table5()),
        ("Figure 3", lambda: experiment_figure3()),
    )
    for name, runner in sections:
        started = time.time()
        result = runner()
        elapsed = time.time() - started
        out.write(result.render())
        out.write(f"\n[{name} regenerated in {elapsed:.1f}s wall]\n\n")

    report = out.getvalue()
    if stream is not None:
        stream.write(report)
    return report
