"""Experiment runner: drive a workload under a monitor, collect results."""

from dataclasses import dataclass, field

from repro.baselines.pageprot import PageProtGuard
from repro.baselines.purify import Purify
from repro.core.config import (
    corruption_only_config,
    full_config,
    leak_only_config,
)
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.monitor import NullMonitor
from repro.machine.program import Program
from repro.workloads.registry import get_workload

#: default machine sizing for all experiments (64 MiB "server" with a
#: 2 MiB last-level cache, so the workloads' buffer working sets fit
#: regardless of the allocator layout the attached monitor induces).
DRAM_SIZE = 64 * 1024 * 1024
HEAP_SIZE = 24 * 1024 * 1024
CACHE_SIZE = 2 * 1024 * 1024


@dataclass
class RunResult:
    """Outcome of one (workload, monitor, mode) run.

    ``cycles`` and ``metrics`` are *per-run deltas*: when a machine is
    reused across workloads they cover only this run, not the
    machine's lifetime totals.
    """

    workload: str
    monitor_name: str
    buggy: bool
    cycles: int
    truth: object
    monitor: object
    machine: object
    program: object = None
    requests: int = 0
    #: registry snapshot delta over this run (a Snapshot; counters are
    #: per-run, gauges are end-of-run values).
    metrics: object = None
    extra: dict = field(default_factory=dict)

    @property
    def cpu_seconds(self):
        from repro.common.constants import CYCLES_PER_SECOND
        return self.cycles / CYCLES_PER_SECOND


#: observers called with every finished :class:`RunResult`.  The fleet
#: scheduler installs a tap in each worker process to accumulate the
#: telemetry of every machine its jobs boot (the machines themselves
#: never cross the process boundary; their registry dumps do).
_RUN_TAPS = []


def add_run_tap(tap):
    """Register ``tap(result)`` to observe every finished run."""
    _RUN_TAPS.append(tap)
    return tap


def remove_run_tap(tap):
    """Unregister a tap installed with :func:`add_run_tap`."""
    _RUN_TAPS.remove(tap)


#: observers called with ``(machine, monitor, run_info)`` as each run
#: starts -- before the workload's first request, after the program is
#: mapped.  Forensic auto-dump uses this to attach a recorder to every
#: machine a validation shard boots, however deep in an experiment the
#: boot happens; ``run_info`` carries exactly the fields a
#: ``repro.dump/v1`` bundle needs to make the run replayable.
_BOOT_TAPS = []


def add_boot_tap(tap):
    """Register ``tap(machine, monitor, run_info)`` on run start."""
    _BOOT_TAPS.append(tap)
    return tap


def remove_boot_tap(tap):
    """Unregister a tap installed with :func:`add_boot_tap`."""
    _BOOT_TAPS.remove(tap)


MONITOR_FACTORIES = {
    "native": lambda: NullMonitor(),
    "profiler": lambda: _make_profiler(),
    "safemem-ml": lambda: SafeMem(leak_only_config()),
    "safemem-mc": lambda: SafeMem(corruption_only_config()),
    "safemem": lambda: SafeMem(full_config()),
    "purify": lambda: Purify(),
    "pageprot": lambda: PageProtGuard(),
}

#: monitors that understand an allocation :class:`SamplingPolicy`.
SAMPLING_CONFIGS = {
    "safemem-ml": leak_only_config,
    "safemem-mc": corruption_only_config,
    "safemem": full_config,
}


def _make_profiler():
    from repro.core.profiler import LifetimeProfiler
    return LifetimeProfiler()


def make_monitor(name, sampling=None):
    """Instantiate a monitor by its short experiment name.

    ``sampling`` (a :class:`~repro.core.sampling.SamplingPolicy`)
    builds the SafeMem variants in sampled production mode; requesting
    it for a monitor that can't sample is a configuration error rather
    than a silent always-on run.
    """
    if sampling is not None:
        try:
            config = SAMPLING_CONFIGS[name]
        except KeyError:
            from repro.common.errors import ConfigurationError
            raise ConfigurationError(
                f"monitor {name!r} does not support allocation "
                f"sampling; choose from {sorted(SAMPLING_CONFIGS)}"
            ) from None
        return SafeMem(config(sampling=sampling))
    try:
        return MONITOR_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown monitor {name!r}; choose from "
            f"{sorted(MONITOR_FACTORIES)}"
        ) from None


def run_workload(workload_name, monitor_name="native", buggy=False,
                 requests=None, seed=0, dram_size=DRAM_SIZE,
                 heap_size=HEAP_SIZE, cache_size=CACHE_SIZE,
                 monitor=None, machine=None, release=False,
                 profile=None, request_hook=None):
    """Run one workload under one monitor; return a :class:`RunResult`.

    ``buggy=False`` is the paper's overhead-measurement setting (normal
    inputs, the bug never fires); ``buggy=True`` is the detection run.
    Pass ``monitor`` to use a pre-built monitor instance (e.g. a
    SafeMem with a non-default config); ``monitor_name`` is then only
    used as the label.

    Pass ``machine`` to reuse a booted machine across workloads.  The
    result's ``cycles`` and ``metrics`` are registry snapshot deltas
    bracketing this run, so earlier runs on the same machine cannot
    skew its accounting.  The previous program's address space must
    have been released (``release=True`` does it for this run's
    program once the workload finishes).

    ``request_hook`` is passed through to
    :meth:`~repro.workloads.base.Workload.run` -- an observation-only
    callback at each request boundary (checkpoint capture).
    """
    if machine is None:
        machine = Machine(dram_size=dram_size, cache_size=cache_size,
                          cache_ways=16, profile=profile)
    if monitor is None:
        monitor = make_monitor(monitor_name)
    start = machine.metrics.snapshot()
    program = Program(machine, monitor=monitor, heap_size=heap_size)
    workload = get_workload(workload_name, requests=requests, seed=seed)
    if _BOOT_TAPS:
        run_info = {
            "workload": workload_name,
            "monitor": monitor_name,
            "buggy": buggy,
            "requests": workload.requests,
            "seed": seed,
            "heap_size": heap_size,
        }
        for tap in _BOOT_TAPS:
            tap(machine, monitor, run_info)
    with machine.tracer.span(f"workload.{workload_name}",
                             monitor=monitor_name, buggy=buggy):
        truth = workload.run(program, buggy=buggy,
                             request_hook=request_hook)
    if release:
        program.release()
    end = machine.metrics.snapshot()
    result = RunResult(
        workload=workload_name,
        monitor_name=monitor_name,
        buggy=buggy,
        cycles=end.cycle - start.cycle,
        truth=truth,
        monitor=monitor,
        machine=machine,
        program=program,
        requests=workload.requests,
        metrics=end.delta(start),
    )
    for tap in _RUN_TAPS:
        tap(result)
    return result


def overhead_percent(monitored_cycles, native_cycles):
    """Overhead of a monitored run as a percentage over native."""
    if native_cycles == 0:
        return 0.0
    return (monitored_cycles - native_cycles) / native_cycles * 100.0


def slowdown_factor(monitored_cycles, native_cycles):
    """Slowdown of a monitored run as a multiplier over native."""
    if native_cycles == 0:
        return 0.0
    return monitored_cycles / native_cycles
