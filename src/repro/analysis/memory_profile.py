"""Heap-growth profiles: the paper's motivation, measured.

Section 1/3 of the paper: trivial leaks only waste memory, but
*continuous* leaks grow the heap without bound, increase paging, and
eventually crash the program -- which is why they matter for
availability and are exploited for denial of service.  This module
samples a workload's live heap over time so experiments can show the
divergence between normal and buggy runs (and the swap pressure that
follows).
"""

from dataclasses import dataclass, field

from repro.analysis.runner import (
    CACHE_SIZE,
    DRAM_SIZE,
    HEAP_SIZE,
    make_monitor,
)
from repro.common.constants import CYCLES_PER_SECOND
from repro.machine.machine import Machine
from repro.machine.program import Program
from repro.workloads.registry import get_workload


@dataclass
class HeapProfile:
    """Samples of live heap bytes over CPU time."""

    workload: str
    buggy: bool
    #: (cpu_seconds, live_bytes) samples, one per request.
    samples: list = field(default_factory=list)
    swap_outs: int = 0

    @property
    def final_live_bytes(self):
        return self.samples[-1][1] if self.samples else 0

    def growth_rate_bytes_per_second(self):
        """Least-squares slope of live bytes over CPU time."""
        if len(self.samples) < 2:
            return 0.0
        n = len(self.samples)
        mean_t = sum(t for t, _b in self.samples) / n
        mean_b = sum(b for _t, b in self.samples) / n
        num = sum((t - mean_t) * (b - mean_b) for t, b in self.samples)
        den = sum((t - mean_t) ** 2 for t, _b in self.samples)
        return num / den if den else 0.0

    def second_half_growth(self):
        """Live-byte growth across the second half of the run.

        Steady-state servers stay flat once warmed up; continuous
        leaks keep climbing.
        """
        if len(self.samples) < 4:
            return 0
        half = len(self.samples) // 2
        return self.samples[-1][1] - self.samples[half][1]


class _SamplingHook:
    """Wraps a workload's handle_request to sample after each request."""

    def __init__(self, workload, program, profile):
        self.inner = workload.handle_request
        self.program = program
        self.profile = profile

    def __call__(self, program, index, buggy, truth):
        self.inner(program, index, buggy, truth)
        machine = program.machine
        self.profile.samples.append((
            machine.clock.cycles / CYCLES_PER_SECOND,
            program.allocator.live_bytes,
        ))


def profile_heap(workload_name, monitor_name="native", buggy=False,
                 requests=None, seed=0, dram_size=DRAM_SIZE,
                 heap_size=HEAP_SIZE):
    """Run a workload and sample its live heap after every request."""
    machine = Machine(dram_size=dram_size, cache_size=CACHE_SIZE,
                      cache_ways=16)
    monitor = make_monitor(monitor_name)
    program = Program(machine, monitor=monitor, heap_size=heap_size)
    workload = get_workload(workload_name, requests=requests, seed=seed)
    profile = HeapProfile(workload=workload_name, buggy=buggy)
    workload.handle_request = _SamplingHook(workload, program, profile)
    workload.run(program, buggy=buggy)
    profile.swap_outs = machine.swap.swap_outs
    return profile
