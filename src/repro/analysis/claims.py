"""Machine-checkable reproduction claims.

Every qualitative statement in EXPERIMENTS.md is encoded here as a
:class:`Claim` with a check function, so ``python -m repro validate``
can re-verify the whole reproduction in one command and print a
PASS/FAIL matrix.  The benchmarks assert the same properties; this
module is the single-command, human-facing version.
"""

from dataclasses import dataclass

from repro.analysis import paper
from repro.analysis.experiments import (
    experiment_codec_matrix,
    experiment_figure3,
    experiment_season_headtohead,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_trend_headtohead,
)


@dataclass
class Claim:
    """One verifiable statement about the reproduction."""

    ident: str
    statement: str
    #: callable(context) -> (passed: bool, evidence: str)
    check: object
    source: str  # which experiment feeds it


@dataclass
class ClaimResult:
    claim: Claim
    passed: bool
    evidence: str


def _t2_microseconds(context):
    rows = {name: (measured, reference)
            for name, measured, reference in context["table2"].rows}
    worst = max(abs(m - r) / r for m, r in rows.values())
    return worst < 0.10, f"max relative deviation {worst:.1%}"


def _t2_ordering(context):
    rows = {name: measured
            for name, measured, _r in context["table2"].rows}
    ok = rows["mprotect"] < rows["DisableWatchMemory"] < \
        rows["WatchMemory"]
    return ok, (f"mprotect {rows['mprotect']:.2f} < disable "
                f"{rows['DisableWatchMemory']:.2f} < watch "
                f"{rows['WatchMemory']:.2f} us")


def _t3_all_detected(context):
    rows = context["table3"].rows
    missed = [r.workload for r in rows if not r.detected]
    return not missed, f"missed: {missed}" if missed else "7/7 detected"


def _t3_band(context):
    # Steady-state overheads: whole-run numbers fold the fixed arming
    # cost over the request count, so the verdict used to flip with
    # the run length (short sharded runs recorded FAIL while the long
    # serial run recorded PASS).  The steady-state tail is length- and
    # shard-independent, making the claim deterministic.
    overheads = context["table3"].steady_overheads
    low, high = min(overheads), max(overheads)
    ok = 0 < low and high < 16.0
    return ok, f"steady-state ML+MC overhead spans {low:.1f}%-{high:.1f}%"


def _t3_purify_gap(context):
    rows = context["table3"].rows
    worst = min(r.reduction_factor for r in rows)
    return worst > 20, (f"SafeMem at least {worst:.0f}x cheaper than "
                        "Purify everywhere")


def _t3_mc_dominates_ml(context):
    rows = context["table3"].rows
    bad = [r.workload for r in rows if r.mc_overhead <= r.ml_overhead]
    return not bad, f"violations: {bad}" if bad else \
        "MC > ML for all 7 apps"


def _t4_reduction(context):
    reductions = context["table4"].reductions
    low, high = min(reductions), max(reductions)
    ok = low > 55 and high < 110
    return ok, f"reduction spans {low:.0f}x-{high:.0f}x (paper 64-74x)"


def _t5_exact(context):
    rows = {r.workload: r for r in context["table5"].rows}
    mismatches = []
    for app, (before, after) in paper.TABLE5_FALSE_POSITIVES.items():
        row = rows[app]
        if (row.before_pruning, row.after_pruning) != (before, after):
            mismatches.append(
                f"{app}: {row.before_pruning}->{row.after_pruning} "
                f"(paper {before}->{after})"
            )
    return not mismatches, "; ".join(mismatches) if mismatches else \
        "7/9/13/2 -> 0/0/1/0 exactly"


def _t5_true_leaks(context):
    rows = context["table5"].rows
    missing = [r.workload for r in rows if r.true_leaks_reported == 0]
    return not missing, f"no true leak reported for: {missing}" \
        if missing else "every leak app's bug reported"


def _f4_sampling(context):
    curve = context["sampling"]
    probs = [p.detection_probability for p in curve.points]
    if curve.point(0.0).detection_probability != 0.0:
        return False, "rate 0.0 detected something"
    if curve.point(1.0).detection_probability != 1.0:
        return False, (f"always-on fleet only detects "
                       f"{curve.point(1.0).detection_probability:.2f}")
    if any(a > b + 1e-9 for a, b in zip(probs, probs[1:])):
        return False, (f"detection probability not non-decreasing "
                       f"in rate: {probs}")
    sparse = min((p for p in curve.points if p.rate > 0),
                 key=lambda p: p.rate)
    full = curve.point(1.0)
    if sparse.mean_overhead_pct is None or full.mean_overhead_pct is None:
        return False, "missing overhead measurements"
    if sparse.mean_overhead_pct >= full.mean_overhead_pct / 4:
        return False, (f"rate {sparse.rate:g} overhead "
                       f"{sparse.mean_overhead_pct:.2f}% is not <1/4 "
                       f"of always-on {full.mean_overhead_pct:.2f}%")
    return True, (f"probability rises {probs[0]:.2f}->{probs[-1]:.2f} "
                  f"with rate; rate {sparse.rate:g} costs "
                  f"{sparse.mean_overhead_pct:.2f}% vs always-on "
                  f"{full.mean_overhead_pct:.2f}%")


def _f3_stability(context):
    for series in context["figure3"].series:
        run_s = context["figure3"].run_seconds[series.workload]
        if series.final_percent != 100.0:
            return False, f"{series.workload}: not all groups stable"
        if series.last_warmup_seconds >= 0.10 * run_s:
            return False, (f"{series.workload}: stabilized at "
                           f"{series.last_warmup_seconds:.3f}s of "
                           f"{run_s:.3f}s")
    return True, "all groups stable within the first 10% of each run"


def _hw_codecs(context):
    rows = context["codecs"].rows
    if len(rows) < 3:
        return False, f"only {len(rows)} chipset profiles measured"
    if len({row.codec for row in rows}) < 3:
        return False, "fewer than 3 distinct codecs in the matrix"
    broken = [row.profile for row in rows if not row.contract_ok]
    if broken:
        return False, f"watchpoint contract broken on: {broken}"
    repaired = [row.profile for row in rows
                if row.false_scrub_corrections]
    if repaired:
        return False, f"scrubber silently repaired armed lines: {repaired}"
    return True, (f"{len(rows)} profiles x "
                  f"{len({row.codec for row in rows})} codecs: scramble "
                  "uncorrectable, scrub reports armed lines untouched")


def _trend_headtohead(context):
    result = context["trend"]
    clean = result.clean_alerts()
    if clean:
        offenders = [
            f"{row.workload}/{detector}"
            for row in result.rows if not row.buggy
            for detector, caught in sorted(row.fired.items()) if caught
        ]
        return False, (f"{clean} trend alert(s) on clean runs: "
                       f"{offenders}")
    stats = result.detector_stats()
    wins = {detector: row["wins"] for detector, row in stats.items()}
    if not any(wins.values()):
        return False, ("no trend detector fired at or before the "
                       "lifetime-outlier baseline on any scenario")
    best = max(stats, key=lambda d: (stats[d]["recall"],
                                     stats[d]["wins"]))
    return True, (f"0 clean alerts; no-later-than-baseline scenarios "
                  f"{wins}; best recall {best} "
                  f"{stats[best]['recall']:.2f}")


def _season_headtohead(context):
    result = context["season"]
    clean = result.clean_seasonal_alerts()
    if clean:
        offenders = [
            f"{row.workload}/{detector}"
            for row in result.rows if not row.buggy
            for detector, caught in sorted(row.fired.items()) if caught
        ]
        return False, (f"{clean} seasonal alert(s) on clean diurnal "
                       f"runs: {offenders}")
    quiet = result.clean_flat_quiet()
    if quiet:
        return False, ("flat control raised no false onset on clean "
                       f"runs of: {quiet} -- the diurnal swing is not "
                       "fooling flat detectors, so the comparison is "
                       "vacuous")
    missed = result.buggy_missed()
    if missed:
        return False, (f"no seasonal detector caught the injected "
                       f"leak on: {missed}")
    flat_false = sum(row.flat_onsets for row in result.rows
                     if not row.buggy)
    return True, (f"0 seasonal alerts vs {flat_false} flat false "
                  f"onsets on clean diurnal runs; every injected leak "
                  f"still caught")


CLAIMS = [
    Claim("T2-values", "syscall costs match the paper's Table 2",
          _t2_microseconds, "table2"),
    Claim("T2-order", "mprotect < DisableWatchMemory < WatchMemory",
          _t2_ordering, "table2"),
    Claim("T3-detect", "SafeMem detects all seven bugs",
          _t3_all_detected, "table3"),
    Claim("T3-band", "SafeMem ML+MC stays in the production band "
          "at steady state", _t3_band, "table3"),
    Claim("T3-gap", "SafeMem is orders of magnitude cheaper than Purify",
          _t3_purify_gap, "table3"),
    Claim("T3-mc-ml", "corruption detection costs more than leak "
          "detection", _t3_mc_dominates_ml, "table3"),
    Claim("T4-reduction", "page guards waste ~64-74x more than ECC "
          "guards", _t4_reduction, "table4"),
    Claim("T5-counts", "false positives match the paper exactly",
          _t5_exact, "table5"),
    Claim("T5-bugs", "pruning never hides the real leak",
          _t5_true_leaks, "table5"),
    Claim("F3-stability", "group maximal lifetimes stabilize early",
          _f3_stability, "figure3"),
    Claim("F4-sampling", "fleet sampling trades detection probability "
          "for overhead", _f4_sampling, "sampling"),
    Claim("HW-codecs", "the watchpoint contract holds on every ECC "
          "codec backend", _hw_codecs, "codecs"),
    Claim("TREND-pr", "streaming trend detectors catch the injected "
          "leak no later than the lifetime-outlier method on at least "
          "one scenario, with zero alerts on clean runs",
          _trend_headtohead, "trend"),
    Claim("SEASON-pr", "the seasonal baseline raises zero trend "
          "alerts on clean diurnal traffic that false-alarms every "
          "flat detector, while still catching every injected leak",
          _season_headtohead, "season"),
]


def gather_context(requests=250):
    """Run every experiment once; claims share the results."""
    # Late import: the fleet scheduler lazily imports this module in
    # run_validation, so importing it eagerly here would be circular.
    from repro.analysis.fleet import experiment_sampling_curve
    return {
        "table2": experiment_table2(),
        "table3": experiment_table3(requests=requests),
        "table4": experiment_table4(requests=requests),
        "table5": experiment_table5(),
        "figure3": experiment_figure3(),
        "codecs": experiment_codec_matrix(),
        "sampling": experiment_sampling_curve(),
        "trend": experiment_trend_headtohead(),
        "season": experiment_season_headtohead(),
    }


def validate(requests=250, context=None):
    """Check every claim; returns a list of :class:`ClaimResult`."""
    if context is None:
        context = gather_context(requests=requests)
    results = []
    for claim in CLAIMS:
        try:
            passed, evidence = claim.check(context)
        except Exception as error:  # a crashed check is a failed claim
            passed, evidence = False, f"check raised {error!r}"
        results.append(ClaimResult(claim=claim, passed=passed,
                                   evidence=evidence))
    return results


def render_validation(results):
    from repro.analysis.tables import render_table
    rows = [
        (result.claim.ident,
         "PASS" if result.passed else "FAIL",
         result.claim.statement,
         result.evidence)
        for result in results
    ]
    failed = sum(1 for r in results if not r.passed)
    return render_table(
        f"Reproduction validation: {len(results) - failed}/"
        f"{len(results)} claims hold",
        ["claim", "status", "statement", "evidence"],
        rows,
    )


# ----------------------------------------------------------------------
# EXPERIMENTS.md claim block: machine-written, drift-proof
# ----------------------------------------------------------------------
#: markers bracketing the regenerable block in EXPERIMENTS.md.
BLOCK_BEGIN = "<!-- claim-matrix:begin (repro validate --write-experiments-md) -->"
BLOCK_END = "<!-- claim-matrix:end -->"


def render_experiments_block(results):
    """The fenced claim matrix committed in EXPERIMENTS.md.

    Deliberately shows each claim's *statement*, not its measured
    evidence: statements are stable across runs, so the committed block
    is deterministic and a tier-1 test can pin it without re-running
    the experiments.  Evidence lives in ``repro validate`` output.
    """
    passed = sum(1 for r in results if r.passed)
    width = max(len(r.claim.ident) for r in results) + 2
    lines = [
        BLOCK_BEGIN,
        f"{passed}/{len(results)} claims hold:",
        "",
        "```",
    ]
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"{result.claim.ident:<{width}}{status}  "
                     f"{result.claim.statement}")
    lines.extend(["```", BLOCK_END])
    return "\n".join(lines)


def expected_experiments_block():
    """The block as committed when every claim holds (test anchor)."""
    return render_experiments_block([
        ClaimResult(claim=claim, passed=True, evidence="")
        for claim in CLAIMS
    ])


def write_experiments_block(results, path):
    """Rewrite the marker-delimited block in ``path`` in place."""
    import pathlib
    path = pathlib.Path(path)
    text = path.read_text()
    begin = text.find(BLOCK_BEGIN)
    end = text.find(BLOCK_END)
    if begin == -1 or end == -1 or end < begin:
        raise ValueError(
            f"{path} has no {BLOCK_BEGIN!r}..{BLOCK_END!r} block to "
            "rewrite"
        )
    end += len(BLOCK_END)
    path.write_text(text[:begin] + render_experiments_block(results)
                    + text[end:])
    return path
