"""Plain-text rendering of paper-style tables."""


def render_table(title, headers, rows, note=None):
    """Render an aligned text table with a title banner."""
    columns = len(headers)
    normalized = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in normalized))
        if normalized else len(headers[i])
        for i in range(columns)
    ]

    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    rule = "-" * (sum(widths) + 2 * (columns - 1))
    out = [f"== {title} ==", line(headers), rule]
    out.extend(line(row) for row in normalized)
    if note:
        out.append(f"note: {note}")
    return "\n".join(out)


def fmt_percent(value, digits=2):
    return f"{value:.{digits}f}%"


def fmt_factor(value, digits=1):
    return f"{value:.{digits}f}x"


def fmt_band(low, high, suffix=""):
    return f"{low}-{high}{suffix}"


def render_series(title, series, x_label="x", y_label="y"):
    """Render an (x, y) series as aligned text (for 'figures')."""
    out = [f"== {title} ==", f"{x_label:>14}  {y_label}"]
    for x, y in series:
        out.append(f"{x:>14.4f}  {y:.1f}")
    return "\n".join(out)
