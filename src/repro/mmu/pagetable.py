"""Page table and physical-frame allocator for the simulated process.

ECC protection is tied to *physical* memory, so SafeMem must pin the
pages that contain watched lines (Section 2.2.2, "Dealing with Page
Swapping").  The page table tracks a pin count per page; the swap
policy (:mod:`repro.mmu.swap`) refuses to evict pinned pages; and the
kernel enforces a pinned-memory budget, reproducing the paper's noted
limitation that pinning bounds the total amount of monitored memory.
"""

from dataclasses import dataclass, field

from repro.common.constants import PAGE_SIZE
from repro.common.errors import ConfigurationError

#: Protection bits (a deliberately tiny POSIX-flavoured subset).
PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_RW = PROT_READ | PROT_WRITE


@dataclass
class PageTableEntry:
    """State of one virtual page."""

    vpn: int
    prot: int = PROT_RW
    pfn: int = None
    present: bool = False
    pin_count: int = 0
    last_access: int = 0
    in_swap: bool = False

    @property
    def pinned(self):
        return self.pin_count > 0


class FrameAllocator:
    """Free-list allocator over the installed physical frames."""

    def __init__(self, dram_size, reserved=0):
        if dram_size % PAGE_SIZE:
            raise ConfigurationError(
                f"DRAM size {dram_size} is not page aligned"
            )
        first = reserved // PAGE_SIZE
        self.total_frames = dram_size // PAGE_SIZE
        self._free = list(range(self.total_frames - 1, first - 1, -1))

    @property
    def free_frames(self):
        return len(self._free)

    def allocate(self):
        """Return a free frame number, or ``None`` when memory is full."""
        if not self._free:
            return None
        return self._free.pop()

    def release(self, pfn):
        self._free.append(pfn)


class PageTable:
    """Sparse map from virtual page number to :class:`PageTableEntry`."""

    def __init__(self):
        self._entries = {}

    def map_region(self, vaddr, size, prot=PROT_RW):
        """Declare ``[vaddr, vaddr+size)`` as valid (not yet resident)."""
        if vaddr % PAGE_SIZE or size % PAGE_SIZE or size <= 0:
            raise ConfigurationError(
                "regions must be page aligned and non-empty: "
                f"vaddr={vaddr:#x} size={size:#x}"
            )
        for vpn in range(vaddr // PAGE_SIZE, (vaddr + size) // PAGE_SIZE):
            if vpn in self._entries:
                raise ConfigurationError(
                    f"page {vpn:#x} is already mapped"
                )
            self._entries[vpn] = PageTableEntry(vpn=vpn, prot=prot)

    def unmap_region(self, vaddr, size):
        """Remove the mapping for ``[vaddr, vaddr+size)``.

        Returns the entries that were resident so the caller can free
        their frames.
        """
        if vaddr % PAGE_SIZE or size % PAGE_SIZE:
            raise ConfigurationError("unmap must be page aligned")
        removed = []
        for vpn in range(vaddr // PAGE_SIZE, (vaddr + size) // PAGE_SIZE):
            entry = self._entries.pop(vpn, None)
            if entry is not None:
                removed.append(entry)
        return removed

    def lookup(self, vaddr):
        """Return the entry for the page containing ``vaddr`` or None."""
        return self._entries.get(vaddr // PAGE_SIZE)

    def entry(self, vpn):
        return self._entries.get(vpn)

    def entries(self):
        return list(self._entries.values())

    def resident_entries(self):
        return [e for e in self._entries.values() if e.present]

    def __len__(self):
        return len(self._entries)
