"""Swap device and eviction policy.

Swapping is what forces the paper's pinning design: a watched page that
got swapped out and back in would land on a different physical frame,
silently losing its armed ECC state.  Our model keeps the same hazard:
page contents move through the swap device by *raw* DRAM copies (like a
DMA engine, uninspected by ECC), so any armed scramble on an evicted
page would be destroyed.  Pinned pages are never evicted, which is why
``WatchMemory`` pins.
"""

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import OutOfMemory


class SwapDevice:
    """Backing store for evicted pages, keyed by virtual page number."""

    def __init__(self, metrics=None):
        self._slots = {}
        self.swap_outs = 0
        self.swap_ins = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``swap.*`` probes into a metrics registry."""
        metrics.probe("swap.out", lambda: self.swap_outs,
                      kind="counter")
        metrics.probe("swap.in", lambda: self.swap_ins, kind="counter")
        metrics.probe("swap.slots", lambda: len(self._slots),
                      kind="gauge",
                      description="pages currently swapped out")

    def store(self, vpn, data):
        if len(data) != PAGE_SIZE:
            raise ValueError(f"swap slots hold whole pages, got {len(data)}")
        self._slots[vpn] = bytes(data)
        self.swap_outs += 1

    def load(self, vpn):
        data = self._slots.pop(vpn)
        self.swap_ins += 1
        return data

    def holds(self, vpn):
        return vpn in self._slots

    def peek(self, vpn):
        """Read a swapped page without swapping it back in."""
        return self._slots[vpn]

    def drop(self, vpn):
        self._slots.pop(vpn, None)

    def __len__(self):
        return len(self._slots)


class EvictionPolicy:
    """LRU eviction over resident, unpinned pages."""

    def __init__(self, page_table, frame_allocator, swap, dram, cache,
                 invalidate_translation=None):
        self.page_table = page_table
        self.frames = frame_allocator
        self.swap = swap
        self.dram = dram
        self.cache = cache
        #: Called with the victim's vpn on every eviction so the MMU can
        #: shoot down its (now stale) cached translation.
        self.invalidate_translation = invalidate_translation

    def obtain_frame(self):
        """Return a free frame, evicting the LRU unpinned page if needed."""
        pfn = self.frames.allocate()
        if pfn is not None:
            return pfn
        victim = self._pick_victim()
        if victim is None:
            raise OutOfMemory(
                "no free frames and every resident page is pinned"
            )
        self._evict(victim)
        pfn = self.frames.allocate()
        if pfn is None:
            raise OutOfMemory("eviction failed to free a frame")
        return pfn

    def _pick_victim(self):
        candidates = [
            entry
            for entry in self.page_table.resident_entries()
            if not entry.pinned
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda entry: entry.last_access)

    def _evict(self, entry):
        frame_base = entry.pfn * PAGE_SIZE
        # Write back any cached lines of the frame first, then copy the
        # page out through the raw (DMA-like) path.
        for line in range(frame_base, frame_base + PAGE_SIZE,
                          CACHE_LINE_SIZE):
            if self.cache.contains(line):
                self.cache.flush_line(line)
        self.swap.store(entry.vpn, self.dram.read_raw(frame_base, PAGE_SIZE))
        self.frames.release(entry.pfn)
        entry.pfn = None
        entry.present = False
        entry.in_swap = True
        if self.invalidate_translation is not None:
            self.invalidate_translation(entry.vpn)
