"""Virtual memory substrate: page table, MMU, swap."""

from repro.mmu.mmu import Mmu
from repro.mmu.pagetable import (
    PROT_NONE,
    PROT_READ,
    PROT_RW,
    PROT_WRITE,
    FrameAllocator,
    PageTable,
    PageTableEntry,
)
from repro.mmu.swap import EvictionPolicy, SwapDevice

__all__ = [
    "Mmu",
    "PROT_NONE",
    "PROT_READ",
    "PROT_RW",
    "PROT_WRITE",
    "FrameAllocator",
    "PageTable",
    "PageTableEntry",
    "EvictionPolicy",
    "SwapDevice",
]
