"""Memory management unit: translation, demand paging, protection.

Translation is the seam where the two guard mechanisms differ:

- the **page-protection baseline** revokes access bits with ``mprotect``
  and relies on :class:`~repro.common.errors.ProtectionFault` here,
- **ECC protection** leaves translation untouched -- its faults fire
  later, in the memory controller, at cache-line granularity.
"""

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import PageFault, ProtectionFault
from repro.mmu.pagetable import PROT_READ, PROT_WRITE
from repro.mmu.swap import EvictionPolicy


class Mmu:
    """Translates virtual addresses and services demand/swap faults."""

    def __init__(self, page_table, frame_allocator, swap, dram, cache,
                 controller):
        self.page_table = page_table
        self.frames = frame_allocator
        self.swap = swap
        self.dram = dram
        self.cache = cache
        self.controller = controller
        self.evictor = EvictionPolicy(
            page_table, frame_allocator, swap, dram, cache
        )
        self._stamp = 0
        self.demand_fills = 0
        self.swap_in_faults = 0

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, vaddr, write=False):
        """Return the physical address for ``vaddr`` or raise a fault.

        Raises :class:`PageFault` for unmapped addresses and
        :class:`ProtectionFault` when the page's protection bits forbid
        the access (the mprotect-guard path).
        """
        entry = self.page_table.lookup(vaddr)
        if entry is None:
            raise PageFault(vaddr)
        required = PROT_WRITE if write else PROT_READ
        if not entry.prot & required:
            raise ProtectionFault(vaddr, "write" if write else "read")
        if not entry.present:
            self._bring_in(entry)
        self._stamp += 1
        entry.last_access = self._stamp
        return entry.pfn * PAGE_SIZE + (vaddr % PAGE_SIZE)

    def resident_frame(self, vaddr):
        """Physical address of ``vaddr`` if resident, else ``None``.

        Unlike :meth:`translate` this never pages anything in; the
        kernel uses it for maintenance paths (flushes, scramble).
        """
        entry = self.page_table.lookup(vaddr)
        if entry is None or not entry.present:
            return None
        return entry.pfn * PAGE_SIZE + (vaddr % PAGE_SIZE)

    # ------------------------------------------------------------------
    # paging
    # ------------------------------------------------------------------
    def _bring_in(self, entry):
        pfn = self.evictor.obtain_frame()
        frame_base = pfn * PAGE_SIZE
        # Drop any stale cache lines from the frame's previous owner.
        for line in range(frame_base, frame_base + PAGE_SIZE,
                          CACHE_LINE_SIZE):
            self.cache.invalidate_line(line)
        if entry.in_swap:
            data = self.swap.load(entry.vpn)
            entry.in_swap = False
            self.swap_in_faults += 1
        else:
            data = bytes(PAGE_SIZE)
            self.demand_fills += 1
        # The fill goes through the controller with ECC enabled, so the
        # frame ends up with fresh, consistent check bits.  (This is why
        # an armed-but-unpinned page would lose its watchpoint across a
        # swap cycle -- the hazard that motivates pinning.)
        for offset in range(0, PAGE_SIZE, CACHE_LINE_SIZE):
            self.controller.write_line(
                frame_base + offset, data[offset:offset + CACHE_LINE_SIZE]
            )
        entry.pfn = pfn
        entry.present = True

    def ensure_resident(self, vaddr):
        """Page in (if needed) the page containing ``vaddr``."""
        entry = self.page_table.lookup(vaddr)
        if entry is None:
            raise PageFault(vaddr)
        if not entry.present:
            self._bring_in(entry)
        return entry
