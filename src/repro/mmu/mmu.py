"""Memory management unit: translation, demand paging, protection.

Translation is the seam where the two guard mechanisms differ:

- the **page-protection baseline** revokes access bits with ``mprotect``
  and relies on :class:`~repro.common.errors.ProtectionFault` here,
- **ECC protection** leaves translation untouched -- its faults fire
  later, in the memory controller, at cache-line granularity.
"""

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import PageFault, ProtectionFault
from repro.mmu.pagetable import PROT_READ, PROT_WRITE
from repro.mmu.swap import EvictionPolicy
from repro.obs.metrics import attr_reader as _attr_reader

#: Entries in the software TLB (direct-mapped, indexed by vpn % size).
TLB_SIZE = 64


class Mmu:
    """Translates virtual addresses and services demand/swap faults.

    Translation goes through a small direct-mapped software TLB: a hit
    serves the physical frame base from a cached snapshot instead of
    walking the page table.  Because the TLB caches the frame base and
    protection bits *by value*, every operation that changes a mapping
    (munmap, mprotect, swap eviction) must explicitly invalidate the
    affected entries -- the same shoot-down contract real hardware has.
    """

    def __init__(self, page_table, frame_allocator, swap, dram, cache,
                 controller, metrics=None):
        self.page_table = page_table
        self.frames = frame_allocator
        self.swap = swap
        self.dram = dram
        self.cache = cache
        self.controller = controller
        self.evictor = EvictionPolicy(
            page_table, frame_allocator, swap, dram, cache,
            invalidate_translation=self.tlb_invalidate_page,
        )
        self._stamp = 0
        self.demand_fills = 0
        self.swap_in_faults = 0
        #: TLB slot: ``(vpn, frame_base, prot, entry)`` or ``None``.
        self._tlb = [None] * TLB_SIZE
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.tlb_invalidations = 0
        self.tlb_flushes = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish the MMU counters as ``mmu.*`` registry probes.

        The counters stay plain integer attributes -- translation is
        the hottest path in the simulator, and an attribute increment
        is the cheapest record we can make -- so the registry samples
        them through probes instead of owning them.
        """
        for name, attr in (
            ("mmu.tlb.hit", "tlb_hits"),
            ("mmu.tlb.miss", "tlb_misses"),
            ("mmu.tlb.invalidation", "tlb_invalidations"),
            ("mmu.tlb.flush", "tlb_flushes"),
            ("mmu.demand_fill", "demand_fills"),
            ("mmu.swap_in_fault", "swap_in_faults"),
        ):
            metrics.probe(name, _attr_reader(self, attr),
                          kind="counter")

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def translate(self, vaddr, write=False):
        """Return the physical address for ``vaddr`` or raise a fault.

        Raises :class:`PageFault` for unmapped addresses and
        :class:`ProtectionFault` when the page's protection bits forbid
        the access (the mprotect-guard path).
        """
        vpn, offset = divmod(vaddr, PAGE_SIZE)
        slot = self._tlb[vpn % TLB_SIZE]
        if (slot is not None and slot[0] == vpn
                and slot[2] & (PROT_WRITE if write else PROT_READ)):
            self.tlb_hits += 1
            self._stamp += 1
            slot[3].last_access = self._stamp
            return slot[1] + offset
        self.tlb_misses += 1
        return self._translate_slow(vaddr, write)

    def translate_fast(self, vaddr, write=False):
        """TLB-hit-only translation: the physical address, or ``None``.

        Never walks the page table, pages anything in, or raises; the
        machine's short-circuit access path uses this and falls back to
        :meth:`translate` on ``None``.  (A hit here that later falls
        back -- e.g. because the cache line was not resident -- counts
        one extra ``tlb_hits``; the access itself stays correct.)
        """
        vpn, offset = divmod(vaddr, PAGE_SIZE)
        slot = self._tlb[vpn % TLB_SIZE]
        if (slot is not None and slot[0] == vpn
                and slot[2] & (PROT_WRITE if write else PROT_READ)):
            self.tlb_hits += 1
            self._stamp += 1
            slot[3].last_access = self._stamp
            return slot[1] + offset
        return None

    def _translate_slow(self, vaddr, write):
        """Full page-table walk; refills the TLB on success."""
        entry = self.page_table.lookup(vaddr)
        if entry is None:
            raise PageFault(vaddr)
        required = PROT_WRITE if write else PROT_READ
        if not entry.prot & required:
            raise ProtectionFault(vaddr, "write" if write else "read")
        if not entry.present:
            self._bring_in(entry)
        self._stamp += 1
        entry.last_access = self._stamp
        frame_base = entry.pfn * PAGE_SIZE
        self._tlb[entry.vpn % TLB_SIZE] = (
            entry.vpn, frame_base, entry.prot, entry
        )
        return frame_base + (vaddr % PAGE_SIZE)

    # ------------------------------------------------------------------
    # TLB maintenance (the shoot-down contract)
    # ------------------------------------------------------------------
    def tlb_invalidate_page(self, vpn):
        """Drop the cached translation for one virtual page number."""
        index = vpn % TLB_SIZE
        slot = self._tlb[index]
        if slot is not None and slot[0] == vpn:
            self._tlb[index] = None
            self.tlb_invalidations += 1

    def tlb_invalidate_range(self, vaddr, size):
        """Drop cached translations for every page in the range."""
        first = vaddr // PAGE_SIZE
        last = (vaddr + size - 1) // PAGE_SIZE
        for vpn in range(first, last + 1):
            self.tlb_invalidate_page(vpn)

    def tlb_flush(self):
        """Drop every cached translation (full shoot-down)."""
        self._tlb = [None] * TLB_SIZE
        self.tlb_flushes += 1

    def tlb_lookup(self, vaddr):
        """Current TLB snapshot for ``vaddr`` (test/introspection aid)."""
        vpn = vaddr // PAGE_SIZE
        slot = self._tlb[vpn % TLB_SIZE]
        if slot is not None and slot[0] == vpn:
            return slot
        return None

    def resident_frame(self, vaddr):
        """Physical address of ``vaddr`` if resident, else ``None``.

        Unlike :meth:`translate` this never pages anything in; the
        kernel uses it for maintenance paths (flushes, scramble).
        """
        entry = self.page_table.lookup(vaddr)
        if entry is None or not entry.present:
            return None
        return entry.pfn * PAGE_SIZE + (vaddr % PAGE_SIZE)

    # ------------------------------------------------------------------
    # paging
    # ------------------------------------------------------------------
    def _bring_in(self, entry):
        pfn = self.evictor.obtain_frame()
        frame_base = pfn * PAGE_SIZE
        # Drop any stale cache lines from the frame's previous owner.
        for line in range(frame_base, frame_base + PAGE_SIZE,
                          CACHE_LINE_SIZE):
            self.cache.invalidate_line(line)
        if entry.in_swap:
            data = self.swap.load(entry.vpn)
            entry.in_swap = False
            self.swap_in_faults += 1
        else:
            data = bytes(PAGE_SIZE)
            self.demand_fills += 1
        # The fill goes through the controller with ECC enabled, so the
        # frame ends up with fresh, consistent check bits.  (This is why
        # an armed-but-unpinned page would lose its watchpoint across a
        # swap cycle -- the hazard that motivates pinning.)
        for offset in range(0, PAGE_SIZE, CACHE_LINE_SIZE):
            self.controller.write_line(
                frame_base + offset, data[offset:offset + CACHE_LINE_SIZE]
            )
        entry.pfn = pfn
        entry.present = True

    def ensure_resident(self, vaddr):
        """Page in (if needed) the page containing ``vaddr``."""
        entry = self.page_table.lookup(vaddr)
        if entry is None:
            raise PageFault(vaddr)
        if not entry.present:
            self._bring_in(entry)
        return entry
