"""Periodic memory scrubber (Correct-and-Scrub mode).

The paper's design issue "Dealing with ECC Memory Scrubbing"
(Section 2.2.2): a scrub pass reads every line, so it would trip every
armed watchpoint.  SafeMem therefore coordinates with the OS -- before a
scrub pass the kernel notifies listeners (SafeMem temporarily unwatches
everything and blocks the program), and re-notifies afterwards.

The :class:`Scrubber` here implements the pass itself plus the
notification hooks the kernel wires up.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.ecc.controller import EccMode


class Scrubber:
    """Walks DRAM line by line, correcting latent single-bit errors.

    ``interval_cycles`` is the chipset profile's scrub cadence: how
    many simulated cycles elapse between background passes.  The
    scrubber itself stays demand-driven (callers decide when to run a
    pass), but :meth:`due` lets schedulers honour the profile's
    cadence without reaching into the profile themselves.
    """

    def __init__(self, controller, clock=None, cost_model=None,
                 interval_cycles=None):
        self.controller = controller
        self.clock = clock
        self.cost_model = cost_model
        self.interval_cycles = interval_cycles
        self.last_pass_cycle = 0
        #: Callbacks invoked around a scrub pass; the kernel registers
        #: hooks here so user tools can unwatch/rewatch their regions.
        self.pre_scrub_hooks = []
        self.post_scrub_hooks = []
        self.passes_completed = 0
        self.lines_scrubbed = 0
        self.faults_found = []

    def due(self, cycle=None):
        """True when the profile's scrub interval has elapsed.

        Always False without an ``interval_cycles`` (no background
        cadence configured).  ``cycle`` defaults to the clock's current
        cycle when the scrubber has a clock.
        """
        if self.interval_cycles is None:
            return False
        if cycle is None:
            if self.clock is None:
                return False
            cycle = self.clock.wall_time
        return cycle - self.last_pass_cycle >= self.interval_cycles

    def add_hooks(self, pre=None, post=None):
        """Register pre/post scrub callbacks (e.g. SafeMem coordination)."""
        if pre is not None:
            self.pre_scrub_hooks.append(pre)
        if post is not None:
            self.post_scrub_hooks.append(post)

    def scrub_pass(self, start=0, length=None):
        """Run one full scrub pass over ``[start, start+length)``.

        Returns the list of uncorrectable faults discovered.  Single-bit
        errors are corrected silently by the controller.
        """
        if self.controller.mode is not EccMode.CORRECT_AND_SCRUB:
            raise ConfigurationError(
                "scrubbing requires Correct-and-Scrub mode, controller is "
                f"in {self.controller.mode.value}"
            )
        if length is None:
            length = self.controller.dram.size - start
        if start % CACHE_LINE_SIZE or length % CACHE_LINE_SIZE:
            raise ConfigurationError(
                "scrub range must be cache-line aligned"
            )

        for hook in self.pre_scrub_hooks:
            hook()
        faults = []
        try:
            for line in range(start, start + length, CACHE_LINE_SIZE):
                fault = self.controller.scrub_line(line)
                self.lines_scrubbed += 1
                self._charge_line()
                if fault is not None:
                    faults.append(fault)
        finally:
            for hook in self.post_scrub_hooks:
                hook()
        self.passes_completed += 1
        self.faults_found.extend(faults)
        if self.clock is not None:
            self.last_pass_cycle = self.clock.wall_time
        return faults

    def _charge_line(self):
        if self.clock is not None and self.cost_model is not None:
            self.clock.idle(self.cost_model.scrub_line)
