"""Periodic memory scrubber (Correct-and-Scrub mode).

The paper's design issue "Dealing with ECC Memory Scrubbing"
(Section 2.2.2): a scrub pass reads every line, so it would trip every
armed watchpoint.  SafeMem therefore coordinates with the OS -- before a
scrub pass the kernel notifies listeners (SafeMem temporarily unwatches
everything and blocks the program), and re-notifies afterwards.

The :class:`Scrubber` here implements the pass itself plus the
notification hooks the kernel wires up.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigurationError
from repro.ecc.controller import EccMode


class Scrubber:
    """Walks DRAM line by line, correcting latent single-bit errors."""

    def __init__(self, controller, clock=None, cost_model=None):
        self.controller = controller
        self.clock = clock
        self.cost_model = cost_model
        #: Callbacks invoked around a scrub pass; the kernel registers
        #: hooks here so user tools can unwatch/rewatch their regions.
        self.pre_scrub_hooks = []
        self.post_scrub_hooks = []
        self.passes_completed = 0
        self.lines_scrubbed = 0
        self.faults_found = []

    def add_hooks(self, pre=None, post=None):
        """Register pre/post scrub callbacks (e.g. SafeMem coordination)."""
        if pre is not None:
            self.pre_scrub_hooks.append(pre)
        if post is not None:
            self.post_scrub_hooks.append(post)

    def scrub_pass(self, start=0, length=None):
        """Run one full scrub pass over ``[start, start+length)``.

        Returns the list of uncorrectable faults discovered.  Single-bit
        errors are corrected silently by the controller.
        """
        if self.controller.mode is not EccMode.CORRECT_AND_SCRUB:
            raise ConfigurationError(
                "scrubbing requires Correct-and-Scrub mode, controller is "
                f"in {self.controller.mode.value}"
            )
        if length is None:
            length = self.controller.dram.size - start
        if start % CACHE_LINE_SIZE or length % CACHE_LINE_SIZE:
            raise ConfigurationError(
                "scrub range must be cache-line aligned"
            )

        for hook in self.pre_scrub_hooks:
            hook()
        faults = []
        try:
            for line in range(start, start + length, CACHE_LINE_SIZE):
                fault = self.controller.scrub_line(line)
                self.lines_scrubbed += 1
                self._charge_line()
                if fault is not None:
                    faults.append(fault)
        finally:
            for hook in self.post_scrub_hooks:
                hook()
        self.passes_completed += 1
        self.faults_found.extend(faults)
        return faults

    def _charge_line(self):
        if self.clock is not None and self.cost_model is not None:
            self.clock.idle(self.cost_model.scrub_line)
