"""Physical DRAM model that stores data bits and ECC check bits.

The DRAM itself is dumb storage: it keeps a byte array of data and a
configurable number of check bytes per 64-bit ECC group (one for the
SEC-DED/SEC-DAEC codes, three for the chipkill-style Reed-Solomon
code).  All encoding, checking, correction and fault reporting happens
in the :mod:`repro.ecc.controller`, exactly as on real hardware where
the DIMM stores extra bits and the memory controller implements the
code.
"""

import hashlib

from repro.common.constants import ECC_GROUP_BYTES, is_aligned
from repro.common.errors import BusError, ConfigurationError


class PhysicalMemory:
    """Installed DRAM: ``size`` data bytes plus check storage.

    ``check_bytes_per_group`` is the DIMM geometry — how many check
    bytes ride alongside each 64-bit data group — and must match the
    ``check_bytes`` of the codec the memory controller runs (the
    controller validates the pairing at construction).
    """

    def __init__(self, size, check_bytes_per_group=1):
        if size <= 0 or not is_aligned(size, ECC_GROUP_BYTES):
            raise ConfigurationError(
                f"DRAM size must be a positive multiple of "
                f"{ECC_GROUP_BYTES} bytes, got {size}"
            )
        if check_bytes_per_group < 1:
            raise ConfigurationError(
                f"check storage needs at least one byte per group, got "
                f"{check_bytes_per_group}"
            )
        self.size = size
        self.check_bytes_per_group = check_bytes_per_group
        self._data = bytearray(size)
        self._check = bytearray(size // ECC_GROUP_BYTES
                                * check_bytes_per_group)

    # ------------------------------------------------------------------
    # raw data access (no ECC semantics -- controller only)
    # ------------------------------------------------------------------
    def read_raw(self, address, length):
        """Read ``length`` raw data bytes with no ECC involvement."""
        self._require_range(address, length)
        return bytes(self._data[address:address + length])

    def write_raw(self, address, data):
        """Write raw data bytes with no ECC involvement."""
        self._require_range(address, len(data))
        self._data[address:address + len(data)] = data

    # ------------------------------------------------------------------
    # group-level access used by the controller
    # ------------------------------------------------------------------
    def read_group(self, address):
        """Return ``(data_word, check_value)`` for the group at ``address``.

        ``check_value`` is the stored check bytes as one little-endian
        integer, whatever their width.
        """
        self._require_group(address)
        word = int.from_bytes(
            self._data[address:address + ECC_GROUP_BYTES], "little"
        )
        return word, self._read_check_value(address // ECC_GROUP_BYTES)

    def write_group(self, address, data_word, check_value):
        """Store a 64-bit data word and its check bits."""
        self._require_group(address)
        self._data[address:address + ECC_GROUP_BYTES] = data_word.to_bytes(
            ECC_GROUP_BYTES, "little"
        )
        self._write_check_value(address // ECC_GROUP_BYTES, check_value)

    def write_group_data_only(self, address, data_word):
        """Store data while leaving the check bytes untouched.

        This is only possible while the controller has ECC disabled; it
        is the physical effect SafeMem's scrambling trick relies on.
        """
        self._require_group(address)
        self._data[address:address + ECC_GROUP_BYTES] = data_word.to_bytes(
            ECC_GROUP_BYTES, "little"
        )

    # ------------------------------------------------------------------
    # batched group access (cache-line transfers)
    # ------------------------------------------------------------------
    def read_groups(self, address, count):
        """Return ``(data, checks)`` for ``count`` consecutive groups.

        One slice each for the data bytes and the check bytes -- the
        burst transfer a real controller performs for a cache-line fill,
        instead of ``count`` separate :meth:`read_group` calls.  The
        ``checks`` slice is ``count * check_bytes_per_group`` bytes.
        """
        self._require_group(address)
        length = count * ECC_GROUP_BYTES
        self._require_range(address, length)
        width = self.check_bytes_per_group
        first = address // ECC_GROUP_BYTES * width
        return (
            bytes(self._data[address:address + length]),
            bytes(self._check[first:first + count * width]),
        )

    def write_groups(self, address, data, checks):
        """Store consecutive groups and their check bytes in one burst."""
        self._require_group(address)
        self._require_range(address, len(data))
        width = self.check_bytes_per_group
        if len(data) * width != len(checks) * ECC_GROUP_BYTES:
            raise BusError(
                f"{len(data)} data bytes need "
                f"{len(data) // ECC_GROUP_BYTES * width} check bytes "
                f"({width} per group), got {len(checks)}"
            )
        self._data[address:address + len(data)] = data
        first = address // ECC_GROUP_BYTES * width
        self._check[first:first + len(checks)] = checks

    def write_groups_data_only(self, address, data):
        """Burst-store data while leaving all check bytes untouched.

        The batched counterpart of :meth:`write_group_data_only`; only
        reachable while the controller has ECC disabled.
        """
        self._require_group(address)
        self._require_range(address, len(data))
        if len(data) % ECC_GROUP_BYTES:
            raise BusError(
                f"data-only burst must be a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        self._data[address:address + len(data)] = data

    def read_check(self, address):
        """Return the stored check bits of the group at ``address``."""
        self._require_group(address)
        return self._read_check_value(address // ECC_GROUP_BYTES)

    # ------------------------------------------------------------------
    # integrity digests (checkpoint verification)
    # ------------------------------------------------------------------
    def digest(self):
        """SHA-256 hexdigests of the data and check arrays.

        Checkpoint documents record these instead of the (tens of
        megabytes of) raw contents: resume re-executes the run
        deterministically and verifies the reconstructed memory image
        against the recorded digests.
        """
        return {
            "data": hashlib.sha256(self._data).hexdigest(),
            "check": hashlib.sha256(self._check).hexdigest(),
        }

    # ------------------------------------------------------------------
    # fault injection (tests / hardware-error simulation)
    # ------------------------------------------------------------------
    def flip_data_bit(self, address, bit):
        """Flip one stored data bit -- simulates a hardware memory error."""
        self._require_range(address, 1)
        if not 0 <= bit < 8:
            raise ConfigurationError(f"bit index out of range: {bit}")
        self._data[address] ^= 1 << bit

    def flip_check_bit(self, address, bit):
        """Flip one stored check bit of the group containing ``address``.

        ``bit`` ranges over the installed check width — 8 bits per
        group on SEC-DED DIMMs, 24 on chipkill DIMMs — so fault
        injection follows the codec geometry instead of assuming the
        (72,64) layout.
        """
        self._require_group(address - address % ECC_GROUP_BYTES)
        width = self.check_bytes_per_group
        if not 0 <= bit < 8 * width:
            raise ConfigurationError(
                f"check bit index out of range for {8 * width} check "
                f"bits per group: {bit}"
            )
        index = address // ECC_GROUP_BYTES * width + bit // 8
        self._check[index] ^= 1 << (bit % 8)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _read_check_value(self, group):
        width = self.check_bytes_per_group
        if width == 1:
            return self._check[group]
        first = group * width
        return int.from_bytes(self._check[first:first + width], "little")

    def _write_check_value(self, group, value):
        width = self.check_bytes_per_group
        if not 0 <= value < (1 << (8 * width)):
            raise ConfigurationError(
                f"check value out of range for {width} check byte(s): "
                f"{value:#x}"
            )
        if width == 1:
            self._check[group] = value
        else:
            first = group * width
            self._check[first:first + width] = value.to_bytes(width,
                                                              "little")

    def _require_range(self, address, length):
        if address < 0 or address + length > self.size:
            raise BusError(
                f"physical access [{address:#x}, {address + length:#x}) "
                f"outside DRAM of {self.size:#x} bytes"
            )

    def _require_group(self, address):
        if not is_aligned(address, ECC_GROUP_BYTES):
            raise BusError(
                f"group access must be {ECC_GROUP_BYTES}-byte aligned, "
                f"got {address:#x}"
            )
        self._require_range(address, ECC_GROUP_BYTES)
