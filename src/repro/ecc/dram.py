"""Physical DRAM model that stores data bits and ECC check bits.

The DRAM itself is dumb storage: it keeps a byte array of data and one
check byte per 64-bit ECC group.  All encoding, checking, correction
and fault reporting happens in the :mod:`repro.ecc.controller`, exactly
as on real hardware where the DIMM stores extra bits and the memory
controller implements the code.
"""

from repro.common.constants import ECC_GROUP_BYTES, is_aligned
from repro.common.errors import BusError, ConfigurationError


class PhysicalMemory:
    """Installed DRAM: ``size`` data bytes plus check storage."""

    def __init__(self, size):
        if size <= 0 or not is_aligned(size, ECC_GROUP_BYTES):
            raise ConfigurationError(
                f"DRAM size must be a positive multiple of "
                f"{ECC_GROUP_BYTES} bytes, got {size}"
            )
        self.size = size
        self._data = bytearray(size)
        self._check = bytearray(size // ECC_GROUP_BYTES)

    # ------------------------------------------------------------------
    # raw data access (no ECC semantics -- controller only)
    # ------------------------------------------------------------------
    def read_raw(self, address, length):
        """Read ``length`` raw data bytes with no ECC involvement."""
        self._require_range(address, length)
        return bytes(self._data[address:address + length])

    def write_raw(self, address, data):
        """Write raw data bytes with no ECC involvement."""
        self._require_range(address, len(data))
        self._data[address:address + len(data)] = data

    # ------------------------------------------------------------------
    # group-level access used by the controller
    # ------------------------------------------------------------------
    def read_group(self, address):
        """Return ``(data_word, check_byte)`` for the group at ``address``."""
        self._require_group(address)
        word = int.from_bytes(
            self._data[address:address + ECC_GROUP_BYTES], "little"
        )
        return word, self._check[address // ECC_GROUP_BYTES]

    def write_group(self, address, data_word, check_byte):
        """Store a 64-bit data word and its check byte."""
        self._require_group(address)
        self._data[address:address + ECC_GROUP_BYTES] = data_word.to_bytes(
            ECC_GROUP_BYTES, "little"
        )
        self._check[address // ECC_GROUP_BYTES] = check_byte

    def write_group_data_only(self, address, data_word):
        """Store data while leaving the check byte untouched.

        This is only possible while the controller has ECC disabled; it
        is the physical effect SafeMem's scrambling trick relies on.
        """
        self._require_group(address)
        self._data[address:address + ECC_GROUP_BYTES] = data_word.to_bytes(
            ECC_GROUP_BYTES, "little"
        )

    # ------------------------------------------------------------------
    # batched group access (cache-line transfers)
    # ------------------------------------------------------------------
    def read_groups(self, address, count):
        """Return ``(data, checks)`` for ``count`` consecutive groups.

        One slice each for the data bytes and the check bytes -- the
        burst transfer a real controller performs for a cache-line fill,
        instead of ``count`` separate :meth:`read_group` calls.
        """
        self._require_group(address)
        length = count * ECC_GROUP_BYTES
        self._require_range(address, length)
        first = address // ECC_GROUP_BYTES
        return (
            bytes(self._data[address:address + length]),
            bytes(self._check[first:first + count]),
        )

    def write_groups(self, address, data, checks):
        """Store consecutive groups and their check bytes in one burst."""
        self._require_group(address)
        self._require_range(address, len(data))
        if len(data) != len(checks) * ECC_GROUP_BYTES:
            raise BusError(
                f"{len(data)} data bytes need {len(data) // ECC_GROUP_BYTES}"
                f" check bytes, got {len(checks)}"
            )
        self._data[address:address + len(data)] = data
        first = address // ECC_GROUP_BYTES
        self._check[first:first + len(checks)] = checks

    def write_groups_data_only(self, address, data):
        """Burst-store data while leaving all check bytes untouched.

        The batched counterpart of :meth:`write_group_data_only`; only
        reachable while the controller has ECC disabled.
        """
        self._require_group(address)
        self._require_range(address, len(data))
        if len(data) % ECC_GROUP_BYTES:
            raise BusError(
                f"data-only burst must be a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        self._data[address:address + len(data)] = data

    def read_check(self, address):
        """Return the stored check byte of the group at ``address``."""
        self._require_group(address)
        return self._check[address // ECC_GROUP_BYTES]

    # ------------------------------------------------------------------
    # fault injection (tests / hardware-error simulation)
    # ------------------------------------------------------------------
    def flip_data_bit(self, address, bit):
        """Flip one stored data bit -- simulates a hardware memory error."""
        self._require_range(address, 1)
        if not 0 <= bit < 8:
            raise ConfigurationError(f"bit index out of range: {bit}")
        self._data[address] ^= 1 << bit

    def flip_check_bit(self, address, bit):
        """Flip one stored check bit of the group containing ``address``."""
        self._require_group(address - address % ECC_GROUP_BYTES)
        if not 0 <= bit < 8:
            raise ConfigurationError(f"bit index out of range: {bit}")
        self._check[address // ECC_GROUP_BYTES] ^= 1 << bit

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_range(self, address, length):
        if address < 0 or address + length > self.size:
            raise BusError(
                f"physical access [{address:#x}, {address + length:#x}) "
                f"outside DRAM of {self.size:#x} bytes"
            )

    def _require_group(self, address):
        if not is_aligned(address, ECC_GROUP_BYTES):
            raise BusError(
                f"group access must be {ECC_GROUP_BYTES}-byte aligned, "
                f"got {address:#x}"
            )
        self._require_range(address, ECC_GROUP_BYTES)
