"""ECC memory substrate: pluggable codecs, DRAM model, controller, scrubber."""

from repro.ecc.chipset import Chipset, LoggedError
from repro.ecc.codec import (
    CODECS,
    DATA_POSITIONS,
    ChipkillCodec,
    Codec,
    DecodeResult,
    DecodeStatus,
    SecDaecCodec,
    SecDedCodec,
    codec_names,
    get_codec,
    scramble_syndrome,
)
from repro.ecc.controller import EccMode, MemoryController
from repro.ecc.dram import PhysicalMemory
from repro.ecc.faults import (
    EccFault,
    FaultOrigin,
    FaultSeverity,
    UncorrectableEccError,
)
from repro.ecc.profile import (
    DEFAULT_PROFILE,
    PROFILES,
    ChipsetProfile,
    get_profile,
    profile_names,
)
from repro.ecc.scrubber import Scrubber

__all__ = [
    "Chipset",
    "LoggedError",
    "CODECS",
    "DATA_POSITIONS",
    "ChipkillCodec",
    "Codec",
    "DecodeResult",
    "DecodeStatus",
    "SecDaecCodec",
    "SecDedCodec",
    "codec_names",
    "get_codec",
    "scramble_syndrome",
    "EccMode",
    "MemoryController",
    "PhysicalMemory",
    "EccFault",
    "FaultOrigin",
    "FaultSeverity",
    "UncorrectableEccError",
    "DEFAULT_PROFILE",
    "PROFILES",
    "ChipsetProfile",
    "get_profile",
    "profile_names",
    "Scrubber",
]
