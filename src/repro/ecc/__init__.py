"""ECC memory substrate: SEC-DED codec, DRAM model, controller, scrubber."""

from repro.ecc.chipset import Chipset, LoggedError
from repro.ecc.codec import (
    DATA_POSITIONS,
    DecodeResult,
    DecodeStatus,
    SecDedCodec,
    scramble_syndrome,
)
from repro.ecc.controller import EccMode, MemoryController
from repro.ecc.dram import PhysicalMemory
from repro.ecc.faults import (
    EccFault,
    FaultOrigin,
    FaultSeverity,
    UncorrectableEccError,
)
from repro.ecc.scrubber import Scrubber

__all__ = [
    "Chipset",
    "LoggedError",
    "DATA_POSITIONS",
    "DecodeResult",
    "DecodeStatus",
    "SecDedCodec",
    "scramble_syndrome",
    "EccMode",
    "MemoryController",
    "PhysicalMemory",
    "EccFault",
    "FaultOrigin",
    "FaultSeverity",
    "UncorrectableEccError",
    "Scrubber",
]
