"""E7500-style chipset register interface.

The paper stresses that its ECC library is *device-specific* because
"most ECC memory controllers export a narrow, limited interface to the
OS" (Section 2.2.3).  This module models that narrowness: the OS does
not call convenient methods on the controller -- it reads and writes
numbered configuration registers (as through PCI config space), and
error information arrives through a small error-log register file that
software must acknowledge.

The :class:`Chipset` wraps a :class:`MemoryController`; the kernel can
be pointed at either.  Tests drive the register protocol directly.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.ecc.controller import EccMode

#: register numbers (DRC = DRAM controller config, ERR = error log).
REG_DRC = 0x70          # mode control
REG_ERR_STATUS = 0x80   # sticky error flags
REG_ERR_ADDRESS = 0x84  # address of the most recent logged error
REG_ERR_SYNDROME = 0x88 # syndrome of the most recent logged error
REG_SCRUB_CTL = 0x90    # scrub enable / rate

#: DRC mode field encoding (bits 0-1), as a real datasheet would list.
DRC_MODE_BITS = {
    0b00: EccMode.DISABLED,
    0b01: EccMode.CHECK_ONLY,
    0b10: EccMode.CORRECT_ERROR,
    0b11: EccMode.CORRECT_AND_SCRUB,
}
DRC_BITS_BY_MODE = {mode: bits for bits, mode in DRC_MODE_BITS.items()}

#: ERR_STATUS flag bits.
ERR_SINGLE_BIT = 1 << 0   # a correctable error was observed
ERR_MULTI_BIT = 1 << 1    # an uncorrectable error was observed
ERR_OVERFLOW = 1 << 7     # errors were dropped while the log was full


@dataclass
class LoggedError:
    address: int
    syndrome: int
    uncorrectable: bool


class Chipset:
    """Register-level facade over the memory controller."""

    #: how many errors the hardware log can hold before dropping.
    ERROR_LOG_DEPTH = 4

    def __init__(self, controller):
        self.controller = controller
        self._status = 0
        self._log = []
        self._previous_listener = controller.fault_listener
        controller.fault_listener = self._on_fault

    # ------------------------------------------------------------------
    # register file
    # ------------------------------------------------------------------
    def read_register(self, register):
        if register == REG_DRC:
            return DRC_BITS_BY_MODE[self.controller.mode]
        if register == REG_ERR_STATUS:
            return self._status
        if register == REG_ERR_ADDRESS:
            return self._log[0].address if self._log else 0
        if register == REG_ERR_SYNDROME:
            return self._log[0].syndrome if self._log else 0
        if register == REG_SCRUB_CTL:
            return 1 if self.controller.mode is \
                EccMode.CORRECT_AND_SCRUB else 0
        raise ConfigurationError(f"unknown register {register:#x}")

    def write_register(self, register, value):
        if register == REG_DRC:
            mode_bits = value & 0b11
            self.controller.set_mode(DRC_MODE_BITS[mode_bits])
            return
        if register == REG_ERR_STATUS:
            # Write-one-to-clear semantics, like real status registers.
            self._status &= ~value
            if value and self._log:
                self._log.pop(0)
            return
        if register == REG_SCRUB_CTL:
            if value & 1:
                self.controller.set_mode(EccMode.CORRECT_AND_SCRUB)
            elif self.controller.mode is EccMode.CORRECT_AND_SCRUB:
                self.controller.set_mode(EccMode.CORRECT_ERROR)
            return
        raise ConfigurationError(
            f"register {register:#x} is read-only or unknown"
        )

    # ------------------------------------------------------------------
    # error log
    # ------------------------------------------------------------------
    def pending_errors(self):
        """The logged (unacknowledged) errors, oldest first."""
        return list(self._log)

    def acknowledge_all(self):
        """Clear the whole log and every status flag."""
        self._log.clear()
        self._status = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_fault(self, fault):
        if fault.uncorrectable:
            self._status |= ERR_MULTI_BIT
        else:
            self._status |= ERR_SINGLE_BIT
        if len(self._log) >= self.ERROR_LOG_DEPTH:
            self._status |= ERR_OVERFLOW
        else:
            self._log.append(LoggedError(
                address=fault.address,
                syndrome=fault.syndrome,
                uncorrectable=fault.uncorrectable,
            ))
        # Chain to whoever was listening before (the kernel).
        if self._previous_listener is not None:
            self._previous_listener(fault)
