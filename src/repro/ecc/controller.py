"""ECC memory controller.

Models an off-the-shelf controller like the Intel E7500 used in the
paper: it encodes on writes, checks/corrects on reads, supports the four
operating modes of Section 2.1 (Disabled, Check-Only, Correct-Error,
Correct-and-Scrub), and exposes exactly the narrow software interface
the paper works around:

- software cannot write check bits directly; the only way to create a
  data/code mismatch is the disable-ECC -> write -> enable-ECC window
  used by ``WatchMemory`` (with the bus locked during the window),
- uncorrectable errors are reported to the OS via an interrupt (here: a
  registered ``fault_listener`` plus an :class:`UncorrectableEccError`
  raised into the access path).
"""

from enum import Enum

from repro.common.constants import (
    CACHE_LINE_SIZE,
    ECC_GROUP_BYTES,
    GROUPS_PER_LINE,
    is_aligned,
    line_base,
)
from repro.common.errors import BusError, ConfigurationError
from repro.ecc.codec import DecodeStatus, SecDedCodec
from repro.obs.metrics import attr_reader as _attr_reader
from repro.ecc.faults import (
    EccFault,
    FaultOrigin,
    FaultSeverity,
    UncorrectableEccError,
)


class EccMode(Enum):
    """Operating modes of the controller (paper Section 2.1)."""

    DISABLED = "disabled"
    CHECK_ONLY = "check_only"
    CORRECT_ERROR = "correct_error"
    CORRECT_AND_SCRUB = "correct_and_scrub"


class MemoryController:
    """Cache-line-granularity front end over :class:`PhysicalMemory`."""

    def __init__(self, dram, mode=EccMode.CORRECT_ERROR, codec=None,
                 metrics=None):
        self.dram = dram
        self.mode = mode
        self.codec = codec or SecDedCodec()
        installed = getattr(dram, "check_bytes_per_group", None)
        if installed is not None and installed != self.codec.check_bytes:
            raise ConfigurationError(
                f"codec {self.codec.name!r} needs "
                f"{self.codec.check_bytes} check byte(s) per group but "
                f"the installed DRAM stores {installed}"
            )
        #: Called with an :class:`EccFault` for every reported event
        #: (both corrected and uncorrectable).  The kernel registers
        #: itself here; ``None`` means events go unreported.
        self.fault_listener = None
        #: True while software holds the memory bus (WatchMemory window).
        self.bus_locked = False
        #: True while the ECC machinery is active.  ``WatchMemory``
        #: clears this briefly to write scrambled data under a stale code.
        self.ecc_enabled = True
        self.corrected_errors = 0
        self.uncorrectable_errors = 0
        self.reads = 0
        self.writes = 0
        #: perf counters for the batched (whole-line) codec path.
        self.clean_line_reads = 0
        self.group_decodes = 0
        self.batched_line_writes = 0
        if metrics is not None:
            self.register_metrics(metrics)

    def register_metrics(self, metrics):
        """Publish ``ecc.*`` probes into a metrics registry."""
        for name, attr in (
            ("ecc.read_lines", "reads"),
            ("ecc.write_lines", "writes"),
            ("ecc.corrected", "corrected_errors"),
            ("ecc.uncorrectable", "uncorrectable_errors"),
            ("ecc.codec.clean_line_reads", "clean_line_reads"),
            ("ecc.codec.group_decodes", "group_decodes"),
            ("ecc.codec.lines_batched", "batched_line_writes"),
        ):
            metrics.probe(name, _attr_reader(self, attr),
                          kind="counter")

    # ------------------------------------------------------------------
    # mode and window control
    # ------------------------------------------------------------------
    def set_mode(self, mode):
        """Switch operating mode (OS-level configuration)."""
        if not isinstance(mode, EccMode):
            raise ConfigurationError(f"not an EccMode: {mode!r}")
        self.mode = mode

    @property
    def checking_active(self):
        """True when reads are checked against stored codes."""
        return self.ecc_enabled and self.mode is not EccMode.DISABLED

    @property
    def correction_active(self):
        """True when single-bit errors are corrected in place."""
        return self.ecc_enabled and self.mode in (
            EccMode.CORRECT_ERROR,
            EccMode.CORRECT_AND_SCRUB,
        )

    def lock_bus(self):
        """Acquire the memory bus (blocks DMA/other processors)."""
        if self.bus_locked:
            raise BusError("memory bus is already locked")
        self.bus_locked = True

    def unlock_bus(self):
        if not self.bus_locked:
            raise BusError("memory bus is not locked")
        self.bus_locked = False

    def disable_ecc(self):
        """Open the scramble window.  Requires the bus to be locked,
        so concurrent traffic cannot slip through with ECC off."""
        if not self.bus_locked:
            raise BusError("ECC may only be disabled with the bus locked")
        self.ecc_enabled = False

    def enable_ecc(self):
        self.ecc_enabled = True

    # ------------------------------------------------------------------
    # cache-line transfer path
    # ------------------------------------------------------------------
    def read_line(self, address, origin=FaultOrigin.READ):
        """Read one cache line, performing ECC checks per current mode.

        Raises :class:`UncorrectableEccError` on a multi-bit error (the
        machine routes this through the kernel's interrupt path).
        """
        self._require_line(address)
        self.reads += 1
        data, checks = self.dram.read_groups(address, GROUPS_PER_LINE)
        if not self.checking_active:
            return data
        # Fast path: re-encode the whole line in one batched pass and
        # compare against the stored check bytes.  A clean line (the
        # overwhelmingly common case) never enters the per-group decode
        # loop below.
        if self.codec.encode_words(data) == checks:
            self.clean_line_reads += 1
            return data
        width = self.codec.check_bytes
        out = bytearray()
        for index in range(GROUPS_PER_LINE):
            offset = index * ECC_GROUP_BYTES
            group_addr = address + offset
            word = int.from_bytes(
                data[offset:offset + ECC_GROUP_BYTES], "little"
            )
            if width == 1:
                check = checks[index]
            else:
                check = int.from_bytes(
                    checks[index * width:(index + 1) * width], "little"
                )
            self.group_decodes += 1
            result = self.codec.decode(word, check)
            if result.status is DecodeStatus.CORRECTED:
                self.corrected_errors += 1
                if self.correction_active:
                    self.dram.write_group(
                        group_addr,
                        result.data,
                        self.codec.encode(result.data),
                    )
                self._report(
                    EccFault(
                        address=group_addr,
                        line_address=address,
                        severity=FaultSeverity.CORRECTED,
                        origin=origin,
                        syndrome=result.syndrome,
                        codec=self.codec.name,
                    )
                )
                word = result.data if self.correction_active else word
            elif result.status is DecodeStatus.UNCORRECTABLE:
                self.uncorrectable_errors += 1
                fault = EccFault(
                    address=group_addr,
                    line_address=address,
                    severity=FaultSeverity.UNCORRECTABLE,
                    origin=origin,
                    syndrome=result.syndrome,
                    codec=self.codec.name,
                )
                self._report(fault)
                raise UncorrectableEccError(fault)
            out += word.to_bytes(ECC_GROUP_BYTES, "little")
        return bytes(out)

    def write_line(self, address, data):
        """Write one cache line.

        With ECC enabled the controller encodes fresh check bits; with
        ECC disabled (the scramble window) only the data bits change and
        the old check bits go stale -- the physical effect SafeMem's
        ``WatchMemory`` exploits.
        """
        self._require_line(address)
        if len(data) != CACHE_LINE_SIZE:
            raise BusError(
                f"line write must be {CACHE_LINE_SIZE} bytes, "
                f"got {len(data)}"
            )
        self.writes += 1
        if self.ecc_enabled:
            # Batched path: check bytes for the whole line in one
            # vectorised pass, one burst store for data + codes.
            self.dram.write_groups(address, data,
                                   self.codec.encode_words(data))
            self.batched_line_writes += 1
        else:
            self.dram.write_groups_data_only(address, data)

    # ------------------------------------------------------------------
    # scrubbing support (used by repro.ecc.scrubber)
    # ------------------------------------------------------------------
    def scrub_line(self, address):
        """Check (and correct) one line during a scrub pass.

        Unlike :meth:`read_line`, an uncorrectable error found while
        scrubbing is reported to the listener but does not raise -- the
        scrubber is not on any instruction's critical path.  Returns the
        uncorrectable :class:`EccFault` if one was found, else ``None``.
        """
        try:
            self.read_line(address, origin=FaultOrigin.SCRUB)
        except UncorrectableEccError as exc:
            return exc.fault
        return None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _report(self, fault):
        if self.fault_listener is not None:
            self.fault_listener(fault)

    def _require_line(self, address):
        if not is_aligned(address, CACHE_LINE_SIZE):
            raise BusError(
                f"line access must be {CACHE_LINE_SIZE}-byte aligned, "
                f"got {address:#x} (line base {line_base(address):#x})"
            )
