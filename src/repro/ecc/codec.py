"""Pluggable ECC codecs: SEC-DED, SEC-DAEC, and chipkill-style RS.

The paper's chipset (Intel E7500) protects each 64-bit memory word with
8 check bits: a (72,64) single-error-correcting, double-error-detecting
extended Hamming code.  SafeMem's watchpoint trick depends on two exact
properties of such a code:

1. a single flipped bit is silently corrected (so scrambling must flip
   more than one bit or the watchpoint never fires), and
2. the chosen scramble pattern decodes as an *uncorrectable* error that
   the controller reports to the OS (Section 2.2.2).

Real servers ship stronger codes than the E7500's, so this module
defines a small :class:`Codec` interface and three bit-accurate
backends that all preserve property (1) while re-deriving property (2)
per code:

- :class:`SecDedCodec` — the paper's (72,64) extended Hamming code;
- :class:`SecDaecCodec` — single-error-correct, double-*adjacent*-
  error-correct, still 8 check bits, built from an odd-weight-column
  H matrix so adjacent-pair syndromes can never alias single columns;
- :class:`ChipkillCodec` — a shortened Reed-Solomon code over GF(256)
  with 8-bit symbols and three check symbols (distance 4): any single
  failed x8 DRAM device is corrected, any two failed symbols are
  detected and never miscorrected.

Each codec owns its scramble pattern (the ``scramble_bit_positions``
hook): the default 3-bit pattern from ``constants.py`` is kept when it
decodes as uncorrectable under that code, otherwise a deterministic
search picks the first 3-bit pattern that does.  The decode-status
taxonomy (:class:`DecodeStatus` / :class:`DecodeResult`) is shared so
the memory controller, scrubber, and fault plumbing stay codec-blind.

See ``docs/HARDWARE.md`` for the cross-backend hardware-diversity
matrix derived from these implementations.
"""

from dataclasses import dataclass
from enum import Enum

from repro.common.constants import (
    ECC_GROUP_BITS,
    ECC_GROUP_BYTES,
    SCRAMBLE_BIT_POSITIONS,
)
from repro.common.errors import ConfigurationError

#: Codeword positions occupied by Hamming parity bits (SEC-DED layout).
PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)

#: Highest codeword position used (71 positions hold 64 data + 7 parity).
MAX_POSITION = 71


def _data_positions():
    """Return the codeword position of each of the 64 data bits."""
    positions = []
    parity = set(PARITY_POSITIONS)
    for position in range(1, MAX_POSITION + 1):
        if position not in parity:
            positions.append(position)
    return tuple(positions)


#: ``DATA_POSITIONS[i]`` is the codeword position of data bit ``i``.
DATA_POSITIONS = _data_positions()

#: Inverse map: codeword position -> data bit index.
POSITION_TO_DATA = {pos: i for i, pos in enumerate(DATA_POSITIONS)}


def _build_byte_syndromes():
    """Per-byte lookup tables for vectorised encoding.

    ``_BYTE_SYNDROMES[b][v]`` is the XOR of the codeword positions of
    every set bit when byte value ``v`` occupies data byte ``b`` of the
    64-bit group.  Because the Hamming parity positions are exactly the
    powers of two, the low 7 bits of that XOR *are* the check bits, so
    encoding a group reduces to eight table lookups.
    """
    tables = []
    for byte_index in range(ECC_GROUP_BITS // 8):
        table = []
        for value in range(256):
            syndrome = 0
            for bit in range(8):
                if (value >> bit) & 1:
                    syndrome ^= DATA_POSITIONS[byte_index * 8 + bit]
            table.append(syndrome)
        tables.append(tuple(table))
    return tuple(tables)


_BYTE_SYNDROMES = _build_byte_syndromes()

#: Parity (popcount & 1) of every byte value.
_BYTE_PARITY = tuple(bin(value).count("1") & 1 for value in range(256))


class DecodeStatus(Enum):
    """Outcome of decoding one ECC group."""

    OK = "ok"
    CORRECTED = "corrected_single_bit"
    UNCORRECTABLE = "uncorrectable_multi_bit"


@dataclass
class DecodeResult:
    """Decoded data plus the classification of any detected error.

    ``syndrome`` is codec-specific: the 7-bit Hamming syndrome for
    SEC-DED, the 8-bit column syndrome for SEC-DAEC, and the packed
    ``S0 | S1<<8 | S2<<16`` Reed-Solomon syndromes for chipkill.  The
    ``codec`` name says which interpretation applies, so fault logs
    never assume the (72,64) layout.
    """

    data: int
    status: DecodeStatus
    syndrome: int = 0
    codec: str = "secded"

    @property
    def faulted(self):
        """True when the group holds an uncorrectable error."""
        return self.status is DecodeStatus.UNCORRECTABLE


def _build_decode_actions():
    """Memoised decode classification.

    Index ``(syndrome << 1) | parity_mismatch`` -> ``(status, flip_bit)``
    where ``flip_bit`` is the data bit to correct (or ``None``).  The
    syndrome fits in 7 bits, so the whole decision table has 256 rows
    and the per-read decode is a single lookup instead of a branch
    cascade.
    """
    actions = []
    for syndrome in range(128):
        for parity_mismatch in (False, True):
            if syndrome == 0:
                status = (DecodeStatus.CORRECTED if parity_mismatch
                          else DecodeStatus.OK)
                actions.append((status, None))
            elif parity_mismatch:
                # Odd number of flipped bits; a single-bit error iff the
                # syndrome names a real codeword position.  A syndrome
                # naming a parity position means the flipped bit was a
                # check bit; data needs no change either way.
                if syndrome <= MAX_POSITION:
                    actions.append((DecodeStatus.CORRECTED,
                                    POSITION_TO_DATA.get(syndrome)))
                else:
                    actions.append((DecodeStatus.UNCORRECTABLE, None))
            else:
                # Even number of flipped bits with a non-zero syndrome:
                # a detectable (but uncorrectable) double-bit error.
                actions.append((DecodeStatus.UNCORRECTABLE, None))
    return tuple(actions)


_DECODE_ACTIONS = _build_decode_actions()


# ----------------------------------------------------------------------
# the codec interface
# ----------------------------------------------------------------------
class Codec:
    """Interface every ECC backend implements.

    A codec protects one ``group_bits``-bit data word with
    ``check_bits`` check bits (``check_bytes`` bytes of check storage
    per group in DRAM).  Subclasses implement :meth:`encode`,
    :meth:`encode_words`, and :meth:`decode`; the scramble machinery —
    how SafeMem arms a watchpoint so the *next read* raises an
    uncorrectable fault — is derived here once from the decode
    behaviour, so every backend provably satisfies the watchpoint
    contract or refuses to construct.
    """

    #: registry name; subclasses override.
    name = "codec"
    group_bits = ECC_GROUP_BITS
    check_bits = 8
    #: what the code guarantees for a 2-bit error: ``"detects-all"``
    #: (SEC-DED), ``"corrects-adjacent"`` (SEC-DAEC: adjacent pairs are
    #: corrected, other doubles may alias an adjacent pair), or
    #: ``"corrects-within-symbol"`` (chipkill: doubles inside one
    #: symbol corrected, across symbols always detected).
    double_bit_guarantee = "detects-all"

    def __init__(self):
        self._scramble_positions = None
        self._scramble_mask = None
        self._wide_masks = {}

    # -- geometry ------------------------------------------------------
    @property
    def check_bytes(self):
        """Bytes of check storage per :data:`ECC_GROUP_BYTES` group."""
        return self.check_bits // 8

    @property
    def overhead_percent(self):
        """Simulated check-bit storage overhead over the data bits."""
        return self.check_bits / self.group_bits * 100.0

    # -- coding (subclass responsibility) ------------------------------
    def encode(self, data):
        """Return the check bits (as an int) for one data word."""
        raise NotImplementedError

    def encode_words(self, data):
        """Batch-encode: ``check_bytes`` bytes per 64-bit group."""
        raise NotImplementedError

    def decode(self, data, check):
        """Decode a stored (data, check) pair into a DecodeResult."""
        raise NotImplementedError

    # -- the syndrome-scrambling hook ----------------------------------
    @property
    def scramble_bit_positions(self):
        """Data-bit positions the kernel flips to arm a watchpoint.

        The default pattern from ``constants.SCRAMBLE_BIT_POSITIONS``
        is used when it decodes as uncorrectable under this code;
        otherwise the first 3-bit pattern (in deterministic order) that
        does is chosen.  Either way the chosen pattern is *verified*
        against the decoder at construction time, so a codec whose
        scramble could be silently (mis)corrected cannot exist.
        """
        if self._scramble_positions is None:
            self._scramble_positions = self._choose_scramble_positions()
        return self._scramble_positions

    @property
    def scramble_mask(self):
        """The scramble pattern as a ``group_bits``-wide XOR mask."""
        if self._scramble_mask is None:
            mask = 0
            for position in self.scramble_bit_positions:
                mask |= 1 << position
            self._scramble_mask = mask
        return self._scramble_mask

    def scramble_bytes(self, data):
        """XOR the scramble pattern into every group of ``data``.

        An involution: applying it twice restores the input.  Works on
        any multiple of the group size via one wide int XOR.
        """
        if len(data) % ECC_GROUP_BYTES:
            raise ConfigurationError(
                f"scramble needs a multiple of {ECC_GROUP_BYTES} bytes, "
                f"got {len(data)}"
            )
        wide = self._wide_masks.get(len(data))
        if wide is None:
            mask_bytes = self.scramble_mask.to_bytes(ECC_GROUP_BYTES,
                                                     "little")
            wide = int.from_bytes(mask_bytes * (len(data)
                                                // ECC_GROUP_BYTES),
                                  "little")
            self._wide_masks[len(data)] = wide
        word = int.from_bytes(data, "little") ^ wide
        return word.to_bytes(len(data), "little")

    def scramble_syndrome(self, bit_positions):
        """Decode-level syndrome of flipping the given data bits.

        Codec-width-aware fault-injection helper: positions are
        validated against ``group_bits`` (a clean ConfigurationError,
        not an IndexError or a silently wrapped negative index), and
        the syndrome is computed through this codec's own decoder, so
        callers never assume the (72,64) layout.
        """
        mask = self._error_mask(bit_positions)
        return self.decode(mask, self.encode(0)).syndrome

    def error_status(self, bit_positions):
        """Classify the error pattern that flips the given data bits.

        For linear codes the decode classification depends only on the
        error pattern, never on the stored data, so probing the zero
        word answers for every word.
        """
        mask = self._error_mask(bit_positions)
        return self.decode(mask, self.encode(0)).status

    # -- helpers -------------------------------------------------------
    def _error_mask(self, bit_positions):
        mask = 0
        for position in bit_positions:
            if not 0 <= position < self.group_bits:
                raise ConfigurationError(
                    f"bit position {position} out of range for a "
                    f"{self.group_bits}-bit group ({self.name})"
                )
            mask ^= 1 << position
        return mask

    def _choose_scramble_positions(self):
        preferred = tuple(SCRAMBLE_BIT_POSITIONS)
        if self.error_status(preferred) is DecodeStatus.UNCORRECTABLE:
            return preferred
        for first in range(self.group_bits):
            for second in range(first + 1, self.group_bits):
                for third in range(second + 1, self.group_bits):
                    pattern = (first, second, third)
                    status = self.error_status(pattern)
                    if status is DecodeStatus.UNCORRECTABLE:
                        return pattern
        raise ConfigurationError(
            f"codec {self.name!r} has no 3-bit scramble pattern that "
            f"decodes as uncorrectable; the watchpoint contract cannot "
            f"hold"
        )

    def _require_word(self, data):
        if not 0 <= data < (1 << self.group_bits):
            raise ConfigurationError(
                f"data word out of range for {self.group_bits} bits: "
                f"{data:#x}"
            )

    def _require_check(self, check):
        limit = (1 << self.check_bits) - 1
        if not 0 <= check <= limit:
            raise ConfigurationError(
                f"check value out of range for {self.check_bits} check "
                f"bits: {check:#x}"
            )


# ----------------------------------------------------------------------
# SEC-DED (72,64): the paper's code
# ----------------------------------------------------------------------
class SecDedCodec(Codec):
    """Encoder/decoder for the (72,64) SEC-DED extended Hamming code."""

    name = "secded"
    check_bits = 8

    def __init__(self, group_bits=ECC_GROUP_BITS):
        if group_bits != ECC_GROUP_BITS:
            raise ConfigurationError(
                f"only {ECC_GROUP_BITS}-bit groups are supported, "
                f"got {group_bits}"
            )
        super().__init__()
        self.group_bits = group_bits

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, data):
        """Return the 8 check bits for a 64-bit ``data`` word.

        Bit layout of the returned byte: bits 0-6 are the Hamming parity
        bits (for positions 1, 2, 4, ..., 64), bit 7 is the overall
        parity over the whole 71-position codeword.
        """
        self._require_word(data)
        syndrome = 0
        data_parity = 0
        word = data
        for table in _BYTE_SYNDROMES:
            value = word & 0xFF
            syndrome ^= table[value]
            data_parity ^= _BYTE_PARITY[value]
            word >>= 8
        # The parity positions are the powers of two, so syndrome bit b
        # is exactly check bit b.
        hamming = syndrome & 0x7F
        overall = data_parity ^ _BYTE_PARITY[hamming]
        return hamming | (overall << 7)

    def encode_words(self, data):
        """Batch-encode: one check byte per 64-bit group of ``data``.

        Operates directly on the byte string (no per-group int
        conversion); this is the path the memory controller uses for
        whole-cache-line fills and write-backs.
        """
        if len(data) % ECC_GROUP_BYTES:
            raise ConfigurationError(
                f"batch encode needs a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        syndromes = _BYTE_SYNDROMES
        parities = _BYTE_PARITY
        out = bytearray(len(data) // ECC_GROUP_BYTES)
        base = 0
        for group in range(len(out)):
            syndrome = 0
            data_parity = 0
            for byte_index in range(ECC_GROUP_BYTES):
                value = data[base + byte_index]
                syndrome ^= syndromes[byte_index][value]
                data_parity ^= parities[value]
            hamming = syndrome & 0x7F
            out[group] = hamming | ((data_parity ^ parities[hamming]) << 7)
            base += ECC_GROUP_BYTES
        return bytes(out)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, data, check):
        """Decode a stored (data, check) pair read back from DRAM.

        Returns a :class:`DecodeResult`.  Single-bit errors (in data,
        parity, or the overall-parity bit itself) are corrected; every
        other mismatch is classified as uncorrectable.
        """
        self._require_word(data)
        self._require_check(check)

        expected = self.encode(data)
        syndrome = (expected ^ check) & 0x7F
        # Overall parity covers data + hamming parity bits; recompute the
        # parity of the *stored* codeword and compare with the stored
        # overall-parity bit.
        stored_overall = (check >> 7) & 1
        recomputed_overall = self._codeword_parity(data, check & 0x7F)
        parity_mismatch = stored_overall != recomputed_overall

        # The (syndrome, parity-mismatch) pair fully classifies the
        # error; the per-pair action is memoised in _DECODE_ACTIONS.
        status, flip_bit = _DECODE_ACTIONS[(syndrome << 1) | parity_mismatch]
        corrected = data if flip_bit is None else data ^ (1 << flip_bit)
        return DecodeResult(data=corrected, status=status,
                            syndrome=syndrome, codec=self.name)

    def scramble_syndrome(self, bit_positions):
        """Codeword-position syndrome of flipping the given data bits.

        Preserves the historical SEC-DED semantics (the XOR of the
        flipped bits' codeword positions) with codec-width validation:
        any value above :data:`MAX_POSITION` is guaranteed
        uncorrectable, and zero would read as an overall-parity flip.
        """
        self._error_mask(bit_positions)  # range validation
        syndrome = 0
        for index in bit_positions:
            syndrome ^= DATA_POSITIONS[index]
        return syndrome

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _codeword_parity(self, data, hamming_bits):
        """Parity (0/1) over the 71-position codeword as stored."""
        ones = bin(data).count("1") + bin(hamming_bits).count("1")
        return ones & 1


# ----------------------------------------------------------------------
# SEC-DAEC (72,64): adjacent-double-error correction
# ----------------------------------------------------------------------
def _build_daec_matrix():
    """Construct the SEC-DAEC H-matrix columns and decode actions.

    Layout: codeword bits 0..63 are the data bits, 64..71 the check
    bits (whose columns are the unit vectors, so encoding is just the
    data syndrome).  Data columns are drawn from the odd-weight bytes
    of weight >= 3, found by a deterministic first-fit backtracking
    search so that every adjacent-pair XOR is distinct.  Odd-weight
    single columns XOR to even-weight pair syndromes, so the single-
    and double-adjacent-error syndrome sets can never collide — the
    classic Dutta/Touba construction trick.

    Returns ``(columns, actions)`` where ``actions[syndrome]`` is
    ``(status, data_flip_mask)``.
    """
    check_columns = [1 << i for i in range(8)]
    candidates = [value for value in range(256)
                  if bin(value).count("1") & 1
                  and bin(value).count("1") >= 3]
    columns = [None] * 64 + check_columns
    used = set(check_columns)
    # Check-check adjacencies (positions 64..71) are fixed up front.
    pair_syndromes = {check_columns[i] ^ check_columns[i + 1]
                      for i in range(7)}

    def place(index):
        previous = columns[index - 1] if index else None
        for value in candidates:
            if value in used:
                continue
            new_pairs = []
            if previous is not None:
                pair = value ^ previous
                if pair in pair_syndromes:
                    continue
                new_pairs.append(pair)
            if index == 63:
                boundary = value ^ check_columns[0]
                if boundary in pair_syndromes or boundary in new_pairs:
                    continue
                new_pairs.append(boundary)
            columns[index] = value
            used.add(value)
            pair_syndromes.update(new_pairs)
            if index == 63 or place(index + 1):
                return True
            columns[index] = None
            used.discard(value)
            pair_syndromes.difference_update(new_pairs)
        return False

    if not place(0):  # pragma: no cover - construction always succeeds
        raise ConfigurationError("SEC-DAEC column search failed")

    actions = [(DecodeStatus.UNCORRECTABLE, 0)] * 256
    actions[0] = (DecodeStatus.OK, 0)
    for position in range(72):
        flip = (1 << position) if position < 64 else 0
        actions[columns[position]] = (DecodeStatus.CORRECTED, flip)
    for position in range(71):
        syndrome = columns[position] ^ columns[position + 1]
        flip = 0
        if position < 64:
            flip |= 1 << position
        if position + 1 < 64:
            flip |= 1 << (position + 1)
        actions[syndrome] = (DecodeStatus.CORRECTED, flip)
    return tuple(columns), tuple(actions)


_DAEC_CACHE = None


def _daec_tables():
    """Lazily built (columns, byte tables, decode actions) triple."""
    global _DAEC_CACHE
    if _DAEC_CACHE is None:
        columns, actions = _build_daec_matrix()
        byte_tables = []
        for byte_index in range(ECC_GROUP_BYTES):
            table = []
            for value in range(256):
                syndrome = 0
                for bit in range(8):
                    if (value >> bit) & 1:
                        syndrome ^= columns[byte_index * 8 + bit]
                table.append(syndrome)
            byte_tables.append(tuple(table))
        _DAEC_CACHE = (columns, tuple(byte_tables), actions)
    return _DAEC_CACHE


class SecDaecCodec(Codec):
    """(72,64) single-error-correct, double-adjacent-error-correct code.

    Models the codes newer server parts ship against multi-bit upsets
    from a single particle strike: any one flipped bit *and* any two
    physically adjacent flipped bits are corrected; wider damage is
    detected as uncorrectable (up to syndrome aliasing inherent to an
    8-check-bit code, which the scramble search avoids by
    construction).
    """

    name = "secdaec"
    check_bits = 8
    double_bit_guarantee = "corrects-adjacent"

    def __init__(self):
        super().__init__()
        _, self._byte_tables, self._actions = _daec_tables()

    def encode(self, data):
        """Return the 8 check bits for a 64-bit ``data`` word."""
        self._require_word(data)
        syndrome = 0
        word = data
        for table in self._byte_tables:
            syndrome ^= table[word & 0xFF]
            word >>= 8
        return syndrome

    def encode_words(self, data):
        """Batch-encode: one check byte per 64-bit group of ``data``."""
        if len(data) % ECC_GROUP_BYTES:
            raise ConfigurationError(
                f"batch encode needs a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        tables = self._byte_tables
        out = bytearray(len(data) // ECC_GROUP_BYTES)
        base = 0
        for group in range(len(out)):
            syndrome = 0
            for byte_index in range(ECC_GROUP_BYTES):
                syndrome ^= tables[byte_index][data[base + byte_index]]
            out[group] = syndrome
            base += ECC_GROUP_BYTES
        return bytes(out)

    def decode(self, data, check):
        """Decode a stored (data, check) pair read back from DRAM."""
        self._require_word(data)
        self._require_check(check)
        syndrome = self.encode(data) ^ check
        status, flip = self._actions[syndrome]
        return DecodeResult(data=data ^ flip, status=status,
                            syndrome=syndrome, codec=self.name)


# ----------------------------------------------------------------------
# chipkill: shortened Reed-Solomon over GF(256), distance 4
# ----------------------------------------------------------------------
_GF_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1, the usual RS polynomial

#: Number of 8-bit symbols per codeword: 8 data + 3 check.
_CK_DATA_SYMBOLS = ECC_GROUP_BYTES
_CK_CHECK_SYMBOLS = 3
_CK_SYMBOLS = _CK_DATA_SYMBOLS + _CK_CHECK_SYMBOLS


def _build_gf_tables():
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _GF_POLY
    for power in range(255, 510):
        exp[power] = exp[power - 255]
    return tuple(exp), tuple(log)


_GF_EXP, _GF_LOG = _build_gf_tables()


def _gf_mul(left, right):
    if left == 0 or right == 0:
        return 0
    return _GF_EXP[_GF_LOG[left] + _GF_LOG[right]]


def _gf_inv(value):
    return _GF_EXP[255 - _GF_LOG[value]]


def _mul_table(constant):
    """256-entry multiply-by-constant table."""
    return tuple(_gf_mul(constant, value) for value in range(256))


def _build_chipkill_tables():
    """Syndrome tables and the check-symbol solver matrix.

    Symbol ``i`` of the codeword carries coordinate ``alpha^i``; the
    three syndromes are ``S_k = sum_i alpha^(k*i) * sym_i``.  Encoding
    solves the 3x3 Vandermonde system over the check-symbol
    coordinates (positions 8..10) so that all syndromes of the stored
    codeword are zero.
    """
    syndrome_tables = []
    for k in range(_CK_CHECK_SYMBOLS):
        row = []
        for i in range(_CK_SYMBOLS):
            row.append(_mul_table(_GF_EXP[(k * i) % 255]))
        syndrome_tables.append(tuple(row))

    # Invert M[k][j] = alpha^(k * (8 + j)) by Gauss-Jordan over GF(256).
    size = _CK_CHECK_SYMBOLS
    matrix = [[_GF_EXP[(k * (_CK_DATA_SYMBOLS + j)) % 255]
               for j in range(size)] for k in range(size)]
    inverse = [[1 if r == c else 0 for c in range(size)]
               for r in range(size)]
    for col in range(size):
        pivot = next(r for r in range(col, size) if matrix[r][col])
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        inverse[col], inverse[pivot] = inverse[pivot], inverse[col]
        scale = _gf_inv(matrix[col][col])
        matrix[col] = [_gf_mul(scale, v) for v in matrix[col]]
        inverse[col] = [_gf_mul(scale, v) for v in inverse[col]]
        for row in range(size):
            if row != col and matrix[row][col]:
                factor = matrix[row][col]
                matrix[row] = [matrix[row][c] ^ _gf_mul(factor,
                                                        matrix[col][c])
                               for c in range(size)]
                inverse[row] = [inverse[row][c] ^ _gf_mul(factor,
                                                          inverse[col][c])
                               for c in range(size)]
    solver = tuple(tuple(_mul_table(inverse[r][c]) for c in range(size))
                   for r in range(size))
    return tuple(syndrome_tables), solver


_CHIPKILL_CACHE = None


def _chipkill_tables():
    global _CHIPKILL_CACHE
    if _CHIPKILL_CACHE is None:
        _CHIPKILL_CACHE = _build_chipkill_tables()
    return _CHIPKILL_CACHE


class ChipkillCodec(Codec):
    """Chipkill-style single-symbol-correct Reed-Solomon code.

    Treats each of the eight data bytes of a 64-bit group as one 8-bit
    symbol from an x8 DRAM device and adds three check symbols
    (distance 4): *any* error confined to one symbol — up to a whole
    failed chip — is corrected, and any two damaged symbols are
    detected without risk of miscorrection.  Check storage is 24 bits
    per group; real chipkill hardware amortises this by ganging
    channels, so the simulated overhead here is the honest per-word
    cost (see docs/HARDWARE.md).
    """

    name = "chipkill"
    check_bits = _CK_CHECK_SYMBOLS * 8
    double_bit_guarantee = "corrects-within-symbol"

    def __init__(self):
        super().__init__()
        self._syndrome_tables, self._solver = _chipkill_tables()

    def encode(self, data):
        """Return the three check symbols packed little-endian."""
        self._require_word(data)
        tables = self._syndrome_tables
        targets = []
        for k in range(_CK_CHECK_SYMBOLS):
            total = 0
            word = data
            row = tables[k]
            for i in range(_CK_DATA_SYMBOLS):
                total ^= row[i][word & 0xFF]
                word >>= 8
            targets.append(total)
        check = 0
        for j in range(_CK_CHECK_SYMBOLS):
            symbol = 0
            for k in range(_CK_CHECK_SYMBOLS):
                symbol ^= self._solver[j][k][targets[k]]
            check |= symbol << (8 * j)
        return check

    def encode_words(self, data):
        """Batch-encode: three check bytes per 64-bit group."""
        if len(data) % ECC_GROUP_BYTES:
            raise ConfigurationError(
                f"batch encode needs a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        tables = self._syndrome_tables
        solver = self._solver
        groups = len(data) // ECC_GROUP_BYTES
        out = bytearray(groups * _CK_CHECK_SYMBOLS)
        base = 0
        for group in range(groups):
            targets = []
            for k in range(_CK_CHECK_SYMBOLS):
                total = 0
                row = tables[k]
                for i in range(_CK_DATA_SYMBOLS):
                    total ^= row[i][data[base + i]]
                targets.append(total)
            slot = group * _CK_CHECK_SYMBOLS
            for j in range(_CK_CHECK_SYMBOLS):
                symbol = 0
                for k in range(_CK_CHECK_SYMBOLS):
                    symbol ^= solver[j][k][targets[k]]
                out[slot + j] = symbol
            base += ECC_GROUP_BYTES
        return bytes(out)

    def decode(self, data, check):
        """Decode a stored (data, check) pair read back from DRAM."""
        self._require_word(data)
        self._require_check(check)
        tables = self._syndrome_tables
        syndromes = []
        for k in range(_CK_CHECK_SYMBOLS):
            total = 0
            word = data
            row = tables[k]
            for i in range(_CK_DATA_SYMBOLS):
                total ^= row[i][word & 0xFF]
                word >>= 8
            stored = check
            for j in range(_CK_CHECK_SYMBOLS):
                total ^= row[_CK_DATA_SYMBOLS + j][stored & 0xFF]
                stored >>= 8
            syndromes.append(total)
        s0, s1, s2 = syndromes
        packed = s0 | (s1 << 8) | (s2 << 16)
        if packed == 0:
            return DecodeResult(data=data, status=DecodeStatus.OK,
                                syndrome=0, codec=self.name)
        # A single error of magnitude e at symbol j gives the geometric
        # progression S_k = e * alpha^(k*j); anything else (distance 4
        # guarantees every double-symbol error lands here) is
        # uncorrectable.
        if s0 and s1 and s2 and _gf_mul(s1, s1) == _gf_mul(s0, s2):
            locator = (_GF_LOG[s1] - _GF_LOG[s0]) % 255
            if locator < _CK_SYMBOLS:
                corrected = data
                if locator < _CK_DATA_SYMBOLS:
                    corrected = data ^ (s0 << (8 * locator))
                return DecodeResult(data=corrected,
                                    status=DecodeStatus.CORRECTED,
                                    syndrome=packed, codec=self.name)
        return DecodeResult(data=data, status=DecodeStatus.UNCORRECTABLE,
                            syndrome=packed, codec=self.name)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: Registered codec backends by name.
CODECS = {
    "secded": SecDedCodec,
    "secdaec": SecDaecCodec,
    "chipkill": ChipkillCodec,
}

_CODEC_INSTANCES = {}


def codec_names():
    """Names of every registered codec backend, sorted."""
    return tuple(sorted(CODECS))


def get_codec(name):
    """Resolve a codec by registry name (or pass an instance through).

    Instances are shared — codecs are stateless after construction —
    so the lazily built lookup tables are paid for once per process.
    """
    if isinstance(name, Codec):
        return name
    try:
        factory = CODECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; choose from {codec_names()}"
        ) from None
    instance = _CODEC_INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _CODEC_INSTANCES[name] = instance
    return instance


def scramble_syndrome(bit_positions):
    """SEC-DED codeword-position syndrome of flipping the given bits.

    Kept as a module-level convenience for the paper's default code;
    validates bit positions against the 64-bit group (out-of-range
    positions raise ConfigurationError rather than indexing past — or
    silently wrapping around — the position table).  Other codecs
    expose the same hook as :meth:`Codec.scramble_syndrome`.
    """
    return get_codec("secded").scramble_syndrome(bit_positions)
