"""Bit-accurate SEC-DED (72,64) Hamming codec.

The paper's chipset (Intel E7500) protects each 64-bit memory word with
8 check bits: a (72,64) single-error-correcting, double-error-detecting
extended Hamming code.  SafeMem's watchpoint trick depends on two exact
properties of such a code:

1. a single flipped bit is silently corrected (so scrambling must flip
   more than one bit or the watchpoint never fires), and
2. the chosen 3-bit scramble pattern decodes as an *uncorrectable*
   error that the controller reports to the OS (Section 2.2.2).

This module implements the code for real rather than flagging errors by
fiat: check bits live at power-of-two codeword positions 1..64, data
bits fill the remaining positions 3..71, and an overall parity bit
extends single-error correction to double-error detection.
"""

from dataclasses import dataclass
from enum import Enum

from repro.common.constants import ECC_GROUP_BITS, ECC_GROUP_BYTES
from repro.common.errors import ConfigurationError

#: Codeword positions occupied by Hamming parity bits.
PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)

#: Highest codeword position used (71 positions hold 64 data + 7 parity).
MAX_POSITION = 71


def _data_positions():
    """Return the codeword position of each of the 64 data bits."""
    positions = []
    parity = set(PARITY_POSITIONS)
    for position in range(1, MAX_POSITION + 1):
        if position not in parity:
            positions.append(position)
    return tuple(positions)


#: ``DATA_POSITIONS[i]`` is the codeword position of data bit ``i``.
DATA_POSITIONS = _data_positions()

#: Inverse map: codeword position -> data bit index.
POSITION_TO_DATA = {pos: i for i, pos in enumerate(DATA_POSITIONS)}


def _build_byte_syndromes():
    """Per-byte lookup tables for vectorised encoding.

    ``_BYTE_SYNDROMES[b][v]`` is the XOR of the codeword positions of
    every set bit when byte value ``v`` occupies data byte ``b`` of the
    64-bit group.  Because the Hamming parity positions are exactly the
    powers of two, the low 7 bits of that XOR *are* the check bits, so
    encoding a group reduces to eight table lookups.
    """
    tables = []
    for byte_index in range(ECC_GROUP_BITS // 8):
        table = []
        for value in range(256):
            syndrome = 0
            for bit in range(8):
                if (value >> bit) & 1:
                    syndrome ^= DATA_POSITIONS[byte_index * 8 + bit]
            table.append(syndrome)
        tables.append(tuple(table))
    return tuple(tables)


_BYTE_SYNDROMES = _build_byte_syndromes()

#: Parity (popcount & 1) of every byte value.
_BYTE_PARITY = tuple(bin(value).count("1") & 1 for value in range(256))


class DecodeStatus(Enum):
    """Outcome of decoding one ECC group."""

    OK = "ok"
    CORRECTED = "corrected_single_bit"
    UNCORRECTABLE = "uncorrectable_multi_bit"


@dataclass
class DecodeResult:
    """Decoded data plus the classification of any detected error."""

    data: int
    status: DecodeStatus
    syndrome: int = 0

    @property
    def faulted(self):
        """True when the group holds an uncorrectable error."""
        return self.status is DecodeStatus.UNCORRECTABLE


def _build_decode_actions():
    """Memoised decode classification.

    Index ``(syndrome << 1) | parity_mismatch`` -> ``(status, flip_bit)``
    where ``flip_bit`` is the data bit to correct (or ``None``).  The
    syndrome fits in 7 bits, so the whole decision table has 256 rows
    and the per-read decode is a single lookup instead of a branch
    cascade.
    """
    actions = []
    for syndrome in range(128):
        for parity_mismatch in (False, True):
            if syndrome == 0:
                status = (DecodeStatus.CORRECTED if parity_mismatch
                          else DecodeStatus.OK)
                actions.append((status, None))
            elif parity_mismatch:
                # Odd number of flipped bits; a single-bit error iff the
                # syndrome names a real codeword position.  A syndrome
                # naming a parity position means the flipped bit was a
                # check bit; data needs no change either way.
                if syndrome <= MAX_POSITION:
                    actions.append((DecodeStatus.CORRECTED,
                                    POSITION_TO_DATA.get(syndrome)))
                else:
                    actions.append((DecodeStatus.UNCORRECTABLE, None))
            else:
                # Even number of flipped bits with a non-zero syndrome:
                # a detectable (but uncorrectable) double-bit error.
                actions.append((DecodeStatus.UNCORRECTABLE, None))
    return tuple(actions)


_DECODE_ACTIONS = _build_decode_actions()


class SecDedCodec:
    """Encoder/decoder for the (72,64) SEC-DED extended Hamming code."""

    def __init__(self, group_bits=ECC_GROUP_BITS):
        if group_bits != ECC_GROUP_BITS:
            raise ConfigurationError(
                f"only {ECC_GROUP_BITS}-bit groups are supported, "
                f"got {group_bits}"
            )
        self.group_bits = group_bits

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, data):
        """Return the 8 check bits for a 64-bit ``data`` word.

        Bit layout of the returned byte: bits 0-6 are the Hamming parity
        bits (for positions 1, 2, 4, ..., 64), bit 7 is the overall
        parity over the whole 71-position codeword.
        """
        self._require_word(data)
        syndrome = 0
        data_parity = 0
        word = data
        for table in _BYTE_SYNDROMES:
            value = word & 0xFF
            syndrome ^= table[value]
            data_parity ^= _BYTE_PARITY[value]
            word >>= 8
        # The parity positions are the powers of two, so syndrome bit b
        # is exactly check bit b.
        hamming = syndrome & 0x7F
        overall = data_parity ^ _BYTE_PARITY[hamming]
        return hamming | (overall << 7)

    def encode_words(self, data):
        """Batch-encode: one check byte per 64-bit group of ``data``.

        Operates directly on the byte string (no per-group int
        conversion); this is the path the memory controller uses for
        whole-cache-line fills and write-backs.
        """
        if len(data) % ECC_GROUP_BYTES:
            raise ConfigurationError(
                f"batch encode needs a multiple of {ECC_GROUP_BYTES} "
                f"bytes, got {len(data)}"
            )
        syndromes = _BYTE_SYNDROMES
        parities = _BYTE_PARITY
        out = bytearray(len(data) // ECC_GROUP_BYTES)
        base = 0
        for group in range(len(out)):
            syndrome = 0
            data_parity = 0
            for byte_index in range(ECC_GROUP_BYTES):
                value = data[base + byte_index]
                syndrome ^= syndromes[byte_index][value]
                data_parity ^= parities[value]
            hamming = syndrome & 0x7F
            out[group] = hamming | ((data_parity ^ parities[hamming]) << 7)
            base += ECC_GROUP_BYTES
        return bytes(out)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, data, check):
        """Decode a stored (data, check) pair read back from DRAM.

        Returns a :class:`DecodeResult`.  Single-bit errors (in data,
        parity, or the overall-parity bit itself) are corrected; every
        other mismatch is classified as uncorrectable.
        """
        self._require_word(data)
        if not 0 <= check <= 0xFF:
            raise ConfigurationError(f"check byte out of range: {check:#x}")

        expected = self.encode(data)
        syndrome = (expected ^ check) & 0x7F
        # Overall parity covers data + hamming parity bits; recompute the
        # parity of the *stored* codeword and compare with the stored
        # overall-parity bit.
        stored_overall = (check >> 7) & 1
        recomputed_overall = self._codeword_parity(data, check & 0x7F)
        parity_mismatch = stored_overall != recomputed_overall

        # The (syndrome, parity-mismatch) pair fully classifies the
        # error; the per-pair action is memoised in _DECODE_ACTIONS.
        status, flip_bit = _DECODE_ACTIONS[(syndrome << 1) | parity_mismatch]
        corrected = data if flip_bit is None else data ^ (1 << flip_bit)
        return DecodeResult(data=corrected, status=status, syndrome=syndrome)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _codeword_parity(self, data, hamming_bits):
        """Parity (0/1) over the 71-position codeword as stored."""
        ones = bin(data).count("1") + bin(hamming_bits).count("1")
        return ones & 1

    def _require_word(self, data):
        if not 0 <= data < (1 << self.group_bits):
            raise ConfigurationError(
                f"data word out of range for {self.group_bits} bits: "
                f"{data:#x}"
            )


def scramble_syndrome(bit_positions):
    """Return the syndrome produced by flipping the given data bits.

    Used by tests and by the scrambler design note in constants.py to
    verify that a scramble pattern decodes as uncorrectable: the XOR of
    the codeword positions must be 0 is *not* acceptable (it would be
    read as an overall-parity flip), and any value above
    :data:`MAX_POSITION` is guaranteed uncorrectable.
    """
    syndrome = 0
    for index in bit_positions:
        syndrome ^= DATA_POSITIONS[index]
    return syndrome
