"""Fault records raised/reported by the ECC memory controller."""

from dataclasses import dataclass
from enum import Enum


class FaultSeverity(Enum):
    """Severity of an ECC event as seen by the controller."""

    CORRECTED = "corrected_single_bit"
    UNCORRECTABLE = "uncorrectable_multi_bit"


class FaultOrigin(Enum):
    """What kind of memory operation uncovered the fault."""

    READ = "read"
    SCRUB = "scrub"


@dataclass
class EccFault:
    """One ECC event: where it happened and how bad it is.

    ``address`` is the physical address of the faulting ECC group.
    ``line_address`` is the base of the cache line containing it, which
    is the granularity the OS and SafeMem reason at.  ``codec`` names
    the ECC backend that produced ``syndrome`` — syndrome widths and
    meanings differ per code (see docs/HARDWARE.md), so consumers must
    never assume the (72,64) SEC-DED layout.
    """

    address: int
    line_address: int
    severity: FaultSeverity
    origin: FaultOrigin
    syndrome: int = 0
    codec: str = "secded"

    @property
    def uncorrectable(self):
        return self.severity is FaultSeverity.UNCORRECTABLE

    def __str__(self):
        return (
            f"EccFault({self.severity.value} at {self.address:#010x}, "
            f"line {self.line_address:#010x}, origin={self.origin.value}, "
            f"syndrome={self.syndrome}, codec={self.codec})"
        )


class UncorrectableEccError(Exception):
    """Internal signal: the controller hit a multi-bit error on a read.

    The machine's access path catches this and routes it through the
    kernel's interrupt delivery (user handler or panic).  It never
    escapes to library users directly.
    """

    def __init__(self, fault):
        super().__init__(str(fault))
        self.fault = fault
