"""Chipset profiles: named hardware configurations for the machine.

A :class:`ChipsetProfile` bundles the hardware knobs SafeMem's
detection story depends on — which ECC codec the memory controller
runs, the cache-line size, how often the background scrubber sweeps,
and how noisy the DIMMs are (the fault-injection rate experiments use
to model naturally occurring single-bit upsets).  Profiles are the
single selection point threaded through ``Machine``,
``MonitorStackConfig`` and the CLI (``--profile``), so "run this
workload on chipkill hardware" is one flag rather than five
constructor arguments.

The registry is intentionally small and literal: every entry here must
be documented in the hardware-diversity matrix (``docs/HARDWARE.md``)
— ``tools/docs_check.py`` enforces the pairing in both directions.
"""

from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE, CYCLES_PER_MICROSECOND
from repro.common.errors import ConfigurationError
from repro.ecc.codec import CODECS, get_codec

#: Profile every machine boots with unless told otherwise: the paper's
#: Intel E7500 with its SEC-DED (72,64) code.
DEFAULT_PROFILE = "e7500"


@dataclass(frozen=True)
class ChipsetProfile:
    """One named hardware configuration.

    ``fault_noise`` is the simulated background single-bit-upset rate
    in flips per million ECC-group reads; the codec tradeoff
    experiment injects exactly this rate (deterministically seeded) to
    measure each code's correction behaviour under load.
    """

    name: str
    codec: str = "secded"
    line_size: int = CACHE_LINE_SIZE
    scrub_interval_cycles: int = 2000 * CYCLES_PER_MICROSECOND
    fault_noise: float = 0.0

    def validate(self):
        """Raise ConfigurationError on an impossible configuration."""
        if self.codec not in CODECS:
            raise ConfigurationError(
                f"profile {self.name!r} names unknown codec "
                f"{self.codec!r}; choose from {tuple(sorted(CODECS))}"
            )
        if self.line_size != CACHE_LINE_SIZE:
            raise ConfigurationError(
                f"profile {self.name!r} wants {self.line_size}-byte "
                f"lines but the cache hierarchy is built for "
                f"{CACHE_LINE_SIZE}-byte lines"
            )
        if self.scrub_interval_cycles <= 0:
            raise ConfigurationError(
                f"profile {self.name!r} needs a positive scrub "
                f"interval, got {self.scrub_interval_cycles}"
            )
        if self.fault_noise < 0:
            raise ConfigurationError(
                f"profile {self.name!r} needs a non-negative fault "
                f"noise rate, got {self.fault_noise}"
            )
        return self

    def build_codec(self):
        """The (shared) codec instance this profile runs."""
        return get_codec(self.codec)


#: Registered chipset profiles by name.  Keep literal — docs_check
#: greps these ``name=`` entries against docs/HARDWARE.md.
PROFILES = {
    profile.name: profile.validate()
    for profile in (
        ChipsetProfile(
            name="e7500",
            codec="secded",
            scrub_interval_cycles=2000 * CYCLES_PER_MICROSECOND,
            fault_noise=1.0,
        ),
        ChipsetProfile(
            name="daec-server",
            codec="secdaec",
            scrub_interval_cycles=1000 * CYCLES_PER_MICROSECOND,
            fault_noise=2.0,
        ),
        ChipsetProfile(
            name="chipkill-server",
            codec="chipkill",
            scrub_interval_cycles=4000 * CYCLES_PER_MICROSECOND,
            fault_noise=4.0,
        ),
    )
}


def profile_names():
    """Names of every registered profile, sorted."""
    return tuple(sorted(PROFILES))


def get_profile(name):
    """Resolve a profile by name (or pass an instance through)."""
    if isinstance(name, ChipsetProfile):
        return name.validate()
    if name is None:
        name = DEFAULT_PROFILE
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown chipset profile {name!r}; choose from "
            f"{profile_names()}"
        ) from None
