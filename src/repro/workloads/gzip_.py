"""gzip: the compression utility (8,900 LOC in Table 1).

Behavioural model: a block compressor -- read an input block, run a
compute-dominated compression loop over it, emit an output block.  The
compute-to-access ratio is the highest of the seven applications, so
both tools are near their floor here (the paper reports SafeMem's 3.0%
for gzip).  THE BUG: a crafted input produces an output one byte larger
than the allocated output buffer (the classic gzip .tgz-name overflow
reported against gzip 1.2.4).
"""

from repro.workloads.base import Workload, fill

INPUT_SITE = 0xD100
OUTPUT_SITE = 0xD200


class Gzip(Workload):
    """Compression run with a one-byte output-buffer overflow."""

    name = "gzip"
    loc = 8_900
    description = "a compression utility"
    bug = "overflow"
    default_requests = 400

    #: per-block compression work: gzip is compute-bound.
    compute_per_block = 1_500_000
    block_size = 4096
    #: block index at which the crafted input appears.
    trigger_block = 300

    def setup(self, program, truth):
        # One reused input staging buffer, rooted for the sweeps.
        with program.frame(INPUT_SITE):
            self.input_buffer = program.malloc(self.block_size)
        program.set_global(0, self.input_buffer)
        self._input_block = b"\x42" * self.block_size
        self._output_block = b"\xab" * self.block_size

    def handle_request(self, program, index, buggy, truth):
        # Read the next input block (a bulk op: one plan, one call).
        program.run_ops([("store", self.input_buffer, self._input_block)])

        # Allocate this block's output buffer.
        with program.frame(OUTPUT_SITE):
            output = program.malloc(self.block_size)
        program.set_global(60, output)

        # The compression loop: re-read the input, emit the output.
        # Emitted as one access plan so the machine's batched engine
        # moves whole blocks per call; op order matches the former
        # scalar sequence exactly.
        program.compute(self.compute_per_block)
        plan = [
            ("load", self.input_buffer, self.block_size),
            ("store", output, self._output_block),
        ]
        crafted = buggy and index == self.trigger_block
        if crafted:
            # THE BUG: the crafted block expands by one byte.
            truth.corruption = ("overflow", output + self.block_size)
            plan.append(("store", output + self.block_size, b"!"))
        program.run_ops(plan)

        program.free(output)
        program.set_global(60, 0)
