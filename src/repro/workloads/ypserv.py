"""ypserv: the NIS (Network Information Service) server.

Two versions, as in the paper's Table 1: ypserv1 carries an
*always-leak* (every map-query response record is leaked on every
path), ypserv2 carries a *sometimes-leak* (the result structure is
freed on the success path but leaked on an error path).

Behavioural model: a lookup server with modest computation per request,
small request/response buffers, a handful of long-lived map handles
(the false-positive generators of Table 5: 7 for ypserv1, 2 for
ypserv2), and a low allocation rate -- the profile of a small C daemon.
"""

from repro.workloads.base import Workload, fill, read_back
from repro.workloads.fixtures import TouchedCache

MAP_HANDLE_SITE = 0xA100
REQUEST_SITE = 0xA200
RESPONSE_SITE = 0xA300
RESULT_SITE = 0xA400


class Ypserv1(Workload):
    """ypserv with an ALeak: response records are never freed."""

    name = "ypserv1"
    loc = 11_200
    description = "a NIS server"
    bug = "aleak"
    default_requests = 600

    #: simulated instructions per lookup request.
    compute_per_request = 600_000

    def setup(self, program, truth):
        # Seven long-lived map handles sharing the request-buffer group:
        # the Table 5 false-positive generators (7 before, 0 after).
        self.maps = TouchedCache(
            site=REQUEST_SITE, object_size=128, count=7, touch_period=4
        )
        self.maps.setup(program, first_global_slot=0)

    #: query kinds produce different request-buffer sizes, i.e. several
    #: healthy object groups (feeds the Figure 3 group population).
    request_sizes = (128, 192, 256)

    def handle_request(self, program, index, buggy, truth):
        # Parse the query into a request buffer (freed at end of request).
        size = self.request_sizes[index % len(self.request_sizes)]
        with program.frame(REQUEST_SITE):
            request = program.malloc(size)
        fill(program, request, size)
        program.set_global(60, request)

        # Look the key up: the compute-heavy part.
        program.compute(self.compute_per_request)
        self.maps.touch(program, index)

        # Build the response record.  THE BUG (buggy mode): it is
        # never freed, on any path -- a textbook ALeak.
        with program.frame(RESPONSE_SITE):
            response = program.malloc(48)
        fill(program, response, 48)
        read_back(program, response, 48)
        if buggy:
            truth.leaked_addresses.add(response)
        else:
            program.free(response)

        program.free(request)
        program.set_global(60, 0)


class Ypserv2(Workload):
    """ypserv with an SLeak: the error path skips freeing the result."""

    name = "ypserv2"
    loc = 9_700
    description = "a NIS server"
    bug = "sleak"
    default_requests = 600

    compute_per_request = 500_000
    #: in buggy mode, this fraction of requests takes the leaky
    #: error path (an unknown-key lookup).
    error_rate = 0.04

    def setup(self, program, truth):
        # Two long-lived domain bindings: Table 5's 2-before/0-after.
        self.domains = TouchedCache(
            site=RESULT_SITE, object_size=96, count=2, touch_period=3
        )
        self.domains.setup(program, first_global_slot=0)

    request_sizes = (160, 224)

    def handle_request(self, program, index, buggy, truth):
        size = self.request_sizes[index % len(self.request_sizes)]
        with program.frame(REQUEST_SITE):
            request = program.malloc(size)
        fill(program, request, size)
        program.set_global(60, request)

        program.compute(self.compute_per_request)
        self.domains.touch(program, index)

        # The result structure: freed on the success path, leaked on
        # the error path (the SLeak).
        with program.frame(RESULT_SITE):
            result = program.malloc(96)
        fill(program, result, 96)
        error_path = buggy and self.rng.random() < self.error_rate
        if error_path:
            truth.leaked_addresses.add(result)  # free is skipped
        else:
            read_back(program, result, 96)
            program.free(result)

        program.free(request)
        program.set_global(60, 0)
