"""Allocation traces: record, generate, and replay.

The paper validates its lifetime-stability observation on three real
servers (Figure 3).  To study the detector beyond seven hand-built
models, this module adds:

- :class:`Trace` -- a portable event list (malloc/free/access/compute)
  with JSONL persistence,
- :class:`TraceRecorder` -- a monitor wrapper that records whatever a
  live program does (through any inner monitor),
- :class:`TraceReplayer` -- replays a trace onto a program under any
  monitor, translating object ids to the addresses that run produced,
- :class:`SyntheticTraceGenerator` -- parameterized workload synthesis:
  configurable group populations, lifetime distributions, leak
  injection, and touch patterns.  This is what lets the benchmarks run
  the detector against hundreds of object groups.
"""

import json
import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.machine.monitor import Monitor

#: event kinds understood by the replayer.
KINDS = ("malloc", "free", "store", "load", "compute", "frame")


@dataclass
class TraceEvent:
    """One replayable event.

    Addresses never appear in traces: objects are named by the ordinal
    of their allocation (``obj``), so a trace replays identically under
    allocators that place objects differently (native vs SafeMem's
    padded layout vs Purify's red zones).
    """

    kind: str
    obj: int = None
    size: int = 0
    offset: int = 0
    length: int = 0
    instructions: int = 0
    site: int = 0

    def to_json(self):
        payload = {"k": self.kind}
        if self.obj is not None:  # object id 0 is valid
            payload["o"] = self.obj
        for attr, key in (("size", "s"), ("offset", "f"),
                          ("length", "l"), ("instructions", "i"),
                          ("site", "c")):
            value = getattr(self, attr)
            if value:
                payload[key] = value
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line):
        payload = json.loads(line)
        return cls(
            kind=payload["k"],
            obj=payload.get("o"),
            size=payload.get("s", 0),
            offset=payload.get("f", 0),
            length=payload.get("l", 0),
            instructions=payload.get("i", 0),
            site=payload.get("c", 0),
        )


class Trace:
    """An ordered list of :class:`TraceEvent` with persistence."""

    def __init__(self, events=None):
        self.events = list(events or [])

    def append(self, event):
        self.events.append(event)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path):
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(event.to_json() + "\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls(TraceEvent.from_json(line)
                       for line in handle if line.strip())

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    def stats(self):
        mallocs = sum(1 for e in self.events if e.kind == "malloc")
        frees = sum(1 for e in self.events if e.kind == "free")
        accesses = sum(1 for e in self.events
                       if e.kind in ("load", "store"))
        instructions = sum(e.instructions for e in self.events
                           if e.kind == "compute")
        sites = {e.site for e in self.events if e.kind == "malloc"}
        return {
            "events": len(self.events),
            "mallocs": mallocs,
            "frees": frees,
            "never_freed": mallocs - frees,
            "accesses": accesses,
            "instructions": instructions,
            "allocation_sites": len(sites),
        }


class TraceRecorder(Monitor):
    """Monitor wrapper that records a program's behaviour to a Trace.

    Wraps an inner monitor (default: pass-through) so the recorded run
    can itself be monitored.  Accesses outside heap objects (globals)
    are recorded as absolute events with ``obj=None`` and skipped on
    replay mismatch.
    """

    name = "trace-recorder"

    def __init__(self, inner=None):
        super().__init__()
        self.inner = inner
        self.trace = Trace()
        self._object_ids = {}
        self._spans = []
        self._next_id = 0

    def on_attach(self):
        if self.inner is not None:
            self.inner.attach(self.program)

    def on_exit(self):
        if self.inner is not None:
            self.inner.on_exit()

    def instruction_cost(self):
        if self.inner is not None:
            return self.inner.instruction_cost()
        return self.program.machine.costs.instruction

    # -- allocation ------------------------------------------------------
    def malloc(self, size, call_signature):
        if self.inner is not None:
            address = self.inner.malloc(size, call_signature)
        else:
            address = self.program.allocator.malloc(size)
        obj = self._next_id
        self._next_id += 1
        self._object_ids[address] = (obj, size)
        self.trace.append(TraceEvent(kind="malloc", obj=obj, size=size,
                                     site=call_signature))
        return address

    def free(self, address):
        entry = self._object_ids.pop(address, None)
        if entry is not None:
            self.trace.append(TraceEvent(kind="free", obj=entry[0]))
        if self.inner is not None:
            self.inner.free(address)
        else:
            self.program.allocator.free(address)

    # -- accesses ---------------------------------------------------------
    def before_load(self, vaddr, size):
        self._record_access("load", vaddr, size)
        if self.inner is not None:
            self.inner.before_load(vaddr, size)

    def before_store(self, vaddr, size):
        self._record_access("store", vaddr, size)
        if self.inner is not None:
            self.inner.before_store(vaddr, size)

    def _record_access(self, kind, vaddr, size):
        for address, (obj, obj_size) in self._object_ids.items():
            if address <= vaddr < address + obj_size:
                length = min(size, obj_size - (vaddr - address))
                self.trace.append(TraceEvent(
                    kind=kind, obj=obj, offset=vaddr - address,
                    length=length,
                ))
                return
        # Non-object access (globals): not replayable, skip.

    # -- computation --------------------------------------------------------
    def record_compute(self, instructions):
        """Programs being recorded call this instead of compute()."""
        self.trace.append(TraceEvent(kind="compute",
                                     instructions=instructions))
        self.program.compute(instructions)


class TraceReplayer:
    """Replay a trace onto a program under any monitor."""

    def __init__(self, trace):
        self.trace = trace
        self.skipped = 0

    def run(self, program):
        """Replay every event; returns a per-object address map."""
        addresses = {}
        for event in self.trace:
            if event.kind == "malloc":
                with program.frame(event.site or 0x1):
                    addresses[event.obj] = program.malloc(event.size)
            elif event.kind == "free":
                address = addresses.pop(event.obj, None)
                if address is None:
                    self.skipped += 1
                    continue
                program.free(address)
            elif event.kind in ("load", "store"):
                address = addresses.get(event.obj)
                if address is None:
                    self.skipped += 1
                    continue
                if event.kind == "load":
                    program.load(address + event.offset, event.length)
                else:
                    program.store(address + event.offset,
                                  b"\xaa" * event.length)
            elif event.kind == "compute":
                program.compute(event.instructions)
            else:
                raise ConfigurationError(
                    f"unknown trace event kind {event.kind!r}"
                )
        program.exit()
        return addresses


@dataclass
class GroupSpec:
    """Behaviour of one synthetic object group."""

    site: int
    size: int
    #: mean lifetime in *events*; None = never freed.  Lifetimes are
    #: exponential truncated at ``lifetime_cap_factor`` x mean: real
    #: object lifetimes are bounded by program structure (a request
    #: ends, a session times out), which is exactly why the paper's
    #: maximal-lifetime observation holds.  An unbounded distribution
    #: would keep setting records forever and no detector could use it.
    mean_lifetime_events: int = 40
    lifetime_cap_factor: float = 2.5
    #: probability an object of this group leaks (dropped, not freed).
    leak_probability: float = 0.0
    #: relative allocation weight.
    weight: float = 1.0
    #: long-lived resident objects allocated up front and touched
    #: every ``touch_period`` allocations of this group.
    residents: int = 0
    touch_period: int = 16


@dataclass
class SyntheticTraceGenerator:
    """Generate traces with a configurable group population.

    The default population is a caricature of a server: many
    short-lived request groups, a few mid-lived session groups, and a
    couple of resident caches.
    """

    groups: list = field(default_factory=list)
    events: int = 20_000
    compute_per_event: int = 20_000
    seed: int = 0

    def __post_init__(self):
        if not self.groups:
            self.groups = default_server_population()

    def generate(self):
        rng = random.Random(self.seed)
        trace = Trace()
        weights = [g.weight for g in self.groups]
        next_obj = 0
        #: obj -> (free_deadline_event, leaked)
        pending = []
        residents = []
        alloc_counts = {id(g): 0 for g in self.groups}
        leaked = set()

        # Resident objects up front.
        for group in self.groups:
            for _ in range(group.residents):
                trace.append(TraceEvent(kind="malloc", obj=next_obj,
                                        size=group.size, site=group.site))
                trace.append(TraceEvent(kind="store", obj=next_obj,
                                        offset=0, length=min(group.size,
                                                             32)))
                residents.append((group, next_obj))
                next_obj += 1

        for event_index in range(self.events):
            group = rng.choices(self.groups, weights=weights)[0]
            alloc_counts[id(group)] += 1

            # Allocate one object of this group.
            obj = next_obj
            next_obj += 1
            trace.append(TraceEvent(kind="malloc", obj=obj,
                                    size=group.size, site=group.site))
            trace.append(TraceEvent(kind="store", obj=obj, offset=0,
                                    length=min(group.size, 32)))
            if group.mean_lifetime_events is None:
                deadline = None
            elif rng.random() < group.leak_probability:
                deadline = None
                leaked.add(obj)
            else:
                cap = group.lifetime_cap_factor * \
                    group.mean_lifetime_events
                lifetime = max(1, int(min(
                    rng.expovariate(1.0 / group.mean_lifetime_events),
                    cap,
                )))
                deadline = event_index + lifetime
            if deadline is not None:
                pending.append((deadline, obj))

            # Touch residents on their period.
            for res_group, res_obj in residents:
                count = alloc_counts[id(res_group)]
                if count and count % res_group.touch_period == 0 and \
                        res_group is group:
                    trace.append(TraceEvent(
                        kind="load", obj=res_obj, offset=0,
                        length=min(res_group.size, 16),
                    ))

            # Free everything past its deadline.
            due = [(d, o) for d, o in pending if d <= event_index]
            for entry in due:
                pending.remove(entry)
                trace.append(TraceEvent(kind="free", obj=entry[1]))

            trace.append(TraceEvent(kind="compute",
                                    instructions=self.compute_per_event))

        # Orderly shutdown: free the remaining non-leaked objects.
        for _deadline, obj in pending:
            trace.append(TraceEvent(kind="free", obj=obj))
        return trace, leaked


def default_server_population(request_groups=24, session_groups=6,
                              cache_groups=2, leak_sites=1,
                              leak_probability=0.02, seed=0):
    """A parameterized server-like group population."""
    rng = random.Random(seed)
    groups = []
    site = 0x10_000
    for index in range(request_groups):
        groups.append(GroupSpec(
            site=site + index,
            size=rng.choice((32, 48, 64, 96, 128, 192, 256)),
            mean_lifetime_events=rng.randint(2, 12),
            weight=2.0,
        ))
    for index in range(session_groups):
        groups.append(GroupSpec(
            site=site + 0x1000 + index,
            size=rng.choice((256, 512, 1024)),
            mean_lifetime_events=rng.randint(40, 120),
            weight=0.8,
        ))
    for index in range(cache_groups):
        groups.append(GroupSpec(
            site=site + 0x2000 + index,
            size=2048,
            mean_lifetime_events=30,
            residents=3,
            touch_period=12,
            weight=0.4,
        ))
    for index in range(leak_sites):
        groups.append(GroupSpec(
            site=site + 0x3000 + index,
            size=80,
            mean_lifetime_events=6,
            leak_probability=leak_probability,
            weight=1.0,
        ))
    return groups
