"""Workload framework: the simulated applications of the paper's Table 1.

The paper evaluates on seven real buggy programs.  We cannot run real
ypserv/squid binaries inside a Python machine model, so each workload is
a *behavioural* model: a request-driven program whose allocation
structure (object groups, lifetimes, allocation rate relative to
computation, buffer sizes, access mix) matches the published bug class
of the original application.  Every workload has:

- a **normal mode** (used for overhead/space measurements, like the
  paper's bug-free overhead runs), and
- a **buggy mode** in which the documented bug manifests (continuous
  leaks, or a corrupting access).

Workloads report **ground truth** -- exactly which objects leaked and
which access corrupted memory -- so experiments can score true/false
positives without relying on the detector under test.
"""

import random
from dataclasses import dataclass, field

from repro.common.errors import MonitorError


@dataclass
class GroundTruth:
    """What really happened during a workload run."""

    #: user addresses of objects the program genuinely leaked.
    leaked_addresses: set = field(default_factory=set)
    #: the corrupting access, if the bug fired: (kind, address).
    corruption: tuple = None
    #: the MonitorError raised by the attached tool, if any.
    detection: MonitorError = None
    requests_completed: int = 0
    #: cumulative CPU cycles after each completed request.  Purely
    #: cycle-derived (the simulated clock), so identical across serial
    #: and sharded runs; steady-state overhead analysis reads these.
    cycle_marks: list = field(default_factory=list)

    @property
    def corruption_detected(self):
        return self.detection is not None


class Workload:
    """Base class: subclasses model one application from Table 1."""

    #: application name as in the paper's Table 1.
    name = "base"
    #: lines of code of the real application (Table 1, documentation).
    loc = 0
    #: one-line description (Table 1).
    description = ""
    #: bug class: "aleak", "sleak", "overflow", or "uaf".
    bug = None
    #: default number of requests for a full experiment run.
    default_requests = 400

    def __init__(self, requests=None, seed=0):
        self.requests = requests or self.default_requests
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # template method
    # ------------------------------------------------------------------
    def run(self, program, buggy=False, request_hook=None):
        """Drive the program through ``self.requests`` requests.

        In buggy corruption workloads the corrupting access raises
        :class:`MonitorError` when a detector is attached; the harness
        records it in the ground truth and stops (the paper's SafeMem
        pauses the program at the first corruption fault).

        ``request_hook(index, truth)`` runs after each completed
        request, at the quiescent boundary between requests.  Hooks
        must be observation-only (checkpoint capture, progress
        reporting): ticking the clock or touching program state from
        one would desynchronize the run from its un-hooked twin.
        """
        truth = GroundTruth()
        self.setup(program, truth)
        try:
            for index in range(self.requests):
                self.handle_request(program, index, buggy, truth)
                truth.requests_completed = index + 1
                truth.cycle_marks.append(program.cpu_time)
                if request_hook is not None:
                    request_hook(index, truth)
        except MonitorError as error:
            truth.detection = error
        finally:
            self.teardown(program, truth)
            program.exit()
        return truth

    # hooks -------------------------------------------------------------
    def setup(self, program, truth):
        """Allocate long-lived state before the request loop."""

    def handle_request(self, program, index, buggy, truth):
        raise NotImplementedError

    def teardown(self, program, truth):
        """Release state after the loop (default: nothing)."""


def fill(program, address, size, pattern=b"\xab"):
    """Write ``size`` patterned bytes -- a cheap 'the app used this'."""
    program.store(address, pattern * size)


def read_back(program, address, size):
    """Read ``size`` bytes -- models the app consuming a buffer."""
    return program.load(address, size)
