"""httpd: an apache-like server using a custom pool allocator.

**Extension workload** (not one of the paper's seven): it exists to
exercise the paper's remark that SafeMem handles programs with their
own memory allocators by wrapping their allocation functions
(Section 3.2.1).  Connection objects come from a :class:`PoolAllocator`
rather than malloc; when the attached monitor is SafeMem, the pool's
alloc/release pair is wrapped so pool objects participate in leak
detection exactly like malloc'd ones.

THE BUG (buggy mode): a keep-alive timeout path drops a connection
object without returning it to the pool -- a custom-allocator leak
that malloc-interposing tools cannot see at all.
"""

from repro.heap.pool import PoolAllocator
from repro.workloads.base import Workload, fill

CONNECTION_SITE = 0xF100
REQUEST_SITE = 0xF200


class Httpd(Workload):
    """Pool-based HTTP server with a keep-alive connection leak."""

    name = "httpd"
    loc = 0  # extension workload: not in the paper's Table 1
    description = "an apache-like server with a pool allocator"
    bug = "sleak"
    default_requests = 500

    compute_per_request = 300_000
    connection_size = 192
    #: fraction of requests whose keep-alive times out down the leaky
    #: path (buggy mode only).
    timeout_rate = 0.03
    #: connections normally live for this many requests.
    hold_requests = 6

    def setup(self, program, truth):
        self.pool = PoolAllocator(
            program, object_size=self.connection_size,
            objects_per_slab=16, site=CONNECTION_SITE,
            root_slot=0,
        )
        monitor = program.monitor
        if hasattr(monitor, "wrap_pool"):
            self.conn_alloc, self.conn_release = monitor.wrap_pool(
                self.pool
            )
        else:
            self.conn_alloc = self.pool.alloc
            self.conn_release = self.pool.release
        self._held = []

    def handle_request(self, program, index, buggy, truth):
        # Accept a connection from the pool.
        with program.frame(CONNECTION_SITE):
            connection = self.conn_alloc()
        program.store(connection, b"\x1f" * self.connection_size)

        # Parse and serve the request (regular malloc for the request
        # scratch buffer, like the paper's workloads).
        with program.frame(REQUEST_SITE):
            scratch = program.malloc(512)
        fill(program, scratch, 512)
        program.compute(self.compute_per_request)
        program.free(scratch)

        self._held.append((index, connection))
        # Close connections past their keep-alive window.
        for (start, held) in list(self._held):
            if index - start >= self.hold_requests:
                self._held.remove((start, held))
                timed_out = buggy and \
                    self.rng.random() < self.timeout_rate
                if timed_out:
                    # THE BUG: the timeout path forgets the pool object.
                    truth.leaked_addresses.add(held)
                else:
                    self.conn_release(held)

    def teardown(self, program, truth):
        for (_start, held) in self._held:
            self.conn_release(held)
        self._held.clear()
