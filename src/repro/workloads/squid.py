"""squid: a web proxy cache server (~95,000 LOC in Table 1).

The paper uses two versions: squid1 carries a memory leak (an aborted
request's reply buffer is never released), squid2 carries a memory
corruption (an under-sized buffer for crafted ftp:// URLs -- the model
of the well-known squid ftpBuildTitleUrl overflow).

Behavioural model: the most copy-heavy of the seven servers -- every
request moves tens of KiB between the "origin server", the in-memory
object cache, and the "client socket".  This is the access profile
where a per-access checker like Purify is at its worst, while SafeMem's
cost stays at the (low) allocation rate.

squid1's false-positive structure is the paper's most interesting: 13
long-lived cache metadata entries get flagged, 12 are pruned by their
periodic use, and one -- touched too rarely for the confirmation
window -- survives as the single remaining false positive (Table 5:
13 before, 1 after).
"""

from repro.workloads.base import Workload, fill
from repro.workloads.fixtures import TouchedCache

REPLY_SITE = 0xC100
ENTRY_SITE = 0xC200
URL_SITE = 0xC300
PAYLOAD_SITE = 0xC400


class Squid1(Workload):
    """Web proxy with an aborted-request reply-buffer leak.

    Reply buffers are pooled (squid recycles its I/O buffers), so the
    steady-state allocation rate is low while the copied byte volume
    per request is the highest of the seven applications.
    """

    name = "squid1"
    loc = 95_000
    description = "a Web proxy cache server"
    bug = "sleak"
    default_requests = 700

    compute_per_request = 120_000
    payload_bytes = 64 * 1024
    pool_size = 8
    #: one pool buffer is rotated (freed + reallocated) this often,
    #: giving the reply group its normal lifetime statistics.
    rotate_period = 8
    churn_period = 4
    abort_rate = 0.04

    def setup(self, program, truth):
        # 13 cache metadata entries; entry 0 is consulted so rarely
        # that the leak detector's confirmation timeout beats its next
        # use -- the one false positive that survives pruning.
        self.metadata = TouchedCache(
            site=ENTRY_SITE, object_size=512, count=13, touch_period=5,
            rare_indexes=(0,), rare_period=100_000,
        )
        self.metadata.setup(program, first_global_slot=0)
        # The reply-buffer pool.
        self.pool = []
        for i in range(self.pool_size):
            with program.frame(REPLY_SITE):
                buffer = program.malloc(4096)
            program.set_global(40 + i, buffer)
            self.pool.append(buffer)
        # The in-memory object cache: slots sized for a half-payload,
        # reachable via a pointer table so conservative sweeps find them.
        self.cache_slots = []
        for i in range(8):
            with program.frame(PAYLOAD_SITE):
                slot = program.malloc(self.payload_bytes // 2)
            program.store(slot, b"\x11" * 1024)
            program.set_global(20 + i, slot)
            self.cache_slots.append(slot)

    def handle_request(self, program, index, buggy, truth):
        # Take a pooled reply buffer and assemble the headers.
        reply = self.pool[index % self.pool_size]
        fill(program, reply, 512)

        # Move the object payload: cache slot -> reply path -> client.
        slot = self.cache_slots[index % len(self.cache_slots)]
        half = self.payload_bytes // 2
        program.store(slot, b"\x22" * half)
        program.load(slot, half)

        # Header parsing, ACLs, cache bookkeeping.
        program.compute(self.compute_per_request)
        if index % self.churn_period == 0:
            self.metadata.churn(program)
        self.metadata.touch(program, index)

        # Rotate one pool buffer (round robin over the whole pool):
        # the reply group's normal lifetime.
        if index % self.rotate_period == self.rotate_period - 1:
            victim = (index // self.rotate_period) % self.pool_size
            program.free(self.pool[victim])
            with program.frame(REPLY_SITE):
                self.pool[victim] = program.malloc(4096)
            program.set_global(40 + victim, self.pool[victim])

        aborted = buggy and self.rng.random() < self.abort_rate
        if aborted:
            # THE BUG: the aborted-client path builds a private copy of
            # the in-flight reply and forgets it (sometimes-leak).
            with program.frame(REPLY_SITE):
                jettison = program.malloc(4096)
            fill(program, jettison, 512)
            truth.leaked_addresses.add(jettison)


class Squid2(Workload):
    """Web proxy with a crafted-URL buffer overflow."""

    name = "squid2"
    loc = 93_000
    description = "a Web proxy cache server"
    bug = "overflow"
    default_requests = 500

    compute_per_request = 200_000
    payload_bytes = 48 * 1024
    url_buffer_size = 128
    #: request index at which the crafted ftp:// URL arrives.
    trigger_request = 350

    def setup(self, program, truth):
        self.scratch = []
        for i in range(4):
            with program.frame(PAYLOAD_SITE):
                slot = program.malloc(self.payload_bytes // 2)
            program.store(slot, b"\x00")
            program.set_global(20 + i, slot)
            self.scratch.append(slot)

    def handle_request(self, program, index, buggy, truth):
        with program.frame(URL_SITE):
            url = program.malloc(self.url_buffer_size)
        program.set_global(60, url)

        crafted = buggy and index == self.trigger_request
        if crafted:
            # THE BUG: the title-URL formatter writes one byte past the
            # 128-byte buffer for an over-long ftp:// URL.
            truth.corruption = ("overflow", url + self.url_buffer_size)
            program.store(url, b"f" * self.url_buffer_size)
            program.store(url + self.url_buffer_size, b"!")
        else:
            fill(program, url, self.url_buffer_size)

        slot = self.scratch[index % len(self.scratch)]
        half = self.payload_bytes // 2
        program.store(slot, b"\x33" * half)
        program.load(slot, half)
        program.compute(self.compute_per_request)

        program.free(url)
        program.set_global(60, 0)
