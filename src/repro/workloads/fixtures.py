"""Reusable behavioural building blocks for the workload models."""


class TouchedCache:
    """Long-lived objects inside a churning object group.

    This is the structure that generates leak-detector *false
    positives* (paper Table 5): the objects share an allocation site
    and size with short-lived churn objects, so their lifetime vastly
    exceeds the group's stable maximum and they get flagged -- but the
    program still uses them, so ECC pruning clears them.

    ``touch_period`` is in requests.  Entries listed in
    ``rare_indexes`` are touched only every ``rare_period`` requests --
    long enough for the confirmation timeout to fire first, producing
    the one false positive that survives pruning (squid1 in Table 5).
    """

    def __init__(self, site, object_size, count, touch_period=8,
                 rare_indexes=(), rare_period=10_000):
        self.site = site
        self.object_size = object_size
        self.count = count
        self.touch_period = touch_period
        self.rare_indexes = set(rare_indexes)
        self.rare_period = rare_period
        self.addresses = []

    def setup(self, program, first_global_slot):
        """Allocate the long-lived objects and root them in globals."""
        for index in range(self.count):
            with program.frame(self.site):
                address = program.malloc(self.object_size)
            program.store(address, b"\xcc" * self.object_size)
            program.set_global(first_global_slot + index, address)
            self.addresses.append(address)

    def churn(self, program):
        """One short-lived allocation from the same site and size."""
        with program.frame(self.site):
            address = program.malloc(self.object_size)
        program.store(address, b"\xdd" * min(self.object_size, 64))
        program.free(address)

    def touch(self, program, request_index):
        """Periodically use the long-lived entries."""
        for index, address in enumerate(self.addresses):
            if index in self.rare_indexes:
                period = self.rare_period
            else:
                period = self.touch_period
            if request_index % period == index % period:
                program.load(address, min(self.object_size, 32))

    def touched_now(self, program):
        """Unconditionally touch every entry (used in teardown)."""
        for address in self.addresses:
            program.load(address, 8)
