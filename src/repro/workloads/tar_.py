"""tar: the archiving utility (34,000 LOC in Table 1).

Behavioural model: a streaming archiver -- for each member file,
allocate a 512-byte header block, stream the file body through a
reused copy buffer (little computation per byte, the profile where
per-access checking hurts most after squid), then release the header.
THE BUG: for long-name members the code frees the header early and
then reads it again while writing the name extension -- an access to
freed memory.
"""

from repro.workloads.base import Workload, fill

HEADER_SITE = 0xE100
COPY_SITE = 0xE200


class Tar(Workload):
    """Archiver with a use-after-free on long-name members."""

    name = "tar"
    loc = 34_000
    description = "an archiving utility"
    bug = "uaf"
    default_requests = 450

    compute_per_file = 220_000
    copy_chunk = 16 * 1024
    #: file index of the long-name member triggering the bug.
    trigger_file = 320

    def setup(self, program, truth):
        with program.frame(COPY_SITE):
            self.copy_buffer = program.malloc(self.copy_chunk)
        program.set_global(0, self.copy_buffer)
        self._body_chunk = b"\x24" * self.copy_chunk

    def handle_request(self, program, index, buggy, truth):
        # Member header block.
        with program.frame(HEADER_SITE):
            header = program.malloc(512)
        fill(program, header, 512)
        program.set_global(60, header)

        # Stream the member body through the reused buffer -- one
        # bulk access plan (same op order as the former scalar pair).
        program.run_ops([
            ("store", self.copy_buffer, self._body_chunk),
            ("load", self.copy_buffer, self.copy_chunk),
        ])
        program.compute(self.compute_per_file)

        program.free(header)
        program.set_global(60, 0)

        crafted = buggy and index == self.trigger_file
        if crafted:
            # THE BUG: the long-name path reads the freed header.
            truth.corruption = ("uaf", header)
            program.load(header, 16)
