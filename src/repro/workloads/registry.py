"""Registry of the seven Table 1 applications (plus extensions)."""

from repro.workloads.diurnal import DIURNAL_WORKLOADS
from repro.workloads.gzip_ import Gzip
from repro.workloads.httpd import Httpd
from repro.workloads.proftpd import Proftpd
from repro.workloads.squid import Squid1, Squid2
from repro.workloads.tar_ import Tar
from repro.workloads.ypserv import Ypserv1, Ypserv2

#: Paper Table 1 order: leak applications first, then corruption.
PAPER_WORKLOADS = {
    "ypserv1": Ypserv1,
    "proftpd": Proftpd,
    "squid1": Squid1,
    "ypserv2": Ypserv2,
    "gzip": Gzip,
    "tar": Tar,
    "squid2": Squid2,
}

#: Extension workloads beyond the paper's seven.  The ``-diurnal``
#: wrappers replay the leak workloads under seasonal session traffic
#: (see ``repro.workloads.diurnal``).
EXTENSION_WORKLOADS = {
    "httpd": Httpd,
    **DIURNAL_WORKLOADS,
}

WORKLOADS = {**PAPER_WORKLOADS, **EXTENSION_WORKLOADS}

LEAK_WORKLOADS = ("ypserv1", "proftpd", "squid1", "ypserv2")
CORRUPTION_WORKLOADS = ("gzip", "tar", "squid2")


def get_workload(name, **kwargs):
    """Instantiate a workload by its Table 1 name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(**kwargs)


def all_workload_names():
    """The paper's seven applications (Table ordering)."""
    return list(PAPER_WORKLOADS)
