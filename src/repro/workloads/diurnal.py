"""Diurnal traffic wrappers: leak workloads under seasonal load.

Production services rarely run at constant load: a session pool swells
during the day and drains at night, so ``live_bytes`` oscillates with a
large amplitude that has nothing to do with leaking.  Flat-calibrated
trend detectors (``repro.obs.trend`` with no seasonal baseline) false-
alarm on the daily climb; the SEASON experiment scores exactly that
failure mode against the seasonal-baseline mode.

Each wrapper drives one of the paper's leak workloads and adds, on top
of the inner request stream:

- a **session pool** of 256-byte objects whose population follows a
  triangle wave over :data:`SEASON_PERIOD_REQUESTS` requests (base
  :data:`SESSION_BASE` sessions at night, base + :data:`SESSION_SWING`
  at the daily peak) -- the clean seasonal signal, and
- **fixed-cycle request slots**: every request is padded to exactly
  :data:`SEASON_REQUEST_CYCLES` CPU cycles, so a run's seasonal period
  is exactly ``SEASON_PERIOD_REQUESTS * SEASON_REQUEST_CYCLES`` cycles
  and a frozen per-phase baseline lines up period after period.

The wrapper adds no randomness of its own (the triangle is a pure
function of the request index), so the inner workload's determinism --
and therefore checkpoint/resume bit-exactness -- is preserved.

Padding ticks the clock in :data:`SEASON_PAD_CHUNK` steps rather than
one large tick: a periodic timer crossed by one big tick fires once,
so chunking keeps the sampler cadence regular through the quiet tail
of each request slot.
"""

from repro.common.errors import ConfigurationError
from repro.workloads.base import Workload, fill
from repro.workloads.proftpd import Proftpd
from repro.workloads.squid import Squid1
from repro.workloads.ypserv import Ypserv1, Ypserv2

#: fixed CPU budget of one diurnal request slot, cycles.  Sized above
#: the most expensive inner request in the corpus (proftpd under
#: always-on SafeMem peaks near 830k cycles) plus session churn.
SEASON_REQUEST_CYCLES = 1_200_000

#: requests per seasonal period (one simulated "day").
SEASON_PERIOD_REQUESTS = 50

#: the seasonal period in cycles -- pass this as ``seasonal_period``
#: when watching a diurnal workload with a :class:`TrendEngine`.
SEASON_PERIOD_CYCLES = SEASON_REQUEST_CYCLES * SEASON_PERIOD_REQUESTS

#: allocation site of the session pool (a distinct leak group).
SESSION_SITE = 0xD100

#: bytes per session object.
SESSION_SIZE = 256

#: overnight session population -- never drained below this, so the
#: ``group:256:0xd100`` series persists in the sampler's top groups
#: instead of flickering in and out.
SESSION_BASE = 32

#: peak-over-base session population at the top of the triangle.
SESSION_SWING = 192

#: first program global slot holding session pointers (the pool stays
#: reachable, so it is churn, not a leak, to every detector).
SESSION_SLOT_BASE = 1000

#: padding tick granularity, cycles.  Below the sampler cadences used
#: in experiments so timers keep firing through the padding.
SEASON_PAD_CHUNK = 100_000


def session_target(index):
    """Triangle-wave session population for request ``index``."""
    phase = index % SEASON_PERIOD_REQUESTS
    half = SEASON_PERIOD_REQUESTS // 2
    level = phase if phase <= half else SEASON_PERIOD_REQUESTS - phase
    return SESSION_BASE + level * SESSION_SWING // half


class DiurnalWorkload(Workload):
    """Wrap a leak workload in diurnal session traffic.

    Subclasses set ``inner_class``; the inner workload's bug fires (or
    not) exactly as it would standalone, and its ground truth (leaked
    addresses, detections) flows through unchanged.
    """

    inner_class = None
    #: six seasonal periods by default: two warm the baseline, four
    #: remain for detection.
    default_requests = 6 * SEASON_PERIOD_REQUESTS

    def __init__(self, requests=None, seed=0):
        super().__init__(requests=requests, seed=seed)
        # The inner workload keeps its own rng stream, seeded as it
        # would be standalone, so its leak schedule is unchanged.
        self.inner = self.inner_class(requests=self.requests, seed=seed)
        self._sessions = []

    # ------------------------------------------------------------------
    # template-method hooks
    # ------------------------------------------------------------------
    def setup(self, program, truth):
        self.inner.setup(program, truth)
        self._sessions = []

    def handle_request(self, program, index, buggy, truth):
        start = program.cpu_time
        self._adjust_sessions(program, session_target(index))
        self.inner.handle_request(program, index, buggy, truth)
        used = program.cpu_time - start
        if used > SEASON_REQUEST_CYCLES:
            raise ConfigurationError(
                f"{self.name}: request {index} used {used} cycles, "
                f"over the {SEASON_REQUEST_CYCLES}-cycle diurnal slot"
            )
        deficit = SEASON_REQUEST_CYCLES - used
        while deficit > 0:
            step = min(SEASON_PAD_CHUNK, deficit)
            program.machine.clock.tick(step)
            deficit -= step

    def teardown(self, program, truth):
        while self._sessions:
            self._pop_session(program)
        self.inner.teardown(program, truth)

    # ------------------------------------------------------------------
    # the session pool
    # ------------------------------------------------------------------
    def _adjust_sessions(self, program, target):
        while len(self._sessions) < target:
            with program.frame(SESSION_SITE):
                session = program.malloc(SESSION_SIZE)
            fill(program, session, 16)
            program.set_global(
                SESSION_SLOT_BASE + len(self._sessions), session
            )
            self._sessions.append(session)
        while len(self._sessions) > target:
            self._pop_session(program)

    def _pop_session(self, program):
        session = self._sessions.pop()
        program.set_global(SESSION_SLOT_BASE + len(self._sessions), 0)
        program.free(session)


class Ypserv1Diurnal(DiurnalWorkload):
    name = "ypserv1-diurnal"
    description = "a NIS server under diurnal load"
    bug = "aleak"
    inner_class = Ypserv1


class ProftpdDiurnal(DiurnalWorkload):
    name = "proftpd-diurnal"
    description = "an FTP server under diurnal load"
    bug = "sleak"
    inner_class = Proftpd


class Squid1Diurnal(DiurnalWorkload):
    name = "squid1-diurnal"
    description = "a web proxy cache server under diurnal load"
    bug = "sleak"
    inner_class = Squid1


class Ypserv2Diurnal(DiurnalWorkload):
    name = "ypserv2-diurnal"
    description = "a NIS server under diurnal load"
    bug = "sleak"
    inner_class = Ypserv2


#: diurnal wrapper for each leak workload, registry order.
DIURNAL_WORKLOADS = {
    "ypserv1-diurnal": Ypserv1Diurnal,
    "proftpd-diurnal": ProftpdDiurnal,
    "squid1-diurnal": Squid1Diurnal,
    "ypserv2-diurnal": Ypserv2Diurnal,
}
