"""Behavioural models of the paper's seven buggy applications."""

from repro.workloads.base import GroundTruth, Workload
from repro.workloads.fixtures import TouchedCache
from repro.workloads.gzip_ import Gzip
from repro.workloads.httpd import Httpd
from repro.workloads.proftpd import Proftpd
from repro.workloads.registry import (
    CORRUPTION_WORKLOADS,
    LEAK_WORKLOADS,
    WORKLOADS,
    all_workload_names,
    get_workload,
)
from repro.workloads.squid import Squid1, Squid2
from repro.workloads.tar_ import Tar
from repro.workloads.traces import (
    GroupSpec,
    SyntheticTraceGenerator,
    Trace,
    TraceEvent,
    TraceRecorder,
    TraceReplayer,
    default_server_population,
)
from repro.workloads.ypserv import Ypserv1, Ypserv2

__all__ = [
    "GroundTruth",
    "Workload",
    "TouchedCache",
    "Gzip",
    "Httpd",
    "Proftpd",
    "CORRUPTION_WORKLOADS",
    "LEAK_WORKLOADS",
    "WORKLOADS",
    "all_workload_names",
    "get_workload",
    "Squid1",
    "Squid2",
    "Tar",
    "GroupSpec",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "default_server_population",
    "Ypserv1",
    "Ypserv2",
]
