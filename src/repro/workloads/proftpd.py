"""proftpd: an FTP server (68,700 LOC in the paper's Table 1).

Behavioural model: sessions of login / data transfer / logout.  Data
transfers move file chunks through a transfer buffer -- the moderately
copy-heavy profile that hurts per-access checkers.  THE BUG: when a
transfer aborts, the error path returns without freeing the transfer
buffer (a sometimes-leak).  Nine long-lived virtual-host configuration
blocks provide the Table 5 false positives (9 before, 0 after).
"""

from repro.workloads.base import Workload, fill
from repro.workloads.fixtures import TouchedCache

SESSION_SITE = 0xB100
TRANSFER_SITE = 0xB200
VHOST_SITE = 0xB300


class Proftpd(Workload):
    """FTP server with an abort-path transfer-buffer leak."""

    name = "proftpd"
    loc = 68_700
    description = "a ftp server"
    bug = "sleak"
    default_requests = 500

    compute_per_request = 600_000
    transfer_chunk = 8 * 1024
    #: fraction of transfers that abort (the leaky path) in buggy mode.
    abort_rate = 0.05

    def setup(self, program, truth):
        self.vhosts = TouchedCache(
            site=TRANSFER_SITE, object_size=4096, count=9, touch_period=6
        )
        self.vhosts.setup(program, first_global_slot=0)

    #: session kinds (anonymous / user / TLS) differ in control-block
    #: size, i.e. several healthy object groups for Figure 3.
    session_sizes = (256, 320, 384)

    def handle_request(self, program, index, buggy, truth):
        # Session control block, freed at logout.
        size = self.session_sizes[index % len(self.session_sizes)]
        with program.frame(SESSION_SITE):
            session = program.malloc(size)
        fill(program, session, size)
        program.set_global(60, session)

        # Transfer buffer: filled from "disk", sent to the "socket".
        with program.frame(TRANSFER_SITE):
            buffer = program.malloc(4096)
        program.set_global(61, buffer)
        program.store(buffer, b"\x5a" * 4096)
        program.load(buffer, 4096)
        # Command processing around the transfer.
        program.compute(self.compute_per_request)
        self.vhosts.touch(program, index)

        aborted = buggy and self.rng.random() < self.abort_rate
        if aborted:
            # THE BUG: the abort path forgets the transfer buffer.
            truth.leaked_addresses.add(buffer)
        else:
            program.free(buffer)
        program.set_global(61, 0)

        program.free(session)
        program.set_global(60, 0)
