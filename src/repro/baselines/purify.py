"""Purify-style dynamic checker: the paper's comparison baseline.

Faithful to the mechanism the paper describes (Section 5.1):

- **two status bits per byte** of heap memory (unallocated /
  allocated-uninitialized / allocated-initialized / freed), checked on
  *every* load and store -- this per-access interception, plus the
  instrumentation dilation of ordinary computation, is where Purify's
  4.8x-49.3x slowdown comes from;
- **red zones** around each allocation so out-of-bounds accesses land
  on unallocated shadow state;
- **conservative mark-and-sweep** over the root set (globals) and the
  live heap to find unreferenced blocks, run periodically and at exit,
  pausing the program for the whole pass.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.clock import seconds_to_cycles
from repro.common.errors import MonitorError
from repro.core.reports import CorruptionKind, CorruptionReport, LeakReport
from repro.machine.monitor import Monitor

#: shadow states (2 bits per byte, stored one byte per byte for speed).
UNALLOCATED = 0
ALLOC_UNINIT = 1
ALLOC_INIT = 2
FREED = 3


@dataclass
class PurifyConfig:
    """Knobs of the Purify-style monitor."""

    #: CPU time between mark-and-sweep leak checks (0 disables periodic
    #: checks; the exit check still runs).
    sweep_interval_s: float = 0.1
    #: red-zone bytes on each side of every allocation.
    redzone_bytes: int = 16
    #: report reads of allocated-but-uninitialized bytes.
    detect_uninit: bool = True
    #: run a final mark-and-sweep when the program exits.
    leak_check_at_exit: bool = True

    @property
    def sweep_interval_cycles(self):
        return seconds_to_cycles(self.sweep_interval_s)


class Purify(Monitor):
    """Every-access shadow-memory checker with mark-and-sweep leaks."""

    name = "purify"

    def __init__(self, config=None):
        super().__init__()
        self.config = config or PurifyConfig()
        self.corruption_reports = []
        self.leak_reports = []
        self._shadow = None
        self._heap_base = 0
        self._heap_end = 0
        self._blocks = {}
        self._block_of_user = {}
        self._last_sweep_cycle = 0
        self.sweeps = 0
        self.words_swept = 0
        self.access_checks = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_attach(self):
        program = self.program
        self._heap_base = program.heap_base
        self._heap_end = program.heap_base + program.heap_size
        self._shadow = np.zeros(program.heap_size, dtype=np.uint8)

    def on_exit(self):
        if self.config.leak_check_at_exit:
            self._mark_and_sweep(final=True)

    # ------------------------------------------------------------------
    # instrumentation dilation
    # ------------------------------------------------------------------
    def instruction_cost(self):
        return self.program.machine.costs.purify_instruction_cost()

    # ------------------------------------------------------------------
    # per-access checking
    # ------------------------------------------------------------------
    def before_load(self, vaddr, size):
        self._charge_check(size)
        states = self._states(vaddr, size)
        if states is None:
            return
        if (states == FREED).any():
            self._report(CorruptionKind.USE_AFTER_FREE, vaddr, "read", size)
        if (states == UNALLOCATED).any():
            self._report(CorruptionKind.BUFFER_OVERFLOW, vaddr, "read", size)
        if self.config.detect_uninit and (states == ALLOC_UNINIT).any():
            self._report(
                CorruptionKind.UNINITIALIZED_READ, vaddr, "read", size
            )

    def before_store(self, vaddr, size):
        self._charge_check(size)
        states = self._states(vaddr, size)
        if states is None:
            return
        if (states == FREED).any():
            self._report(CorruptionKind.USE_AFTER_FREE, vaddr, "write", size)
        if (states == UNALLOCATED).any():
            self._report(CorruptionKind.BUFFER_OVERFLOW, vaddr, "write",
                         size)
        # A store initializes the bytes it touches.
        states[states == ALLOC_UNINIT] = ALLOC_INIT

    def _states(self, vaddr, size):
        if vaddr < self._heap_base or vaddr + size > self._heap_end:
            return None  # non-heap access: checked but always legal here
        offset = vaddr - self._heap_base
        return self._shadow[offset:offset + size]

    def _charge_check(self, size):
        self.access_checks += 1
        machine = self.program.machine
        machine.clock.tick(
            machine.costs.purify_access_check
            + size * machine.costs.purify_access_check_per_byte
        )

    # ------------------------------------------------------------------
    # allocation interposition
    # ------------------------------------------------------------------
    def malloc(self, size, call_signature):
        red = self.config.redzone_bytes
        block = self.program.allocator.malloc(size + 2 * red)
        user = block + red
        self._blocks[user] = size
        self._block_of_user[user] = block
        self._set_state(user, size, ALLOC_UNINIT)
        self._charge_shadow_update(size)
        self._maybe_sweep()
        return user

    def free(self, address):
        size = self._blocks.pop(address, None)
        if size is None:
            # Let the allocator produce its usual diagnostics for a
            # wild or double free (Purify would also flag these).
            self.program.allocator.free(address)
            return
        block = self._block_of_user.pop(address)
        self._set_state(address, size, FREED)
        self._charge_shadow_update(size)
        self.program.allocator.free(block)
        self._maybe_sweep()

    def realloc(self, address, new_size, call_signature):
        if address is None:
            return self.malloc(new_size, call_signature)
        old_size = self._blocks.get(address, 0)
        keep = min(old_size, new_size)
        data = self.program.load(address, keep) if keep else b""
        self.free(address)
        new_address = self.malloc(new_size, call_signature)
        if data:
            self.program.store(new_address, data)
        return new_address

    def _set_state(self, address, size, state):
        offset = address - self._heap_base
        self._shadow[offset:offset + size] = state

    def _charge_shadow_update(self, size):
        machine = self.program.machine
        machine.clock.tick(
            size * machine.costs.purify_shadow_update_per_byte
        )

    # ------------------------------------------------------------------
    # mark-and-sweep leak detection
    # ------------------------------------------------------------------
    def _maybe_sweep(self):
        interval = self.config.sweep_interval_cycles
        if interval <= 0:
            return
        now = self.program.machine.clock.cycles
        if now - self._last_sweep_cycle >= interval:
            self._last_sweep_cycle = now
            self._mark_and_sweep()

    def _mark_and_sweep(self, final=False):
        """Conservative pointer scan; unreferenced live blocks leak.

        The program is paused for the duration: the whole cost lands on
        its CPU clock, exactly the service-time perturbation the paper
        criticises for server programs.
        """
        machine = self.program.machine
        self.sweeps += 1
        if not self._blocks:
            machine.clock.tick(machine.costs.purify_sweep_base)
            return

        starts = np.array(sorted(self._blocks), dtype=np.uint64)
        sizes = np.array([self._blocks[int(s)] for s in starts],
                         dtype=np.uint64)
        ends = starts + sizes
        reached = np.zeros(len(starts), dtype=bool)
        words_scanned = 0

        def scan(raw):
            nonlocal words_scanned
            usable = len(raw) - len(raw) % 8
            words = np.frombuffer(raw, dtype="<u8", count=usable // 8)
            words_scanned += len(words)
            candidates = words[
                (words >= self._heap_base) & (words < self._heap_end)
            ]
            return candidates

        worklist = []

        def mark(candidates):
            if len(candidates) == 0:
                return
            index = np.searchsorted(starts, candidates, side="right") - 1
            valid = index >= 0
            index = index[valid]
            candidates = candidates[valid]
            inside = candidates < ends[index]
            for i in np.unique(index[inside]):
                if not reached[i]:
                    reached[i] = True
                    worklist.append(int(starts[i]))

        roots = machine.read_virtual_raw(
            self.program.globals_base, self.program.globals_size
        )
        mark(scan(roots))
        while worklist:
            address = worklist.pop()
            size = self._blocks[address]
            mark(scan(machine.read_virtual_raw(address, size)))

        machine.clock.tick(
            machine.costs.purify_sweep_base
            + words_scanned * machine.costs.purify_sweep_per_word
        )
        self.words_swept += words_scanned

        now = machine.clock.cycles
        already = {r.object_address for r in self.leak_reports}
        for i in np.flatnonzero(~reached):
            address = int(starts[i])
            if address in already:
                continue
            self.leak_reports.append(LeakReport(
                object_address=address,
                object_size=int(sizes[i]),
                group_size=int(sizes[i]),
                call_signature=0,
                kind="mark_sweep",
                allocated_at_cycle=0,
                reported_at_cycle=now,
            ))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self, kind, vaddr, access, size):
        report = CorruptionReport(
            kind=kind,
            access_address=vaddr,
            access_type=access,
            buffer_address=vaddr,
            buffer_size=size,
            detected_at_cycle=self.program.machine.clock.cycles,
        )
        self.corruption_reports.append(report)
        raise MonitorError(report)

    def statistics(self):
        return {
            "access_checks": self.access_checks,
            "sweeps": self.sweeps,
            "words_swept": self.words_swept,
            "corruption_reports": len(self.corruption_reports),
            "leak_reports": len(self.leak_reports),
        }
