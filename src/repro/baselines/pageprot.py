"""Page-protection guard baseline (the Table 4 comparison).

Implements the same guard idea as SafeMem's corruption detector but
with the only fine-grained protection primitive a stock OS offers:
``mprotect``.  Each allocation becomes

    [guard page] [page-aligned user buffer] [guard page]

with the guards set to PROT_NONE, and freed buffers are quarantined
behind PROT_NONE until recycled.  Functionally equivalent to the ECC
version -- but every buffer now costs at least two 4 KiB pages of
padding plus page-granularity rounding, which is the 64-74x memory
waste the paper measures against ECC protection.
"""

from collections import deque
from dataclasses import dataclass

from repro.common.constants import PAGE_SIZE, align_up
from repro.common.errors import InvalidFree, MonitorError
from repro.core.reports import CorruptionKind, CorruptionReport
from repro.machine.monitor import Monitor
from repro.mmu.pagetable import PROT_NONE, PROT_RW


@dataclass
class PageProtConfig:
    """Knobs of the page-protection guard tool."""

    #: guard pages on each side of every buffer.
    guard_pages: int = 1
    #: freed-buffer quarantine cap in bytes.
    freed_quarantine_bytes: int = 4 * 1024 * 1024


class _PageLayout:
    __slots__ = ("block_address", "block_size", "user_address",
                 "user_size", "user_span")

    def __init__(self, block_address, block_size, user_address,
                 user_size, user_span):
        self.block_address = block_address
        self.block_size = block_size
        self.user_address = user_address
        self.user_size = user_size
        self.user_span = user_span

    @property
    def waste_bytes(self):
        return self.block_size - self.user_size


class PageProtGuard(Monitor):
    """mprotect-based overflow and use-after-free detector."""

    name = "pageprot"

    def __init__(self, config=None):
        super().__init__()
        self.config = config or PageProtConfig()
        self.corruption_reports = []
        self._layouts = {}
        self._guarded_pages = {}
        self._freed_pages = {}
        self._quarantine = deque()
        self._quarantine_bytes = 0
        self.requested_bytes = 0
        self.monitor_waste_bytes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_attach(self):
        self.program.machine.kernel.register_segv_handler(self._on_segv)

    def on_exit(self):
        self._drain_quarantine(drain_all=True)
        for layout in list(self._layouts.values()):
            self._unguard(layout)

    # ------------------------------------------------------------------
    # allocation interposition
    # ------------------------------------------------------------------
    def malloc(self, size, call_signature):
        kernel = self.program.machine.kernel
        guard = self.config.guard_pages * PAGE_SIZE
        user_span = align_up(size, PAGE_SIZE)
        block_size = guard + user_span + guard
        block = self.program.allocator.malloc(block_size,
                                              alignment=PAGE_SIZE)
        user = block + guard
        # Touch the guard pages so they are resident, then revoke them.
        self.program.machine.store(block, b"\0")
        self.program.machine.store(user + user_span, b"\0")
        kernel.mprotect(block, guard, PROT_NONE)
        kernel.mprotect(user + user_span, guard, PROT_NONE)
        layout = _PageLayout(block, block_size, user, size, user_span)
        self._layouts[user] = layout
        for page in range(block, user, PAGE_SIZE):
            self._guarded_pages[page] = layout
        for page in range(user + user_span, block + block_size, PAGE_SIZE):
            self._guarded_pages[page] = layout
        self.requested_bytes += size
        self.monitor_waste_bytes += layout.waste_bytes
        return user

    def free(self, address):
        layout = self._layouts.pop(address, None)
        if layout is None:
            raise InvalidFree(
                f"free of address {address:#x} not returned by malloc"
            )
        kernel = self.program.machine.kernel
        # Freed buffer: revoke the user pages until recycled.
        kernel.mprotect(layout.user_address, layout.user_span, PROT_NONE)
        for page in range(layout.user_address,
                          layout.user_address + layout.user_span,
                          PAGE_SIZE):
            self._freed_pages[page] = layout
        self._quarantine.append(layout)
        self._quarantine_bytes += layout.block_size
        self._drain_quarantine()

    def realloc(self, address, new_size, call_signature):
        if address is None:
            return self.malloc(new_size, call_signature)
        layout = self._layouts.get(address)
        keep = min(layout.user_size if layout else 0, new_size)
        data = self.program.load(address, keep) if keep else b""
        self.free(address)
        new_address = self.malloc(new_size, call_signature)
        if data:
            self.program.store(new_address, data)
        return new_address

    # ------------------------------------------------------------------
    # SIGSEGV handler
    # ------------------------------------------------------------------
    def _on_segv(self, fault):
        page = fault.vaddr - fault.vaddr % PAGE_SIZE
        layout = self._guarded_pages.get(page)
        if layout is not None:
            self._report(CorruptionKind.BUFFER_OVERFLOW, fault, layout)
        layout = self._freed_pages.get(page)
        if layout is not None:
            self._report(CorruptionKind.USE_AFTER_FREE, fault, layout)
        return False  # not ours: let the fault propagate

    def _report(self, kind, fault, layout):
        report = CorruptionReport(
            kind=kind,
            access_address=fault.vaddr,
            access_type=fault.access,
            buffer_address=layout.user_address,
            buffer_size=layout.user_size,
            detected_at_cycle=self.program.machine.clock.cycles,
        )
        self.corruption_reports.append(report)
        raise MonitorError(report)

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def _drain_quarantine(self, drain_all=False):
        kernel = self.program.machine.kernel
        limit = 0 if drain_all else self.config.freed_quarantine_bytes
        while self._quarantine and self._quarantine_bytes > limit:
            layout = self._quarantine.popleft()
            kernel.mprotect(layout.user_address, layout.user_span, PROT_RW)
            for page in range(layout.user_address,
                              layout.user_address + layout.user_span,
                              PAGE_SIZE):
                self._freed_pages.pop(page, None)
            self._unguard(layout)
            self.program.allocator.free(layout.block_address)
            self._quarantine_bytes -= layout.block_size

    def _unguard(self, layout):
        kernel = self.program.machine.kernel
        guard = self.config.guard_pages * PAGE_SIZE
        block = layout.block_address
        user = layout.user_address
        span = layout.user_span
        kernel.mprotect(block, guard, PROT_RW)
        kernel.mprotect(user + span, guard, PROT_RW)
        for page in range(block, user, PAGE_SIZE):
            self._guarded_pages.pop(page, None)
        for page in range(user + span, block + layout.block_size,
                          PAGE_SIZE):
            self._guarded_pages.pop(page, None)
        self._layouts.pop(user, None)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def space_overhead_fraction(self):
        """Monitoring bytes over requested bytes (Table 4's metric)."""
        if self.requested_bytes == 0:
            return 0.0
        return self.monitor_waste_bytes / self.requested_bytes
