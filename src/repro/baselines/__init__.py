"""Comparison baselines: Purify-style checker, page-protection guards."""

from repro.baselines.pageprot import PageProtConfig, PageProtGuard
from repro.baselines.purify import Purify, PurifyConfig
from repro.machine.monitor import NullMonitor

__all__ = [
    "PageProtConfig",
    "PageProtGuard",
    "Purify",
    "PurifyConfig",
    "NullMonitor",
]
