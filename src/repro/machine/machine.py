"""The simulated machine: DRAM + ECC controller + cache + MMU + kernel.

One :class:`Machine` is one booted system.  Programs access memory
through :meth:`load`/:meth:`store`, which walk the full path
(translation -> cache -> ECC controller) and transparently retry after
a user-handled ECC fault, modelling the interrupted-and-resumed
instruction of real hardware.
"""

import warnings

from repro.cache.cache import Cache
from repro.common.clock import VirtualClock
from repro.common.constants import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    align_down,
    line_base,
)
from repro.common.costs import default_cost_model
from repro.common.errors import MachinePanic, PageFault, ProtectionFault
from repro.common.events import EventKind, EventLog
from repro.ecc.controller import EccMode, MemoryController
from repro.ecc.dram import PhysicalMemory
from repro.ecc.faults import UncorrectableEccError
from repro.kernel.kernel import Kernel
from repro.mmu.mmu import Mmu
from repro.mmu.pagetable import FrameAllocator, PageTable
from repro.mmu.swap import SwapDevice
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: A livelock guard: a correct handler fixes a line in one delivery,
#: but one access may legitimately fault once per cache line it spans
#: (each armed line needs its own delivery), so the budget scales with
#: the access size.
MAX_FAULT_RETRIES = 8


def _retry_budget(size):
    return MAX_FAULT_RETRIES + size // CACHE_LINE_SIZE + 1


#: Legacy ``perf_counters()`` key -> registry metric name.  The shim
#: (and any migration off it) reads from this single source of truth.
PERF_COUNTER_METRICS = {
    "tlb_hits": "mmu.tlb.hit",
    "tlb_misses": "mmu.tlb.miss",
    "tlb_invalidations": "mmu.tlb.invalidation",
    "tlb_flushes": "mmu.tlb.flush",
    "fast_loads": "machine.load.fast",
    "fast_stores": "machine.store.fast",
    "slow_loads": "machine.load.slow",
    "slow_stores": "machine.store.slow",
    "ecc_clean_line_reads": "ecc.codec.clean_line_reads",
    "ecc_group_decodes": "ecc.codec.group_decodes",
    "ecc_batched_line_writes": "ecc.codec.lines_batched",
}


class Machine:
    """A booted simulated system with ECC memory."""

    def __init__(self, dram_size=32 * 1024 * 1024, cache_size=256 * 1024,
                 cache_ways=8, ecc_mode=EccMode.CORRECT_ERROR,
                 cost_model=None, max_pinned_pages=None, cache_levels=1,
                 l1_size=16 * 1024, l1_ways=4):
        #: how this machine was booted -- recorded into forensic
        #: bundles so replay can construct an identical machine
        #: (the cost model is assumed default; custom models are an
        #: in-process experiment concern, not a production config).
        self.boot_config = {
            "dram_size": dram_size,
            "cache_size": cache_size,
            "cache_ways": cache_ways,
            "ecc_mode": ecc_mode.value,
            "max_pinned_pages": max_pinned_pages,
            "cache_levels": cache_levels,
            "l1_size": l1_size,
            "l1_ways": l1_ways,
        }
        self.costs = cost_model or default_cost_model()
        self.clock = VirtualClock()
        self.events = EventLog(self.clock)
        self.metrics = MetricsRegistry(clock=self.clock)
        self.tracer = Tracer(self.clock, registry=self.metrics,
                             events=self.events)
        self.dram = PhysicalMemory(dram_size)
        self.controller = MemoryController(self.dram, mode=ecc_mode,
                                           metrics=self.metrics)
        if cache_levels == 2:
            from repro.cache.hierarchy import CacheHierarchy
            self.cache = CacheHierarchy(
                self.controller,
                l1_size=l1_size,
                l1_ways=l1_ways,
                l2_size=cache_size,
                l2_ways=cache_ways,
                clock=self.clock,
                cost_model=self.costs,
                metrics=self.metrics,
            )
        else:
            self.cache = Cache(
                self.controller,
                size=cache_size,
                ways=cache_ways,
                clock=self.clock,
                cost_model=self.costs,
                metrics=self.metrics,
            )
        self.page_table = PageTable()
        self.frames = FrameAllocator(dram_size)
        self.swap = SwapDevice(metrics=self.metrics)
        self.mmu = Mmu(
            self.page_table,
            self.frames,
            self.swap,
            self.dram,
            self.cache,
            self.controller,
            metrics=self.metrics,
        )
        self.kernel = Kernel(
            self.dram,
            self.controller,
            self.cache,
            self.mmu,
            self.page_table,
            self.clock,
            self.costs,
            self.events,
            max_pinned_pages=max_pinned_pages,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        # Short-circuit access path: taken only while *zero* cache lines
        # are armed (the overwhelmingly common production state).  The
        # registry listener flips the flag the instant a watch is armed,
        # so an armed line always sees the full fault-retry machinery
        # and "first touch faults" is preserved.
        self._fast_path_enabled = True
        self.kernel.watches.add_listener(self._on_watch_registry_change)
        self.fast_loads = 0
        self.fast_stores = 0
        self.slow_loads = 0
        self.slow_stores = 0
        self.register_metrics(self.metrics)

    def register_metrics(self, metrics):
        """Publish the machine's own access-path probes."""
        metrics.probe("machine.load.fast", lambda: self.fast_loads,
                      kind="counter",
                      description="loads served by the short-circuit path")
        metrics.probe("machine.store.fast", lambda: self.fast_stores,
                      kind="counter")
        metrics.probe("machine.load.slow", lambda: self.slow_loads,
                      kind="counter",
                      description="loads through the full fault-retry walk")
        metrics.probe("machine.store.slow", lambda: self.slow_stores,
                      kind="counter")
        metrics.probe("machine.events", lambda: len(self.events),
                      kind="counter",
                      description="events emitted into the event log")

    def _on_watch_registry_change(self, registry):
        self._fast_path_enabled = registry.armed_line_count == 0

    def perf_counters(self):
        """Deprecated flat counter dict; use ``machine.metrics``.

        Kept as a versioned view over the registry so old callers keep
        working: every key maps onto a registered metric (see
        :data:`PERF_COUNTER_METRICS`).
        """
        warnings.warn(
            "Machine.perf_counters() is deprecated; use the registry "
            "snapshot Machine.metrics.snapshot() instead (see "
            "docs/OBSERVABILITY.md#reading-metrics, and "
            "PERF_COUNTER_METRICS for the key-to-metric mapping)",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            key: self.metrics.value(name)
            for key, name in PERF_COUNTER_METRICS.items()
        }

    # ------------------------------------------------------------------
    # program-visible memory access
    # ------------------------------------------------------------------
    def load(self, vaddr, size):
        """Load ``size`` bytes from virtual memory.

        An uncorrectable ECC fault is delivered to the kernel; if the
        user-level handler claims it (after disarming/restoring the
        line) the access retries and completes, like a resumed
        instruction after a machine-check.

        While no watchpoints are armed, a single-line access whose
        translation and cache line are both hot short-circuits the
        fault-retry machinery entirely (identical costs and statistics;
        a resident cache line can never raise an ECC fault).
        """
        if (self._fast_path_enabled and 0 < size
                and (vaddr % CACHE_LINE_SIZE) + size <= CACHE_LINE_SIZE):
            paddr = self.mmu.translate_fast(vaddr)
            if paddr is not None:
                data = self.cache.fast_read(paddr, size)
                if data is not None:
                    self.fast_loads += 1
                    return data
        self.slow_loads += 1
        for _ in range(_retry_budget(size)):
            try:
                return self._walk(vaddr, size, write=False)
            except UncorrectableEccError as exc:
                self.kernel.handle_uncorrectable_fault(exc.fault,
                                                       access="read")
            except ProtectionFault as exc:
                if not self.kernel.handle_protection_fault(exc):
                    raise
        self._retry_panic(vaddr, _retry_budget(size))

    def store(self, vaddr, data):
        """Store bytes to virtual memory (write-allocate, so a store to
        a watched line also trips the watchpoint via its line fill)."""
        if (self._fast_path_enabled and data
                and (vaddr % CACHE_LINE_SIZE) + len(data) <= CACHE_LINE_SIZE):
            paddr = self.mmu.translate_fast(vaddr, write=True)
            if paddr is not None and self.cache.fast_write(paddr, data):
                self.fast_stores += 1
                return
        self.slow_stores += 1
        for _ in range(_retry_budget(len(data))):
            try:
                self._walk(vaddr, len(data), write=True, data=data)
                return
            except UncorrectableEccError as exc:
                self.kernel.handle_uncorrectable_fault(exc.fault,
                                                       access="write")
            except ProtectionFault as exc:
                if not self.kernel.handle_protection_fault(exc):
                    raise
        self._retry_panic(vaddr, _retry_budget(len(data)))

    def _retry_panic(self, vaddr, budget):
        """Give up on an access whose fault the handler cannot clear.

        Emits a PANIC event first so post-mortem subscribers (the
        tracer's panic dump, forensic recorders) capture the machine
        state, mirroring the kernel's unhandled-fault panic path.
        """
        reason = (f"ECC fault at {vaddr:#x} persisted after "
                  f"{budget} handler retries")
        self.events.emit(EventKind.PANIC, address=vaddr, reason=reason)
        raise MachinePanic(reason)

    # ------------------------------------------------------------------
    # raw (tool-level) access: no cycles, no faults
    # ------------------------------------------------------------------
    def read_virtual_raw(self, vaddr, size):
        """Assemble the current bytes of ``[vaddr, vaddr+size)``.

        Reads resident frames and swap slots directly, returning zeros
        for never-touched pages.  Used by tools (e.g. Purify's
        mark-and-sweep) that charge their own modelled cost instead of
        walking the access path word by word.
        """
        out = bytearray()
        cursor = vaddr
        end = vaddr + size
        while cursor < end:
            page = align_down(cursor, PAGE_SIZE)
            take = min(end - cursor, page + PAGE_SIZE - cursor)
            entry = self.page_table.lookup(cursor)
            if entry is None:
                raise PageFault(cursor)
            if entry.present:
                frame_base = entry.pfn * PAGE_SIZE
                offset = cursor - page
                # Flush any dirty cached lines so DRAM is current.
                self._sync_lines(frame_base + offset, take)
                out += self.dram.read_raw(frame_base + offset, take)
            elif entry.in_swap:
                data = self.swap.peek(entry.vpn)
                offset = cursor - page
                out += data[offset:offset + take]
            else:
                out += bytes(take)
            cursor += take
        return bytes(out)

    def _sync_lines(self, paddr, size):
        first = line_base(paddr)
        last = line_base(paddr + size - 1)
        for line in range(first, last + CACHE_LINE_SIZE, CACHE_LINE_SIZE):
            if self.cache.contains(line):
                self.cache.flush_line(line)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _walk(self, vaddr, size, write, data=None):
        """One attempt at the access, split at page boundaries."""
        out = bytearray() if not write else None
        cursor = vaddr
        end = vaddr + size
        position = 0
        while cursor < end:
            page_end = align_down(cursor, PAGE_SIZE) + PAGE_SIZE
            take = min(end - cursor, page_end - cursor)
            paddr = self.mmu.translate(cursor, write=write)
            if write:
                self.cache.store(paddr, data[position:position + take])
            else:
                out += self.cache.load(paddr, take)
            cursor += take
            position += take
        return bytes(out) if not write else None

    def __repr__(self):
        return (
            f"Machine(dram={self.dram.size >> 20} MiB, "
            f"mode={self.controller.mode.value}, "
            f"cycles={self.clock.cycles})"
        )
