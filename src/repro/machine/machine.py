"""The simulated machine: DRAM + ECC controller + cache + MMU + kernel.

One :class:`Machine` is one booted system.  Programs access memory
through :meth:`load`/:meth:`store`, which walk the full path
(translation -> cache -> ECC controller) and transparently retry after
a user-handled ECC fault, modelling the interrupted-and-resumed
instruction of real hardware.
"""

import warnings

from repro.cache.cache import Cache
from repro.common.clock import VirtualClock
from repro.common.constants import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    align_down,
    line_base,
)
from repro.common.costs import default_cost_model
from repro.common.errors import (
    ConfigurationError,
    MachinePanic,
    PageFault,
    ProtectionFault,
)
from repro.common.events import EventKind, EventLog
from repro.ecc.controller import EccMode, MemoryController
from repro.ecc.dram import PhysicalMemory
from repro.ecc.faults import UncorrectableEccError
from repro.ecc.profile import get_profile
from repro.kernel.kernel import Kernel
from repro.mmu.mmu import Mmu
from repro.mmu.pagetable import FrameAllocator, PageTable
from repro.mmu.swap import SwapDevice
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: A livelock guard: a correct handler fixes a line in one delivery,
#: but one access may legitimately fault once per cache line it spans
#: (each armed line needs its own delivery), so the budget scales with
#: the access size.
MAX_FAULT_RETRIES = 8


def _retry_budget(size):
    return MAX_FAULT_RETRIES + size // CACHE_LINE_SIZE + 1


#: Legacy ``perf_counters()`` key -> registry metric name.  The shim
#: (and any migration off it) reads from this single source of truth.
PERF_COUNTER_METRICS = {
    "tlb_hits": "mmu.tlb.hit",
    "tlb_misses": "mmu.tlb.miss",
    "tlb_invalidations": "mmu.tlb.invalidation",
    "tlb_flushes": "mmu.tlb.flush",
    "fast_loads": "machine.load.fast",
    "fast_stores": "machine.store.fast",
    "slow_loads": "machine.load.slow",
    "slow_stores": "machine.store.slow",
    "batched_loads": "machine.load.batched",
    "batched_stores": "machine.store.batched",
    "ecc_clean_line_reads": "ecc.codec.clean_line_reads",
    "ecc_group_decodes": "ecc.codec.group_decodes",
    "ecc_batched_line_writes": "ecc.codec.lines_batched",
}


class Machine:
    """A booted simulated system with ECC memory."""

    #: Whether :meth:`run_ops` uses the batched engine.  A class
    #: attribute so differential tests can monkeypatch it off and push
    #: the same access plan through the scalar path.
    batching_enabled = True

    def __init__(self, dram_size=32 * 1024 * 1024, cache_size=256 * 1024,
                 cache_ways=8, ecc_mode=EccMode.CORRECT_ERROR,
                 cost_model=None, max_pinned_pages=None, cache_levels=1,
                 l1_size=16 * 1024, l1_ways=4, profile=None):
        #: the chipset profile (codec, scrub cadence, fault noise)
        #: this machine's memory system is built for.
        self.profile = get_profile(profile)
        #: how this machine was booted -- recorded into forensic
        #: bundles so replay can construct an identical machine
        #: (the cost model is assumed default; custom models are an
        #: in-process experiment concern, not a production config).
        self.boot_config = {
            "dram_size": dram_size,
            "cache_size": cache_size,
            "cache_ways": cache_ways,
            "ecc_mode": ecc_mode.value,
            "max_pinned_pages": max_pinned_pages,
            "cache_levels": cache_levels,
            "l1_size": l1_size,
            "l1_ways": l1_ways,
            "profile": self.profile.name,
        }
        codec = self.profile.build_codec()
        self.costs = cost_model or default_cost_model()
        self.clock = VirtualClock()
        self.events = EventLog(self.clock)
        self.metrics = MetricsRegistry(clock=self.clock)
        self.tracer = Tracer(self.clock, registry=self.metrics,
                             events=self.events)
        self.dram = PhysicalMemory(
            dram_size, check_bytes_per_group=codec.check_bytes
        )
        self.controller = MemoryController(self.dram, mode=ecc_mode,
                                           codec=codec,
                                           metrics=self.metrics)
        if cache_levels == 2:
            from repro.cache.hierarchy import CacheHierarchy
            self.cache = CacheHierarchy(
                self.controller,
                l1_size=l1_size,
                l1_ways=l1_ways,
                l2_size=cache_size,
                l2_ways=cache_ways,
                clock=self.clock,
                cost_model=self.costs,
                metrics=self.metrics,
            )
        else:
            self.cache = Cache(
                self.controller,
                size=cache_size,
                ways=cache_ways,
                clock=self.clock,
                cost_model=self.costs,
                metrics=self.metrics,
            )
        self.page_table = PageTable()
        self.frames = FrameAllocator(dram_size)
        self.swap = SwapDevice(metrics=self.metrics)
        self.mmu = Mmu(
            self.page_table,
            self.frames,
            self.swap,
            self.dram,
            self.cache,
            self.controller,
            metrics=self.metrics,
        )
        self.kernel = Kernel(
            self.dram,
            self.controller,
            self.cache,
            self.mmu,
            self.page_table,
            self.clock,
            self.costs,
            self.events,
            max_pinned_pages=max_pinned_pages,
            metrics=self.metrics,
            tracer=self.tracer,
            scrub_interval_cycles=self.profile.scrub_interval_cycles,
        )
        # Short-circuit access path: taken only while *zero* cache lines
        # are armed (the overwhelmingly common production state).  The
        # registry listener flips the flag the instant a watch is armed,
        # so an armed line always sees the full fault-retry machinery
        # and "first touch faults" is preserved.
        self._fast_path_enabled = True
        self.kernel.watches.add_listener(self._on_watch_registry_change)
        self.fast_loads = 0
        self.fast_stores = 0
        self.slow_loads = 0
        self.slow_stores = 0
        self.batched_loads = 0
        self.batched_stores = 0
        self.register_metrics(self.metrics)

    def register_metrics(self, metrics):
        """Publish the machine's own access-path probes."""
        metrics.probe("machine.load.fast", lambda: self.fast_loads,
                      kind="counter",
                      description="loads served by the short-circuit path")
        metrics.probe("machine.store.fast", lambda: self.fast_stores,
                      kind="counter")
        metrics.probe("machine.load.slow", lambda: self.slow_loads,
                      kind="counter",
                      description="loads through the full fault-retry walk")
        metrics.probe("machine.store.slow", lambda: self.slow_stores,
                      kind="counter")
        metrics.probe("machine.load.batched", lambda: self.batched_loads,
                      kind="counter",
                      description="loads served by the batched engine")
        metrics.probe("machine.store.batched", lambda: self.batched_stores,
                      kind="counter",
                      description="stores served by the batched engine")
        metrics.probe("machine.events", lambda: len(self.events),
                      kind="counter",
                      description="events emitted into the event log")

    def _on_watch_registry_change(self, registry):
        self._fast_path_enabled = registry.armed_line_count == 0

    def perf_counters(self):
        """Deprecated flat counter dict; use ``machine.metrics``.

        Kept as a versioned view over the registry so old callers keep
        working: every key maps onto a registered metric (see
        :data:`PERF_COUNTER_METRICS`).
        """
        warnings.warn(
            "Machine.perf_counters() is deprecated; use the registry "
            "snapshot Machine.metrics.snapshot() instead (see "
            "docs/OBSERVABILITY.md#reading-metrics, and "
            "PERF_COUNTER_METRICS for the key-to-metric mapping)",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            key: self.metrics.value(name)
            for key, name in PERF_COUNTER_METRICS.items()
        }

    # ------------------------------------------------------------------
    # program-visible memory access
    # ------------------------------------------------------------------
    def load(self, vaddr, size):
        """Load ``size`` bytes from virtual memory.

        An uncorrectable ECC fault is delivered to the kernel; if the
        user-level handler claims it (after disarming/restoring the
        line) the access retries and completes, like a resumed
        instruction after a machine-check.

        While no watchpoints are armed, a single-line access whose
        translation and cache line are both hot short-circuits the
        fault-retry machinery entirely (identical costs and statistics;
        a resident cache line can never raise an ECC fault).
        """
        if (self._fast_path_enabled and 0 < size
                and (vaddr % CACHE_LINE_SIZE) + size <= CACHE_LINE_SIZE):
            paddr = self.mmu.translate_fast(vaddr)
            if paddr is not None:
                data = self.cache.fast_read(paddr, size)
                if data is not None:
                    self.fast_loads += 1
                    return data
        self.slow_loads += 1
        return self._access_with_retry(vaddr, size, False)

    def store(self, vaddr, data):
        """Store bytes to virtual memory (write-allocate, so a store to
        a watched line also trips the watchpoint via its line fill)."""
        if (self._fast_path_enabled and data
                and (vaddr % CACHE_LINE_SIZE) + len(data) <= CACHE_LINE_SIZE):
            paddr = self.mmu.translate_fast(vaddr, write=True)
            if paddr is not None and self.cache.fast_write(paddr, data):
                self.fast_stores += 1
                return
        self.slow_stores += 1
        self._access_with_retry(vaddr, len(data), True, data)

    def _access_with_retry(self, vaddr, size, write, data=None,
                           span=False):
        """The fault-retry loop shared by every non-short-circuit path.

        One ``walk`` attempt per delivered-and-handled fault, up to the
        livelock budget; ``span=True`` moves whole-line spans through
        the cache (:meth:`_span_walk`), which is bookkeeping-identical
        to the scalar :meth:`_walk` but amortizes Python overhead.
        """
        walk = self._span_walk if span else self._walk
        access = "write" if write else "read"
        budget = _retry_budget(size)
        for _ in range(budget):
            try:
                return walk(vaddr, size, write, data)
            except UncorrectableEccError as exc:
                self.kernel.handle_uncorrectable_fault(exc.fault,
                                                       access=access)
            except ProtectionFault as exc:
                if not self.kernel.handle_protection_fault(exc):
                    raise
        self._retry_panic(vaddr, budget)

    # ------------------------------------------------------------------
    # batched execution engine
    # ------------------------------------------------------------------
    def run_ops(self, plan):
        """Execute an access plan in one call.

        ``plan`` is a sequence of ops: ``("load", vaddr, size)`` or
        ``("store", vaddr, data)``.  Returns one entry per op, in plan
        order: the loaded ``bytes`` for loads, ``None`` for stores.

        The batched engine resolves translation once per page run
        (a per-plan page->frame cache, discarded on any TLB shootdown),
        serves resident single-line ops inline, and moves everything
        else through whole-line span walks.  Any op that overlaps an
        armed/watched line -- and any zero-sized op -- falls back to
        the scalar :meth:`load`/:meth:`store`, so watchpoint semantics
        and cycle accounting are identical to scalar execution; a
        tier-1 differential test pins that equivalence.  The only
        observable differences are instrumentation: ``mmu.tlb.hit``
        undercounts pages served from the plan cache, and batched ops
        count under ``machine.*.batched`` instead of fast/slow.
        """
        if not self.batching_enabled:
            results = []
            for op in plan:
                kind = op[0]
                if kind == "load":
                    results.append(self.load(op[1], op[2]))
                elif kind == "store":
                    self.store(op[1], op[2])
                    results.append(None)
                else:
                    raise ConfigurationError(
                        f"unknown op kind {kind!r} in access plan")
            return results

        results = []
        append = results.append
        to_bytes = bytes
        mmu = self.mmu
        clock = self.clock
        tick_clock = clock.tick
        hit_cost = self.costs.cache_hit
        l1 = getattr(self.cache, "l1", self.cache)
        sets = l1._sets
        num_sets = l1.num_sets
        line_size = CACHE_LINE_SIZE
        page_size = PAGE_SIZE
        overlaps = self.kernel.watches.overlaps_range
        translate = mmu.translate
        # Per-plan translation cache: page base -> frame base, split by
        # required permission.  Invalidated wholesale whenever the TLB
        # shootdown counters move (the same contract TLB entries obey).
        rcache = {}
        wcache = {}
        shootdowns = mmu.tlb_invalidations + mmu.tlb_flushes
        armed_free = self._fast_path_enabled
        # While no timers are armed, nothing can observe intermediate
        # bookkeeping between hits, so the hot path runs on local
        # mirrors: consecutive hit charges batch into one clock.tick
        # and hit/LRU/op counters accumulate in locals.  Everything is
        # flushed back before any operation that can run handler code
        # (and at the end of the plan), and re-checked after it.
        defer = clock.timer_count == 0
        tick = l1._tick
        # Every deferred hit advances ``tick`` by one and charges
        # exactly ``hit_cost``, so ``tick - tick_base`` drives the
        # cycle charge, the cache hit count, and (with ``nstores``)
        # both batched-op metrics at flush time -- the hot loop pays
        # one increment, one stamp, and the data move.
        tick_base = tick
        nstores = 0
        # Memoized resident line (defer mode only): bulk plans revisit
        # the same 64-byte line for many consecutive word ops, which
        # skips the page/set lookups entirely.  ``NO_LINE`` keeps the
        # range test false for any real address.
        NO_LINE = -(1 << 62)
        last_vbase = NO_LINE
        last_line = None
        last_data = None
        last_frozen = None
        last_writable = False
        # Memo hits defer the LRU stamp as well: intermediate stamps of
        # the same line are overwritten anyway, and eviction decisions
        # only read stamps in slow paths, which all release the memo
        # (writing ``last_line.stamp = tick``, the tick of its most
        # recent hit) first.

        for kind, vaddr, arg in plan:
            if kind == "load":
                delta = vaddr - last_vbase
                if 0 <= delta and 0 < arg and delta + arg <= line_size:
                    tick += 1
                    # Slicing an immutable snapshot of the line is the
                    # cheapest way to produce bytes; it refreezes only
                    # after a store dirtied the memoized line.
                    if last_frozen is None:
                        last_frozen = to_bytes(last_data)
                    append(last_frozen[delta:delta + arg])
                    continue
                write = False
                data = None
                size = arg
            elif kind == "store":
                size = len(arg)
                delta = vaddr - last_vbase
                if last_writable and 0 <= delta and 0 < size \
                        and delta + size <= line_size:
                    tick += 1
                    # dirty was set when the memo was established by a
                    # write hit, and nothing clears it mid-segment.
                    last_data[delta:delta + size] = arg
                    last_frozen = None
                    nstores += 1
                    append(None)
                    continue
                write = True
                data = arg
            else:
                l1._tick = tick
                if last_line is not None:
                    last_line.stamp = tick
                hits = tick - tick_base
                if hits:
                    l1.hits += hits
                    self.batched_loads += hits - nstores
                    self.batched_stores += nstores
                    tick_clock(hits * hit_cost)
                raise ConfigurationError(
                    f"unknown op kind {kind!r} in access plan")

            slow = False
            if size <= 0 or (not armed_free and overlaps(vaddr, size)):
                # Scalar fallback: armed/watched lines keep the full
                # first-touch-faults machinery; degenerate sizes keep
                # scalar slow-path semantics.
                l1._tick = tick
                if last_line is not None:
                    last_line.stamp = tick
                    last_line = None
                    last_data = None
                    last_writable = False
                    last_vbase = NO_LINE
                hits = tick - tick_base
                if hits:
                    l1.hits += hits
                    self.batched_loads += hits - nstores
                    self.batched_stores += nstores
                    tick_clock(hits * hit_cost)
                    nstores = 0
                tick_base = tick
                if write:
                    self.store(vaddr, data)
                    append(None)
                else:
                    append(self.load(vaddr, size))
                slow = True
            else:
                offset = vaddr % page_size
                frame = None
                if offset + size <= page_size:
                    page = vaddr - offset
                    frame = (wcache if write else rcache).get(page)
                    if frame is None:
                        # Resolve through the MMU -- TLB refill, demand
                        # fill, or swap-in happen here exactly as on
                        # the scalar path (a swap-out can flush cache
                        # lines, hence the full flush first).  A
                        # faulting translation is NOT resolved here:
                        # the span walk below redoes it at the true
                        # access address, so page and protection faults
                        # carry the same address and reach the same
                        # delivery protocol as scalar execution.
                        l1._tick = tick
                        if last_line is not None:
                            last_line.stamp = tick
                            last_line = None
                            last_data = None
                            last_writable = False
                            last_vbase = NO_LINE
                        hits = tick - tick_base
                        if hits:
                            l1.hits += hits
                            self.batched_loads += hits - nstores
                            self.batched_stores += nstores
                            tick_clock(hits * hit_cost)
                            nstores = 0
                        try:
                            frame = translate(page, write=write)
                        except (PageFault, ProtectionFault):
                            frame = None
                        else:
                            armed_free = self._fast_path_enabled
                            defer = clock.timer_count == 0
                            marks = (mmu.tlb_invalidations
                                     + mmu.tlb_flushes)
                            if marks != shootdowns:
                                shootdowns = marks
                                rcache.clear()
                                wcache.clear()
                            # The mapping just resolved is
                            # authoritative even after a shootdown
                            # triggered by its own demand fill.
                            rcache[page] = frame
                            if write:
                                wcache[page] = frame
                        tick = tick_base = l1._tick
                if frame is not None:
                    paddr = frame + offset
                    loff = paddr % line_size
                    if loff + size <= line_size:
                        base = paddr - loff
                        line = sets[
                            (base // line_size) % num_sets
                        ].get(base)
                        if line is not None:
                            # Resident single-line op.  Same ordering
                            # as Cache.fast_read/fast_write: hit count,
                            # LRU stamp, cycle charge, then data.  The
                            # outgoing memo line gets its deferred
                            # stamp first (its last hit was one tick
                            # before this op's).
                            if last_line is not None:
                                last_line.stamp = tick
                            tick += 1
                            line.stamp = tick
                            if defer:
                                last_vbase = vaddr - loff
                                last_line = line
                                # A memoryview: slice writes through it
                                # skip bytearray slicing overhead on
                                # every memo store.
                                last_data = memoryview(line.data)
                                last_frozen = None
                                last_writable = write
                                if write:
                                    line.data[loff:loff + size] = data
                                    line.dirty = True
                                    nstores += 1
                                    append(None)
                                else:
                                    append(bytes(
                                        line.data[loff:loff + size]))
                            else:
                                # Timers armed: the charge below can run
                                # handler code, so bookkeeping writes
                                # through before the tick (exactly like
                                # the scalar fast path) and locals
                                # resync after it.
                                l1._tick = tick
                                l1.hits += 1
                                tick_clock(hit_cost)
                                tick = tick_base = l1._tick
                                if write:
                                    line.data[loff:loff + size] = data
                                    line.dirty = True
                                    self.batched_stores += 1
                                    append(None)
                                else:
                                    self.batched_loads += 1
                                    append(bytes(
                                        line.data[loff:loff + size]))
                            continue
                # Line miss or multi-line/multi-page span: the span
                # walk with full fault-retry semantics.
                l1._tick = tick
                if last_line is not None:
                    last_line.stamp = tick
                    last_line = None
                    last_data = None
                    last_writable = False
                    last_vbase = NO_LINE
                hits = tick - tick_base
                if hits:
                    l1.hits += hits
                    self.batched_loads += hits - nstores
                    self.batched_stores += nstores
                    tick_clock(hits * hit_cost)
                    nstores = 0
                if write:
                    self._access_with_retry(vaddr, size, True, data,
                                            span=True)
                    self.batched_stores += 1
                    append(None)
                else:
                    append(self._access_with_retry(vaddr, size, False,
                                                   span=True))
                    self.batched_loads += 1
                slow = True
            if slow:
                # A slow op may have run handler code: watches can have
                # been armed, timers started, TLB entries shot down.
                armed_free = self._fast_path_enabled
                defer = clock.timer_count == 0
                tick = tick_base = l1._tick
                marks = mmu.tlb_invalidations + mmu.tlb_flushes
                if marks != shootdowns:
                    shootdowns = marks
                    rcache.clear()
                    wcache.clear()

        l1._tick = tick
        if last_line is not None:
            last_line.stamp = tick
        hits = tick - tick_base
        if hits:
            l1.hits += hits
            self.batched_loads += hits - nstores
            self.batched_stores += nstores
            tick_clock(hits * hit_cost)
        return results

    def load_batch(self, addrs, size=8):
        """Batched word loads: ``size`` bytes at each address."""
        return self.run_ops([("load", vaddr, size) for vaddr in addrs])

    def store_batch(self, addrs, values):
        """Batched stores: ``values[i]`` written at ``addrs[i]``."""
        if len(addrs) != len(values):
            raise ConfigurationError(
                f"store_batch: {len(addrs)} addresses for "
                f"{len(values)} values"
            )
        self.run_ops([
            ("store", vaddr, value)
            for vaddr, value in zip(addrs, values)
        ])

    def _retry_panic(self, vaddr, budget):
        """Give up on an access whose fault the handler cannot clear.

        Emits a PANIC event first so post-mortem subscribers (the
        tracer's panic dump, forensic recorders) capture the machine
        state, mirroring the kernel's unhandled-fault panic path.
        """
        reason = (f"ECC fault at {vaddr:#x} persisted after "
                  f"{budget} handler retries")
        self.events.emit(EventKind.PANIC, address=vaddr, reason=reason)
        raise MachinePanic(reason)

    # ------------------------------------------------------------------
    # raw (tool-level) access: no cycles, no faults
    # ------------------------------------------------------------------
    def read_virtual_raw(self, vaddr, size):
        """Assemble the current bytes of ``[vaddr, vaddr+size)``.

        Reads resident frames and swap slots directly, returning zeros
        for never-touched pages.  Used by tools (e.g. Purify's
        mark-and-sweep) that charge their own modelled cost instead of
        walking the access path word by word.
        """
        out = bytearray()
        cursor = vaddr
        end = vaddr + size
        while cursor < end:
            page = align_down(cursor, PAGE_SIZE)
            take = min(end - cursor, page + PAGE_SIZE - cursor)
            entry = self.page_table.lookup(cursor)
            if entry is None:
                raise PageFault(cursor)
            if entry.present:
                frame_base = entry.pfn * PAGE_SIZE
                offset = cursor - page
                # Flush any dirty cached lines so DRAM is current.
                self._sync_lines(frame_base + offset, take)
                out += self.dram.read_raw(frame_base + offset, take)
            elif entry.in_swap:
                data = self.swap.peek(entry.vpn)
                offset = cursor - page
                out += data[offset:offset + take]
            else:
                out += bytes(take)
            cursor += take
        return bytes(out)

    def _sync_lines(self, paddr, size):
        first = line_base(paddr)
        last = line_base(paddr + size - 1)
        for line in range(first, last + CACHE_LINE_SIZE, CACHE_LINE_SIZE):
            if self.cache.contains(line):
                self.cache.flush_line(line)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _walk(self, vaddr, size, write, data=None):
        """One attempt at the access, split at page boundaries."""
        out = bytearray() if not write else None
        cursor = vaddr
        end = vaddr + size
        position = 0
        while cursor < end:
            page_end = align_down(cursor, PAGE_SIZE) + PAGE_SIZE
            take = min(end - cursor, page_end - cursor)
            paddr = self.mmu.translate(cursor, write=write)
            if write:
                self.cache.store(paddr, data[position:position + take])
            else:
                out += self.cache.load(paddr, take)
            cursor += take
            position += take
        return bytes(out) if not write else None

    def _span_walk(self, vaddr, size, write, data=None):
        """One attempt at a batched access: whole-line span moves.

        Splits at page boundaries like :meth:`_walk`, but each page
        chunk goes through the cache's span path, amortizing per-line
        Python overhead while keeping identical hit/miss/LRU/cycle
        bookkeeping (see ``Cache.load_span``).
        """
        cache = self.cache
        mmu = self.mmu
        out = bytearray() if not write else None
        view = memoryview(data) if write else None
        cursor = vaddr
        end = vaddr + size
        position = 0
        while cursor < end:
            page_end = align_down(cursor, PAGE_SIZE) + PAGE_SIZE
            take = min(end - cursor, page_end - cursor)
            paddr = mmu.translate(cursor, write=write)
            if write:
                cache.store_span(paddr, view[position:position + take])
            else:
                out += cache.load_span(paddr, take)
            cursor += take
            position += take
        return bytes(out) if not write else None

    def __repr__(self):
        return (
            f"Machine(dram={self.dram.size >> 20} MiB, "
            f"mode={self.controller.mode.value}, "
            f"cycles={self.clock.cycles})"
        )
