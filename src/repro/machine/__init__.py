"""Machine assembly: the booted system, the program model, monitors."""

from repro.machine.dma import DmaEngine, DmaTransfer
from repro.machine.machine import MAX_FAULT_RETRIES, Machine
from repro.machine.monitor import Monitor, NullMonitor
from repro.machine.program import GLOBALS_BASE, HEAP_BASE, WORD_SIZE, Program

__all__ = [
    "DmaEngine",
    "DmaTransfer",
    "MAX_FAULT_RETRIES",
    "Machine",
    "Monitor",
    "NullMonitor",
    "GLOBALS_BASE",
    "HEAP_BASE",
    "WORD_SIZE",
    "Program",
]
