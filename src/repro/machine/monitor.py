"""Monitor interface: how dynamic bug-detection tools attach to a program.

A monitor interposes on exactly the two surfaces the paper's tools use:

- **allocation calls** (``malloc``/``calloc``/``realloc``/``free``) --
  both SafeMem and Purify wrap these,
- **memory accesses** (``before_load``/``before_store``) -- only
  Purify-style tools pay work here; SafeMem deliberately does *not*
  intercept accesses, which is the source of its low overhead, and
- **instruction cost** -- Purify's link-time instrumentation dilates
  ordinary computation; SafeMem leaves it untouched.

The :class:`NullMonitor` is the unmonitored baseline run against which
overhead percentages are computed.
"""

from repro.common.errors import ConfigurationError


class Monitor:
    """Base monitor: transparent pass-through to the program's allocator."""

    name = "base"

    def __init__(self):
        self.program = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, program):
        """Bind this monitor to a program.  Called once by Program."""
        if self.program is not None:
            raise ConfigurationError(
                f"monitor {self.name!r} is already attached"
            )
        self.program = program
        self.on_attach()

    def on_attach(self):
        """Hook for subclasses; runs after ``self.program`` is set."""

    def on_exit(self):
        """Hook invoked by ``Program.exit()`` (end-of-run checks)."""

    # ------------------------------------------------------------------
    # allocation interposition
    # ------------------------------------------------------------------
    def malloc(self, size, call_signature):
        return self.program.allocator.malloc(size)

    def calloc(self, count, size, call_signature):
        address = self.malloc(count * size, call_signature)
        self.program.zero_memory(address, count * size)
        return address

    def realloc(self, address, new_size, call_signature):
        return self.program.allocator.realloc(address, new_size)

    def free(self, address):
        self.program.allocator.free(address)

    # ------------------------------------------------------------------
    # access interposition
    # ------------------------------------------------------------------
    def before_load(self, vaddr, size):
        """Called before every program load.  Default: free."""

    def before_store(self, vaddr, size):
        """Called before every program store.  Default: free."""

    # ------------------------------------------------------------------
    # cost shaping
    # ------------------------------------------------------------------
    def instruction_cost(self):
        """Cycles per simulated ALU instruction under this monitor."""
        return self.program.machine.costs.instruction


class NullMonitor(Monitor):
    """The native, unmonitored run (baseline for overhead numbers)."""

    name = "native"
