"""DMA engine: background memory traffic alongside the CPU.

The paper's scramble window locks the memory bus "to avoid any other
background memory accesses, such as those made by other processors or
DMAs" (Section 2.2.2).  Without a second memory agent that lock is
vacuous; this DMA engine gives the simulation one.

Transfers go through the ECC controller (so DMA reads check codes and
DMA writes generate them), respect the bus lock by queueing while it
is held, and bypass the CPU cache -- which is why the engine flushes
affected lines first, like real coherent-DMA setup code.
"""

from dataclasses import dataclass, field

from repro.common.constants import CACHE_LINE_SIZE, is_aligned, line_base
from repro.common.errors import BusError, ConfigurationError


@dataclass
class DmaTransfer:
    """One queued copy of whole cache lines."""

    source: int
    destination: int
    length: int
    completed: bool = False


class DmaEngine:
    """Line-granular memory-to-memory copy engine."""

    def __init__(self, machine):
        self.machine = machine
        self.controller = machine.controller
        self.cache = machine.cache
        self.queue = []
        self.transfers_completed = 0
        self.deferred_by_bus_lock = 0

    # ------------------------------------------------------------------
    # submitting work
    # ------------------------------------------------------------------
    def submit(self, source, destination, length):
        """Queue a physical-memory copy (line aligned, line multiple)."""
        for name, value in (("source", source),
                            ("destination", destination)):
            if not is_aligned(value, CACHE_LINE_SIZE):
                raise ConfigurationError(
                    f"DMA {name} must be line aligned: {value:#x}"
                )
        if length <= 0 or length % CACHE_LINE_SIZE:
            raise ConfigurationError(
                f"DMA length must be a positive line multiple: {length}"
            )
        transfer = DmaTransfer(source, destination, length)
        self.queue.append(transfer)
        return transfer

    # ------------------------------------------------------------------
    # progress
    # ------------------------------------------------------------------
    def step(self):
        """Attempt to run every queued transfer.

        Returns the number of transfers completed this step.  While the
        CPU holds the bus (the WatchMemory scramble window) nothing
        moves -- the hardware guarantee the paper relies on so that the
        disabled-ECC window cannot leak unencoded writes from other
        agents.
        """
        if self.controller.bus_locked:
            self.deferred_by_bus_lock += len(self.queue)
            return 0
        completed = 0
        while self.queue:
            transfer = self.queue.pop(0)
            self._run(transfer)
            transfer.completed = True
            completed += 1
            self.transfers_completed += 1
        return completed

    def _run(self, transfer):
        for offset in range(0, transfer.length, CACHE_LINE_SIZE):
            src_line = transfer.source + offset
            dst_line = transfer.destination + offset
            # Coherence: push any dirty CPU copy of the source, drop
            # any stale CPU copy of the destination.
            if self.cache.contains(src_line):
                self.cache.flush_line(src_line)
            self.cache.invalidate_line(line_base(dst_line))
            data = self.controller.read_line(src_line)
            self.controller.write_line(dst_line, data)

    @property
    def idle(self):
        return not self.queue
