"""Program model: the API workloads use to run on the simulated machine.

A :class:`Program` is one process: a globals region (the root set for
conservative pointer scanning), a heap arena, a call stack, and a bound
:class:`~repro.machine.monitor.Monitor`.  Every observable action --
computation, loads/stores, allocation -- flows through here so monitors
can interpose and the clock can charge cycles.
"""

import contextlib

from repro.common.clock import seconds_to_cycles
from repro.common.constants import align_up, PAGE_SIZE
from repro.common.errors import ConfigurationError
from repro.heap.allocator import Allocator
from repro.heap.callstack import CallStack
from repro.machine.monitor import Monitor, NullMonitor

#: Default address-space layout.
GLOBALS_BASE = 0x1000_0000
HEAP_BASE = 0x2000_0000

#: Word size for pointer loads/stores.
WORD_SIZE = 8


class Program:
    """One simulated process bound to a machine and a monitor."""

    def __init__(self, machine, monitor=None, heap_size=8 * 1024 * 1024,
                 globals_size=256 * 1024, entry_pc=0x400000):
        self.machine = machine
        self.globals_base = GLOBALS_BASE
        self.globals_size = align_up(globals_size, PAGE_SIZE)
        self.heap_base = HEAP_BASE
        self.heap_size = align_up(heap_size, PAGE_SIZE)
        machine.kernel.mmap(self.globals_base, self.globals_size)
        machine.kernel.mmap(self.heap_base, self.heap_size)
        self.allocator = Allocator(
            self.heap_base, self.heap_size,
            clock=machine.clock, costs=machine.costs,
            metrics=getattr(machine, "metrics", None),
        )
        self.stack = CallStack(entry_pc=entry_pc)
        self.monitor = monitor if monitor is not None else NullMonitor()
        self.monitor.attach(self)
        self.exited = False

    # ------------------------------------------------------------------
    # computation and time
    # ------------------------------------------------------------------
    def compute(self, instructions):
        """Execute ``instructions`` simulated ALU instructions."""
        self.machine.clock.tick(
            int(round(instructions * self.monitor.instruction_cost()))
        )

    def idle(self, seconds):
        """Block for ``seconds`` of wall-clock time (no CPU charged).

        Models the gap between server requests; object lifetimes use
        CPU time and are unaffected (paper Section 3.1).
        """
        self.machine.clock.idle(seconds_to_cycles(seconds))

    @property
    def cpu_time(self):
        """CPU cycles this program (plus its monitor) has consumed."""
        return self.machine.clock.cycles

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------
    def load(self, vaddr, size=WORD_SIZE):
        """Load bytes; the monitor sees the access first."""
        self.monitor.before_load(vaddr, size)
        return self.machine.load(vaddr, size)

    def store(self, vaddr, data):
        """Store bytes; the monitor sees the access first."""
        self.monitor.before_store(vaddr, len(data))
        self.machine.store(vaddr, data)

    def run_ops(self, plan):
        """Execute an access plan (see ``Machine.run_ops``).

        Monitors that interpose on accesses (Purify-style
        ``before_load``/``before_store`` overrides) see every op in
        plan order through the scalar methods, exactly as if the
        workload had issued them one by one.  Monitors that do not --
        SafeMem and the native baseline -- let the whole plan go to the
        machine's batched engine in one call.
        """
        monitor_type = type(self.monitor)
        if (monitor_type.before_load is Monitor.before_load
                and monitor_type.before_store is Monitor.before_store):
            return self.machine.run_ops(plan)
        results = []
        for op in plan:
            kind = op[0]
            if kind == "load":
                results.append(self.load(op[1], op[2]))
            elif kind == "store":
                self.store(op[1], op[2])
                results.append(None)
            else:
                raise ConfigurationError(
                    f"unknown op kind {kind!r} in access plan")
        return results

    def load_batch(self, addrs, size=WORD_SIZE):
        """Batched word loads through :meth:`run_ops`."""
        return self.run_ops([("load", vaddr, size) for vaddr in addrs])

    def store_batch(self, addrs, values):
        """Batched stores through :meth:`run_ops`."""
        if len(addrs) != len(values):
            raise ConfigurationError(
                f"store_batch: {len(addrs)} addresses for "
                f"{len(values)} values"
            )
        self.run_ops([
            ("store", vaddr, value)
            for vaddr, value in zip(addrs, values)
        ])

    def load_word(self, vaddr):
        """Load an 8-byte little-endian word (pointer-sized)."""
        return int.from_bytes(self.load(vaddr, WORD_SIZE), "little")

    def store_word(self, vaddr, value):
        """Store an 8-byte little-endian word (pointer-sized)."""
        self.store(vaddr, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def touch(self, vaddr, size=1):
        """Read and discard -- convenience for 'the program used this'."""
        self.load(vaddr, size)

    def zero_memory(self, vaddr, size):
        """Write zeros through the normal store path (calloc backend)."""
        chunk = bytes(min(size, 4096))
        cursor = vaddr
        remaining = size
        while remaining > 0:
            take = min(remaining, len(chunk))
            self.store(cursor, chunk[:take])
            cursor += take
            remaining -= take

    # ------------------------------------------------------------------
    # globals (the conservative-scan root set)
    # ------------------------------------------------------------------
    def global_slot(self, index):
        """Address of the ``index``-th pointer-sized global slot."""
        address = self.globals_base + index * WORD_SIZE
        if address + WORD_SIZE > self.globals_base + self.globals_size:
            raise ConfigurationError(
                f"global slot {index} exceeds the globals region"
            )
        return address

    def set_global(self, index, value):
        """Store a pointer into a global slot (keeps the object reachable
        for conservative mark-and-sweep)."""
        self.store_word(self.global_slot(index), value)

    def get_global(self, index):
        return self.load_word(self.global_slot(index))

    # ------------------------------------------------------------------
    # allocation (via the monitor)
    # ------------------------------------------------------------------
    def malloc(self, size):
        return self.monitor.malloc(size, self.stack.signature())

    def calloc(self, count, size):
        return self.monitor.calloc(count, size, self.stack.signature())

    def realloc(self, address, new_size):
        return self.monitor.realloc(
            address, new_size, self.stack.signature()
        )

    def free(self, address):
        self.monitor.free(address)

    # ------------------------------------------------------------------
    # call stack
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def frame(self, return_address):
        """Enter a function frame (affects the allocation signature)."""
        self.stack.push(return_address)
        try:
            yield
        finally:
            self.stack.pop()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def exit(self):
        """Terminate the program; monitors run their end-of-run checks."""
        if not self.exited:
            self.exited = True
            self.monitor.on_exit()

    def release(self):
        """Unmap this program's address space so the machine can host
        another program.

        Watched regions must be disarmed first (``exit`` on a SafeMem
        monitor does that); ``munmap`` refuses otherwise.
        """
        self.exit()
        self.machine.kernel.munmap(self.globals_base, self.globals_size)
        self.machine.kernel.munmap(self.heap_base, self.heap_size)
