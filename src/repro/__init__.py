"""SafeMem (HPCA 2005) reproduction.

Public API tour:

- :class:`repro.machine.Machine` -- boot a simulated ECC-memory system.
- :class:`repro.machine.Program` -- run a process on it.
- :class:`repro.core.SafeMem` -- attach the paper's detector as the
  program's monitor.
- :mod:`repro.baselines` -- Purify-style and page-protection baselines.
- :mod:`repro.workloads` -- the seven buggy applications of Table 1.
- :mod:`repro.analysis` -- harnesses that regenerate the paper's
  tables and figures.

Quickstart::

    from repro import Machine, Program, SafeMem

    machine = Machine()
    safemem = SafeMem()
    program = Program(machine, monitor=safemem)
    buf = program.malloc(100)
    program.store(buf, b"hello")
    program.free(buf)
    program.load(buf, 1)   # raises MonitorError: use-after-free
"""

from repro.core.config import SafeMemConfig
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.monitor import Monitor, NullMonitor
from repro.machine.program import Program

__version__ = "1.0.0"

__all__ = [
    "SafeMemConfig",
    "SafeMem",
    "Machine",
    "Monitor",
    "NullMonitor",
    "Program",
    "__version__",
]
