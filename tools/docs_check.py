#!/usr/bin/env python3
"""Docs consistency checker (run in tier-1 via tests/test_docs.py).

Seven checks keep the documentation layer from drifting away from the
code layout:

1. every ``repro.<pkg>`` named in ``docs/ARCHITECTURE.md`` exists as a
   package or module under ``src/repro`` (no docs for deleted code);
2. every subpackage under ``src/repro`` is mentioned in
   ``docs/ARCHITECTURE.md`` (no undocumented subsystem);
3. every intra-repo markdown link in the repo's ``*.md`` files resolves
   to an existing file (external URLs are skipped);
4. every ``docs/<file>.md#<anchor>`` reference embedded in Python
   source (deprecation messages, error hints) points to a real heading
   in that file;
5. every cross-file ``*.md#<anchor>`` markdown link points to a real
   heading in the target file;
6. the hardware-diversity matrix in ``docs/HARDWARE.md`` covers every
   ECC codec registered in ``src/repro/ecc/codec.py`` and every
   chipset profile in ``src/repro/ecc/profile.py`` (and nothing that
   no longer exists);
7. every versioned schema string (``repro.<name>/v<N>``) appearing in
   Python source under ``src/`` has a matching ``## `repro.<name>/vN```
   section heading in ``docs/SCHEMAS.md``, and SCHEMAS.md documents no
   schema the code no longer mentions.

Exit status is non-zero when any check fails, so the script can run as
a pre-commit hook: ``python tools/docs_check.py``.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: markdown files covered by the link check.
DOC_GLOBS = ("*.md", "docs/*.md")

_PKG_REF = re.compile(r"\brepro\.([a-z_]+)\b")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_CODE_DOC_REF = re.compile(r"docs/([A-Za-z_]+\.md)#([A-Za-z0-9_-]+)")
_CODEC_REGISTRY = re.compile(r"^CODECS\s*=\s*\{(.*?)\}", re.MULTILINE
                             | re.DOTALL)
_DICT_KEY = re.compile(r'"([a-z0-9-]+)"\s*:')
_PROFILE_NAME = re.compile(r'\bname\s*=\s*"([a-z0-9-]+)"')
#: HARDWARE.md's machine-readable coverage declaration, e.g.
#: ``<!-- hw-matrix codecs: secded secdaec -->``.
_HW_MARKER = re.compile(r"<!--\s*hw-matrix\s+(codecs|profiles):"
                        r"\s*([a-z0-9 -]*?)\s*-->")
#: a versioned document schema tag, e.g. ``repro.checkpoint/v1``.
_SCHEMA_TAG = re.compile(r"\brepro\.[a-z-]+/v\d+\b")
#: a SCHEMAS.md section heading for one schema, e.g.
#: ``## `repro.checkpoint/v1` — checkpoint document``.
_SCHEMA_HEADING = re.compile(r"^#{2,6}\s+`(repro\.[a-z-]+/v\d+)`",
                             re.MULTILINE)


def package_references(architecture_text):
    """Unique ``repro.<pkg>`` names mentioned in ARCHITECTURE.md."""
    return sorted(set(_PKG_REF.findall(architecture_text)))


def source_subpackages(src_root):
    """Subpackage names under ``src/repro`` (directories with code)."""
    package = src_root / "repro"
    return sorted(
        path.name for path in package.iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )


def check_architecture_references(root=REPO_ROOT):
    """Checks 1 + 2: ARCHITECTURE.md vs the real package layout."""
    problems = []
    architecture = root / "docs" / "ARCHITECTURE.md"
    text = architecture.read_text()
    package = root / "src" / "repro"
    for name in package_references(text):
        if not ((package / name).is_dir()
                or (package / f"{name}.py").is_file()):
            problems.append(
                f"{architecture.relative_to(root)}: references "
                f"repro.{name}, which does not exist under src/repro"
            )
    for name in source_subpackages(root / "src"):
        if f"repro.{name}" not in text:
            problems.append(
                f"{architecture.relative_to(root)}: src/repro/{name} "
                f"is not documented (no mention of repro.{name})"
            )
    return problems


def markdown_files(root=REPO_ROOT):
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def intra_repo_links(text):
    """Link targets that should resolve to files in this repo."""
    targets = []
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if target:
            targets.append(target)
    return targets


def check_markdown_links(root=REPO_ROOT):
    """Check 3: every relative markdown link resolves."""
    problems = []
    for path in markdown_files(root):
        for target in intra_repo_links(path.read_text()):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return problems


def heading_anchors(text):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    anchors = set()
    for title in _HEADING.findall(text):
        title = title.replace("`", "")
        slug = re.sub(r"[^\w\- ]", "", title.lower()).strip()
        anchors.add(slug.replace(" ", "-"))
    return anchors


def _anchor_exists(root, doc_name, anchor):
    path = root / "docs" / doc_name
    if not path.is_file():
        return False
    return anchor in heading_anchors(path.read_text())


def check_code_doc_anchors(root=REPO_ROOT):
    """Check 4: docs/<file>.md#<anchor> references in Python source."""
    problems = []
    for path in sorted((root / "src").rglob("*.py")):
        for doc_name, anchor in _CODE_DOC_REF.findall(path.read_text()):
            if not _anchor_exists(root, doc_name, anchor):
                problems.append(
                    f"{path.relative_to(root)}: dangling doc anchor "
                    f"-> docs/{doc_name}#{anchor}"
                )
    return problems


def check_markdown_anchors(root=REPO_ROOT):
    """Check 5: cross-file ``*.md#anchor`` links hit real headings."""
    problems = []
    for path in markdown_files(root):
        for target in _MD_LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:",
                                  "#")):
                continue
            if "#" not in target:
                continue
            file_part, anchor = target.split("#", 1)
            resolved = (path.parent / file_part).resolve()
            if not (resolved.is_file() and resolved.suffix == ".md"):
                continue  # missing files are check 3's problem
            if anchor not in heading_anchors(resolved.read_text()):
                problems.append(
                    f"{path.relative_to(root)}: dangling anchor "
                    f"-> {target}"
                )
    return problems


def registered_codecs(root=REPO_ROOT):
    """Codec names: keys of the ``CODECS`` registry literal."""
    source = (root / "src" / "repro" / "ecc" / "codec.py").read_text()
    match = _CODEC_REGISTRY.search(source)
    return sorted(_DICT_KEY.findall(match.group(1))) if match else []


def registered_profiles(root=REPO_ROOT):
    """Profile names: literal ``name=`` kwargs in the registry."""
    source = (root / "src" / "repro" / "ecc" / "profile.py").read_text()
    return sorted(set(_PROFILE_NAME.findall(source)))


def check_hardware_matrix(root=REPO_ROOT):
    """Check 6: docs/HARDWARE.md vs the codec/profile registries.

    HARDWARE.md declares its coverage in two marker comments
    (``<!-- hw-matrix codecs: ... -->`` / ``profiles:``); the names in
    each must match the code registries exactly, and every name must
    also be mentioned (backticked) in the document body.
    """
    codec_py = root / "src" / "repro" / "ecc" / "codec.py"
    profile_py = root / "src" / "repro" / "ecc" / "profile.py"
    if not (codec_py.is_file() and profile_py.is_file()):
        return []  # repo without the ECC substrate: nothing to check
    hardware = root / "docs" / "HARDWARE.md"
    if not hardware.is_file():
        return [
            "docs/HARDWARE.md: missing (the hardware-diversity matrix "
            "must document every registered codec and profile)"
        ]
    text = hardware.read_text()
    declared = {"codecs": None, "profiles": None}
    for kind, names in _HW_MARKER.findall(text):
        declared[kind] = sorted(names.split())
    problems = []
    registered = {
        "codecs": registered_codecs(root),
        "profiles": registered_profiles(root),
    }
    for kind in ("codecs", "profiles"):
        if declared[kind] is None:
            problems.append(
                f"docs/HARDWARE.md: missing "
                f"<!-- hw-matrix {kind}: ... --> coverage marker"
            )
            continue
        missing = sorted(set(registered[kind]) - set(declared[kind]))
        stale = sorted(set(declared[kind]) - set(registered[kind]))
        for name in missing:
            problems.append(
                f"docs/HARDWARE.md: registered {kind[:-1]} "
                f"`{name}` is not in the hardware matrix"
            )
        for name in stale:
            problems.append(
                f"docs/HARDWARE.md: documents {kind[:-1]} `{name}`, "
                f"which is not registered in the code"
            )
        for name in declared[kind]:
            if name not in stale and f"`{name}`" not in text:
                problems.append(
                    f"docs/HARDWARE.md: `{name}` is declared in the "
                    f"coverage marker but never described in the body"
                )
    return problems


def source_schema_tags(root=REPO_ROOT):
    """Every ``repro.<name>/v<N>`` string in Python source under src/."""
    tags = set()
    for path in sorted((root / "src").rglob("*.py")):
        tags.update(_SCHEMA_TAG.findall(path.read_text()))
    return sorted(tags)


def documented_schema_sections(root=REPO_ROOT):
    """Schema tags with their own section heading in SCHEMAS.md."""
    schemas = root / "docs" / "SCHEMAS.md"
    if not schemas.is_file():
        return []
    return sorted(set(_SCHEMA_HEADING.findall(schemas.read_text())))


def check_schema_sections(root=REPO_ROOT):
    """Check 7: schema strings in src/ vs SCHEMAS.md section headings.

    A schema tag that ships in the code without a ``## `repro.x/vN```
    section in ``docs/SCHEMAS.md`` is an undocumented on-disk format;
    a section for a tag no code mentions is documentation for a
    format that can no longer be produced or read.
    """
    schemas = root / "docs" / "SCHEMAS.md"
    tags = source_schema_tags(root)
    if tags and not schemas.is_file():
        return [
            "docs/SCHEMAS.md: missing (every versioned schema string "
            "in src/ must be documented there)"
        ]
    documented = documented_schema_sections(root)
    problems = []
    for tag in sorted(set(tags) - set(documented)):
        problems.append(
            f"docs/SCHEMAS.md: schema `{tag}` appears in src/ but has "
            f"no `## \\`{tag}\\`` section"
        )
    for tag in sorted(set(documented) - set(tags)):
        problems.append(
            f"docs/SCHEMAS.md: documents schema `{tag}`, which no "
            f"longer appears anywhere under src/"
        )
    return problems


def run_checks(root=REPO_ROOT):
    return check_architecture_references(root) + \
        check_markdown_links(root) + \
        check_code_doc_anchors(root) + \
        check_markdown_anchors(root) + \
        check_hardware_matrix(root) + \
        check_schema_sections(root)


def main():
    problems = run_checks()
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({len(markdown_files())} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
