#!/usr/bin/env python3
"""Docs consistency checker (run in tier-1 via tests/test_docs.py).

Three checks keep the documentation layer from drifting away from the
code layout:

1. every ``repro.<pkg>`` named in ``docs/ARCHITECTURE.md`` exists as a
   package or module under ``src/repro`` (no docs for deleted code);
2. every subpackage under ``src/repro`` is mentioned in
   ``docs/ARCHITECTURE.md`` (no undocumented subsystem);
3. every intra-repo markdown link in the repo's ``*.md`` files resolves
   to an existing file (anchors and external URLs are skipped).

Exit status is non-zero when any check fails, so the script can run as
a pre-commit hook: ``python tools/docs_check.py``.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: markdown files covered by the link check.
DOC_GLOBS = ("*.md", "docs/*.md")

_PKG_REF = re.compile(r"\brepro\.([a-z_]+)\b")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def package_references(architecture_text):
    """Unique ``repro.<pkg>`` names mentioned in ARCHITECTURE.md."""
    return sorted(set(_PKG_REF.findall(architecture_text)))


def source_subpackages(src_root):
    """Subpackage names under ``src/repro`` (directories with code)."""
    package = src_root / "repro"
    return sorted(
        path.name for path in package.iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )


def check_architecture_references(root=REPO_ROOT):
    """Checks 1 + 2: ARCHITECTURE.md vs the real package layout."""
    problems = []
    architecture = root / "docs" / "ARCHITECTURE.md"
    text = architecture.read_text()
    package = root / "src" / "repro"
    for name in package_references(text):
        if not ((package / name).is_dir()
                or (package / f"{name}.py").is_file()):
            problems.append(
                f"{architecture.relative_to(root)}: references "
                f"repro.{name}, which does not exist under src/repro"
            )
    for name in source_subpackages(root / "src"):
        if f"repro.{name}" not in text:
            problems.append(
                f"{architecture.relative_to(root)}: src/repro/{name} "
                f"is not documented (no mention of repro.{name})"
            )
    return problems


def markdown_files(root=REPO_ROOT):
    files = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def intra_repo_links(text):
    """Link targets that should resolve to files in this repo."""
    targets = []
    for target in _MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if target:
            targets.append(target)
    return targets


def check_markdown_links(root=REPO_ROOT):
    """Check 3: every relative markdown link resolves."""
    problems = []
    for path in markdown_files(root):
        for target in intra_repo_links(path.read_text()):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link -> {target}"
                )
    return problems


def run_checks(root=REPO_ROOT):
    return check_architecture_references(root) + \
        check_markdown_links(root)


def main():
    problems = run_checks()
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({len(markdown_files())} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
