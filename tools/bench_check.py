#!/usr/bin/env python3
"""Benchmark regression checker: fresh BENCH_*.json vs committed baseline.

Every ``benchmarks/bench_*.py`` module writes a machine-readable report
to ``BENCH_<name>.json`` at the repo root, and that file is committed.
This tool compares a freshly generated report against the committed
baseline (``git show HEAD:BENCH_<name>.json``) and flags regressions:

- only **throughput-like** keys are compared -- names ending in
  ``_ops_per_sec`` or containing ``speedup``/``ratio``, where higher is
  better.  Raw ``*_seconds`` wall-clock values and embedded
  ``repro.metrics/v1`` documents are skipped: the former is
  machine-load noise, the latter is deterministic simulation state that
  the benchmarks assert on directly;
- a key regresses when ``fresh < baseline * (1 - tolerance)``.  The
  default tolerance is 0.25 (25%), deliberately generous because the
  numbers are wall-clock measurements on shared hardware; override it
  with ``REPRO_BENCH_TOLERANCE`` or ``--tolerance``;
- a missing baseline (file untracked, or no git history) is not an
  error -- there is nothing to regress against.

Wiring: ``benchmarks/conftest.py`` calls :func:`check_report` from
``write_bench_json``, so every benchmark run prints its comparison; set
``REPRO_BENCH_STRICT=1`` to turn a regression into a benchmark
failure.  Standalone, ``python tools/bench_check.py`` checks every
``BENCH_*.json`` on disk and exits non-zero on any regression (see
docs/VALIDATION.md).
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: default relative drop tolerated before a key counts as regressed.
DEFAULT_TOLERANCE = 0.25

#: key name shapes compared (higher is better).
THROUGHPUT_SUFFIXES = ("_ops_per_sec",)
THROUGHPUT_SUBSTRINGS = ("speedup", "ratio")

#: subtree keys skipped entirely (embedded metrics documents).
SKIP_SUBTREES = ("metrics",)


def tolerance_from_env(default=DEFAULT_TOLERANCE):
    """``REPRO_BENCH_TOLERANCE`` as a float fraction, or the default."""
    raw = os.environ.get("REPRO_BENCH_TOLERANCE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise SystemExit(
            f"bench-check: REPRO_BENCH_TOLERANCE must be a number, "
            f"got {raw!r}"
        )
    if value < 0:
        raise SystemExit(
            f"bench-check: REPRO_BENCH_TOLERANCE must be >= 0, "
            f"got {value}"
        )
    return value


def is_throughput_key(key):
    return key.endswith(THROUGHPUT_SUFFIXES) or any(
        fragment in key for fragment in THROUGHPUT_SUBSTRINGS
    )


def throughput_leaves(report, prefix=""):
    """``{dotted.path: value}`` of every compared leaf in a report."""
    leaves = {}
    for key, value in report.items():
        path = f"{prefix}{key}"
        if key in SKIP_SUBTREES:
            continue
        if isinstance(value, dict):
            leaves.update(throughput_leaves(value, prefix=f"{path}."))
        elif isinstance(value, (int, float)) \
                and not isinstance(value, bool) \
                and is_throughput_key(key):
            leaves[path] = value
    return leaves


@dataclass
class Comparison:
    """One compared key: baseline vs fresh."""

    path: str
    baseline: float
    fresh: float

    @property
    def change(self):
        """Relative change; +0.10 means 10% faster than baseline."""
        if self.baseline == 0:
            return 0.0
        return (self.fresh - self.baseline) / self.baseline

    def regressed(self, tolerance):
        return self.fresh < self.baseline * (1.0 - tolerance)


def compare_reports(baseline, fresh):
    """Comparisons for every throughput key present in both reports."""
    baseline_leaves = throughput_leaves(baseline)
    fresh_leaves = throughput_leaves(fresh)
    return [
        Comparison(path, baseline_leaves[path], fresh_leaves[path])
        for path in sorted(baseline_leaves)
        if path in fresh_leaves
    ]


def committed_baseline(path, root=REPO_ROOT):
    """The committed (HEAD) version of a report file, or None."""
    path = pathlib.Path(path)
    try:
        relative = path.resolve().relative_to(root)
    except ValueError:
        return None
    proc = subprocess.run(
        ["git", "-C", str(root), "show", f"HEAD:{relative.as_posix()}"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except ValueError:
        return None


def check_report(name, report, tolerance=None, out=sys.stdout,
                 root=REPO_ROOT):
    """Compare one fresh report against its committed baseline.

    Returns the regressed comparisons (empty when clean or when no
    baseline exists).  Used by ``benchmarks/conftest.py`` before it
    overwrites ``BENCH_<name>.json``.
    """
    if tolerance is None:
        tolerance = tolerance_from_env()
    baseline = committed_baseline(root / f"BENCH_{name}.json", root=root)
    if baseline is None:
        out.write(f"bench-check: {name}: no committed baseline\n")
        return []
    comparisons = compare_reports(baseline, report)
    regressions = [c for c in comparisons if c.regressed(tolerance)]
    for comparison in comparisons:
        marker = "REGRESSED" if comparison.regressed(tolerance) else "ok"
        out.write(
            f"bench-check: {name}: {comparison.path}: "
            f"{comparison.baseline:g} -> {comparison.fresh:g} "
            f"({comparison.change:+.1%}) {marker}\n"
        )
    return regressions


def check_files(paths, tolerance, out=sys.stdout, root=REPO_ROOT):
    """CLI body: check each on-disk report; return regression count."""
    regressed = 0
    for path in paths:
        path = pathlib.Path(path)
        name = path.stem.replace("BENCH_", "", 1)
        try:
            fresh = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            out.write(f"bench-check: {name}: unreadable ({error})\n")
            regressed += 1
            continue
        regressed += len(check_report(name, fresh, tolerance=tolerance,
                                      out=out, root=root))
    return regressed


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json against the committed "
                    "baselines (git HEAD)",
    )
    parser.add_argument(
        "reports", nargs="*",
        help="report files to check (default: every BENCH_*.json at "
             "the repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help=f"relative drop tolerated before failing "
             f"(default {DEFAULT_TOLERANCE}, or $REPRO_BENCH_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance if args.tolerance is not None \
        else tolerance_from_env()
    paths = [pathlib.Path(p) for p in args.reports] or \
        sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("bench-check: no BENCH_*.json reports found")
        return 0
    regressed = check_files(paths, tolerance)
    if regressed:
        print(f"bench-check: {regressed} regression(s) "
              f"(tolerance {tolerance:.0%})", file=sys.stderr)
        return 1
    print(f"bench-check: OK ({len(paths)} report(s), "
          f"tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
