#!/usr/bin/env python
"""The ECC watchpoint mechanism itself, step by step.

Shows what SafeMem builds on: the kernel's three new syscalls
(WatchMemory / DisableWatchMemory / RegisterECCFaultHandler), the
scramble trick that creates a deliberate data/check-bit mismatch, how
the cache must be flushed for the watchpoint to fire, and how a
watchpoint hit is distinguished from a genuine hardware error.

Run:  python examples/ecc_watchpoints.py
"""

from repro import Machine
from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import MachinePanic
from repro.kernel.kernel import scramble_bytes

BASE = 0x4000_0000


def main():
    machine = Machine()
    kernel = machine.kernel
    kernel.mmap(BASE, 4 * PAGE_SIZE)

    # Put data in memory and remember it (SafeMem's private copy).
    machine.store(BASE, b"watched cache line".ljust(CACHE_LINE_SIZE))
    original = machine.load(BASE, CACHE_LINE_SIZE)

    # Register the user-level fault handler the kernel will call for
    # uncorrectable ECC errors.
    hits = []

    def handler(info):
        hits.append(info)
        where = f"{info.vaddr:#x}" if info.vaddr is not None \
            else f"paddr {info.paddr:#x} (unmapped to any watch)"
        print(f"  fault: {where} access={info.access} "
              f"watched={info.watched}")
        if not info.watched:
            print("  not a watched line -> genuine hardware error")
            return False
        # Check the scramble signature against the saved original --
        # this is how SafeMem tells a watchpoint from a real error.
        current = kernel.peek_watched_line(info.vaddr)
        if current == scramble_bytes(original):
            print("  signature matches -> watchpoint hit, disarming")
            kernel.disable_watch_memory(BASE, restore_data=original)
            return True
        print("  signature mismatch -> genuine hardware error")
        return False

    kernel.register_ecc_fault_handler(handler)

    # Arm the watchpoint: the kernel pins the page, flushes the line,
    # and -- with the bus locked and ECC disabled -- rewrites the line
    # with three fixed bits flipped, leaving the old ECC code stale.
    print("arming watchpoint over one cache line...")
    kernel.watch_memory(BASE, CACHE_LINE_SIZE)
    print(f"  pinned pages: {kernel.pinned_pages}")
    print(f"  DRAM now holds (scrambled): "
          f"{machine.dram.read_raw(machine.mmu.resident_frame(BASE), 18)}")

    # The first access faults, the handler disarms+restores, and the
    # access transparently resumes with the right data.
    print("touching the watched line...")
    data = machine.load(BASE, 18)
    print(f"  load returned: {data!r} after {len(hits)} fault(s)")

    # A genuine double-bit hardware error on an unwatched line is NOT
    # claimed by the handler: the kernel panics like a stock OS.
    print("injecting a real double-bit error on an unwatched line...")
    machine.store(BASE + PAGE_SIZE, b"innocent data")
    paddr = machine.mmu.translate(BASE + PAGE_SIZE)
    machine.cache.flush_line(paddr)
    machine.dram.flip_data_bit(paddr, 0)
    machine.dram.flip_data_bit(paddr, 1)
    try:
        machine.load(BASE + PAGE_SIZE, 8)
    except MachinePanic as panic:
        print(f"  {panic}")


if __name__ == "__main__":
    main()
