#!/usr/bin/env python
"""Leak detection on a long-running server, end to end.

Models the paper's headline use case: a production server with a
sometimes-leak (an error path forgets to free a session object).
SafeMem learns each object group's maximal lifetime, flags outliers,
prunes the false positives with ECC watchpoints, and reports only the
real leaks -- while the server keeps serving.

Run:  python examples/leak_detection_server.py
"""

import random

from repro import Machine, Program, SafeMem
from repro.core.config import leak_only_config

SESSION_SITE = 0x5E55
CACHE_SITE = 0xCACE


def main():
    rng = random.Random(1234)
    machine = Machine(dram_size=64 * 1024 * 1024)
    safemem = SafeMem(leak_only_config())
    program = Program(machine, monitor=safemem,
                      heap_size=16 * 1024 * 1024)

    # A long-lived connection cache: it will be *suspected* (it easily
    # outlives the session objects sharing its group) but the server
    # keeps using it, so ECC pruning clears it -- no false positive.
    with program.frame(SESSION_SITE):
        connection_cache = program.malloc(64)
    program.store(connection_cache, b"persistent state")

    leaked = []
    for request in range(4000):
        # A session object per request; 1% of requests take the buggy
        # error path that forgets the free.
        with program.frame(SESSION_SITE):
            session = program.malloc(64)
        program.store(session, b"session data")
        program.compute(100_000)  # request handling

        if rng.random() < 0.01:
            leaked.append(session)  # the bug: pointer dropped
        else:
            program.free(session)

        if request % 300 == 0:
            program.load(connection_cache, 16)  # cache still in use

    program.exit()

    reported = {r.object_address for r in safemem.leak_reports}
    true_positives = reported & set(leaked)
    false_positives = reported - set(leaked)
    print(f"requests served:        4000")
    print(f"objects actually leaked: {len(leaked)}")
    print(f"leaks reported:          {len(reported)} "
          f"({len(true_positives)} true, {len(false_positives)} false)")
    print(f"suspects pruned by ECC:  {len(safemem.pruned_suspects)}")
    print(f"simulated CPU time:      {machine.clock.cpu_seconds:.3f} s")
    for report in safemem.leak_reports[:3]:
        print("  ", report)

    assert connection_cache not in reported, \
        "the in-use cache must have been pruned, not reported"


if __name__ == "__main__":
    main()
