#!/usr/bin/env python
"""Compare the monitoring tools on one workload: the paper in miniature.

Runs the squid1 proxy model (the most copy-heavy of the seven
applications) under every monitor and prints overhead, guard-space
waste, and what each tool caught on the buggy input.

Run:  python examples/compare_tools.py
"""

from repro.analysis.runner import (
    overhead_percent,
    run_workload,
    slowdown_factor,
)

APP = "squid1"
REQUESTS = 200


def main():
    print(f"workload: {APP} ({REQUESTS} requests, normal input)\n")
    native = run_workload(APP, "native", requests=REQUESTS)
    print(f"{'monitor':<12} {'CPU cycles':>14} {'overhead':>12} "
          f"{'guard space':>12}")
    print("-" * 54)
    print(f"{'native':<12} {native.cycles:>14,} {'--':>12} {'--':>12}")

    for monitor_name in ("safemem-ml", "safemem-mc", "safemem",
                         "purify", "pageprot"):
        run = run_workload(APP, monitor_name, requests=REQUESTS)
        if monitor_name == "purify":
            overhead = f"{slowdown_factor(run.cycles, native.cycles):.1f}x"
        else:
            overhead = (
                f"+{overhead_percent(run.cycles, native.cycles):.2f}%"
            )
        space = "--"
        if hasattr(run.monitor, "space_overhead_fraction"):
            space = f"{run.monitor.space_overhead_fraction() * 100:.2f}%"
        print(f"{monitor_name:<12} {run.cycles:>14,} {overhead:>12} "
              f"{space:>12}")

    print("\nbuggy input (aborted requests leak reply buffers):")
    buggy = run_workload(APP, "safemem", buggy=True)
    leak = buggy.monitor.leak
    reported = {r.object_address for r in leak.reports}
    true_leaks = buggy.truth.leaked_addresses
    print(f"  true leaks:      {len(true_leaks)}")
    print(f"  reported:        {len(reported)} "
          f"({len(reported & true_leaks)} true, "
          f"{len(reported - true_leaks)} false)")
    print(f"  pruned suspects: {len(leak.pruned)}")


if __name__ == "__main__":
    main()
