#!/usr/bin/env python
"""Synthetic allocation traces: stress the detector at realistic scale.

Generates a server-like trace (~33 object groups, exponential-but-
bounded lifetimes, a leaking site), profiles it to verify the paper's
lifetime-stability observation at that scale, then replays it under
SafeMem and scores detection against the generator's ground truth.

Run:  python examples/synthetic_traces.py
"""

from repro import Machine, Program, SafeMem
from repro.core.config import leak_only_config
from repro.core.profiler import LifetimeProfiler
from repro.workloads.traces import SyntheticTraceGenerator, TraceReplayer


def make_program(monitor):
    machine = Machine(dram_size=64 * 1024 * 1024)
    program = Program(machine, monitor=monitor,
                      heap_size=24 * 1024 * 1024)
    return machine, program


def main():
    generator = SyntheticTraceGenerator(events=12_000, seed=7)
    trace, leaked_objects = generator.generate()
    stats = trace.stats()
    print("generated trace:")
    for key, value in stats.items():
        print(f"  {key:<18} {value:,}")
    print(f"  injected leaks     {len(leaked_objects)}")

    # Pass 1: unperturbed lifetime profile (the Figure 3 study).
    machine, program = make_program(LifetimeProfiler())
    profiler = program.monitor
    TraceReplayer(trace).run(program)
    warmups = profiler.warmup_times_seconds(min_frees=5)
    run_s = machine.clock.cpu_seconds
    early = sum(1 for w in warmups if w < 0.1 * run_s)
    print(f"\nlifetime stability: {len(warmups)} groups, "
          f"{early} stable within the first 10% of a {run_s:.3f}s run")

    # Pass 2: replay under SafeMem and score detection.
    machine, program = make_program(SafeMem(leak_only_config()))
    safemem = program.monitor
    replayer = TraceReplayer(trace)
    addresses = replayer.run(program)
    del addresses
    reported = {r.object_address for r in safemem.leak_reports}
    print(f"\nSafeMem on the same trace:")
    print(f"  leak reports:    {len(reported)}")
    print(f"  pruned suspects: {len(safemem.pruned_suspects)}")
    print(f"  groups tracked:  {len(safemem.leak.groups)}")


if __name__ == "__main__":
    main()
