#!/usr/bin/env python
"""Wrapping a custom (pool) allocator, as the paper prescribes.

Servers like apache manage memory through private pools that never go
through malloc, so malloc-interposing tools are blind to their leaks.
SafeMem's answer (paper Section 3.2.1): wrap the program's own
allocation functions.  This example builds a connection pool, wraps
its alloc/release pair, leaks some pool objects, and shows SafeMem
finding them while a churned-but-used pool object gets pruned.

Run:  python examples/custom_allocator.py
"""

from repro import Machine, Program, SafeMem
from repro.core.config import leak_only_config
from repro.heap.pool import PoolAllocator

POOL_SITE = 0xAB1E


def main():
    machine = Machine(dram_size=64 * 1024 * 1024)
    safemem = SafeMem(leak_only_config())
    program = Program(machine, monitor=safemem,
                      heap_size=16 * 1024 * 1024)

    pool = PoolAllocator(program, object_size=128,
                         objects_per_slab=16, site=POOL_SITE,
                         root_slot=0)
    # The wrap: pool objects now participate in leak detection.
    conn_alloc, conn_release = safemem.wrap_pool(pool)

    # One long-lived connection that stays in use (will be suspected,
    # then pruned by its periodic use -- not reported).
    with program.frame(POOL_SITE):
        keeper = conn_alloc()
    program.store(keeper, b"control connection")

    leaked = []
    for request in range(3000):
        with program.frame(POOL_SITE):
            connection = conn_alloc()
        program.store(connection, b"request state")
        program.compute(100_000)
        if request % 150 == 149:
            leaked.append(connection)       # the bug: never released
        else:
            conn_release(connection)
        if request % 250 == 0:
            program.load(keeper, 18)        # keeper still in use

    program.exit()

    reported = {r.object_address for r in safemem.leak_reports}
    print(f"pool slabs allocated:  {pool.slab_allocations}")
    print(f"pool objects leaked:   {len(leaked)}")
    print(f"leaks reported:        {len(reported)} "
          f"({len(reported & set(leaked))} true, "
          f"{len(reported - set(leaked))} false)")
    print(f"suspects pruned:       {len(safemem.pruned_suspects)}")
    assert keeper not in reported, "in-use keeper must not be reported"
    assert reported <= set(leaked), "no false positives expected"
    print("the keeper connection was pruned, every report is a true "
          "pool leak")


if __name__ == "__main__":
    main()
