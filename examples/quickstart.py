#!/usr/bin/env python
"""Quickstart: boot a simulated ECC machine, attach SafeMem, catch bugs.

Run:  python examples/quickstart.py
"""

from repro import Machine, Program, SafeMem
from repro.common.errors import MonitorError


def main():
    # Boot a machine with ECC memory and attach SafeMem to a program,
    # exactly like LD_PRELOADing the real tool.
    machine = Machine()
    safemem = SafeMem()
    program = Program(machine, monitor=safemem)

    # Normal usage is untouched.
    buffer = program.malloc(100)
    program.store(buffer, b"hello, ECC watchpoints")
    print("read back:", program.load(buffer, 22))

    # Bug 1: buffer overflow.  The byte one past the (line-rounded)
    # buffer lands on an ECC-guarded padding line.
    try:
        program.store(buffer + 128, b"!")
    except MonitorError as error:
        print("caught:", error.report)

    # Bug 2: use-after-free.  Freed buffers stay ECC-watched until
    # their memory is reallocated.
    program.free(buffer)
    try:
        program.load(buffer, 1)
    except MonitorError as error:
        print("caught:", error.report)

    # The monitoring cost so far, in simulated CPU time:
    print(f"simulated CPU time: {machine.clock.cpu_microseconds:.1f} us")
    telemetry = safemem.telemetry()
    print("safemem metrics:")
    for name, value in sorted(telemetry.filtered("safemem.").items()):
        print(f"  {name} = {value}")


if __name__ == "__main__":
    main()
