"""Tests for the Purify-style baseline."""

import pytest

from repro.baselines.purify import Purify, PurifyConfig
from repro.common.errors import MonitorError
from repro.core.reports import CorruptionKind
from repro.machine.machine import Machine
from repro.machine.program import Program


def make_program(config=None):
    machine = Machine(dram_size=32 * 1024 * 1024)
    purify = Purify(config or PurifyConfig())
    program = Program(machine, monitor=purify, heap_size=8 * 1024 * 1024)
    return program, purify


class TestCorruptionChecking:
    def test_overflow_write_detected(self):
        program, purify = make_program()
        buf = program.malloc(100)
        program.store(buf, b"x" * 100)
        with pytest.raises(MonitorError) as exc_info:
            program.store(buf + 100, b"!")
        assert exc_info.value.report.kind is CorruptionKind.BUFFER_OVERFLOW

    def test_one_byte_overflow_read_detected(self):
        """Byte-granularity: Purify sees even the overflow that hides in
        SafeMem's cache-line slack."""
        program, _purify = make_program()
        buf = program.malloc(100)
        program.store(buf, b"x" * 100)
        with pytest.raises(MonitorError):
            program.load(buf + 100, 1)

    def test_use_after_free_detected(self):
        program, _purify = make_program()
        buf = program.malloc(64)
        program.store(buf, b"gone")
        program.free(buf)
        with pytest.raises(MonitorError) as exc_info:
            program.load(buf, 4)
        assert exc_info.value.report.kind is CorruptionKind.USE_AFTER_FREE

    def test_uninitialized_read_detected(self):
        program, _purify = make_program()
        buf = program.malloc(64)
        with pytest.raises(MonitorError) as exc_info:
            program.load(buf, 8)
        assert exc_info.value.report.kind is \
            CorruptionKind.UNINITIALIZED_READ

    def test_uninit_detection_can_be_disabled(self):
        program, purify = make_program(PurifyConfig(detect_uninit=False))
        buf = program.malloc(64)
        program.load(buf, 8)
        assert purify.corruption_reports == []

    def test_legal_accesses_silent(self):
        program, purify = make_program()
        buf = program.malloc(128)
        program.store(buf, b"y" * 128)
        assert program.load(buf, 128) == b"y" * 128
        assert purify.corruption_reports == []

    def test_every_access_is_checked(self):
        program, purify = make_program()
        buf = program.malloc(64)
        before = purify.access_checks
        program.store(buf, b"12345678")
        for _ in range(10):
            program.load(buf, 8)
        assert purify.access_checks == before + 11


class TestInstrumentationCosts:
    def test_compute_is_dilated(self):
        program, _purify = make_program()
        machine = program.machine
        before = machine.clock.cycles
        program.compute(1000)
        dilated = machine.clock.cycles - before
        assert dilated == 1000 * machine.costs.purify_instruction_cost()
        assert dilated > 1000 * machine.costs.instruction


class TestMarkAndSweep:
    def test_unreferenced_block_reported_at_exit(self):
        program, purify = make_program(PurifyConfig(sweep_interval_s=0))
        kept = program.malloc(64)
        program.store(kept, b"\0" * 64)
        program.set_global(0, kept)        # reachable from the roots
        dropped = program.malloc(64)
        program.store(dropped, b"\0" * 64)  # pointer never stored
        program.exit()
        leaked = {r.object_address for r in purify.leak_reports}
        assert dropped in leaked
        assert kept not in leaked

    def test_transitively_reachable_not_leaked(self):
        program, purify = make_program(PurifyConfig(sweep_interval_s=0))
        head = program.malloc(64)
        node = program.malloc(64)
        program.store(head, bytes(64))
        program.store(node, bytes(64))
        program.store_word(head, node)   # head -> node
        program.set_global(0, head)      # roots -> head
        program.exit()
        leaked = {r.object_address for r in purify.leak_reports}
        assert node not in leaked
        assert head not in leaked

    def test_interior_pointer_keeps_block_alive(self):
        """Conservative collection: a pointer into the middle of a
        block still marks it."""
        program, purify = make_program(PurifyConfig(sweep_interval_s=0))
        buf = program.malloc(256)
        program.store(buf, bytes(256))
        program.set_global(0, buf + 100)
        program.exit()
        assert buf not in {r.object_address for r in purify.leak_reports}

    def test_sweep_pauses_program(self):
        program, purify = make_program(PurifyConfig(sweep_interval_s=0))
        block = program.malloc(4096)
        program.store(block, bytes(4096))
        program.set_global(0, block)
        before = program.machine.clock.cycles
        purify._mark_and_sweep()
        paused = program.machine.clock.cycles - before
        assert paused >= program.machine.costs.purify_sweep_base

    def test_periodic_sweeps_triggered_by_cpu_time(self):
        program, purify = make_program(
            PurifyConfig(sweep_interval_s=0.001)
        )
        for _ in range(50):
            block = program.malloc(64)
            program.compute(100_000)
            program.free(block)
        assert purify.sweeps >= 2

    def test_no_duplicate_leak_reports(self):
        program, purify = make_program(PurifyConfig(sweep_interval_s=0))
        dropped = program.malloc(64)
        program.store(dropped, bytes(64))
        purify._mark_and_sweep()
        purify._mark_and_sweep()
        addresses = [r.object_address for r in purify.leak_reports]
        assert addresses.count(dropped) == 1


class TestRealloc:
    def test_realloc_preserves_prefix(self):
        program, _purify = make_program()
        buf = program.malloc(32)
        program.store(buf, b"keep me!" + bytes(24))
        new = program.realloc(buf, 128)
        assert program.load(new, 8) == b"keep me!"
