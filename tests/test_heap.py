"""Tests for the allocator and call-stack signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import VirtualClock
from repro.common.costs import default_cost_model
from repro.common.errors import (
    ConfigurationError,
    DoubleFree,
    InvalidFree,
    OutOfMemory,
)
from repro.heap.allocator import MIN_ALIGNMENT, Allocator
from repro.heap.callstack import CallStack, call_stack_signature

BASE = 0x2000_0000
SIZE = 1024 * 1024


@pytest.fixture
def allocator():
    return Allocator(BASE, SIZE)


class TestMalloc:
    def test_returns_in_arena(self, allocator):
        addr = allocator.malloc(100)
        assert BASE <= addr < BASE + SIZE

    def test_min_alignment(self, allocator):
        for _ in range(10):
            assert allocator.malloc(7) % MIN_ALIGNMENT == 0

    def test_requested_alignment(self, allocator):
        allocator.malloc(5)
        addr = allocator.malloc(100, alignment=64)
        assert addr % 64 == 0

    def test_rejects_bad_sizes(self, allocator):
        with pytest.raises(ConfigurationError):
            allocator.malloc(0)
        with pytest.raises(ConfigurationError):
            allocator.malloc(-5)

    def test_rejects_bad_alignment(self, allocator):
        with pytest.raises(ConfigurationError):
            allocator.malloc(8, alignment=48)
        with pytest.raises(ConfigurationError):
            allocator.malloc(8, alignment=8)

    def test_no_overlap(self, allocator):
        blocks = [(allocator.malloc(s), s) for s in (16, 100, 7, 4096, 33)]
        spans = sorted(
            (addr, addr + allocator.lookup(addr).size) for addr, _ in blocks
        )
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_out_of_memory(self):
        allocator = Allocator(BASE, 1024)
        allocator.malloc(512)
        with pytest.raises(OutOfMemory):
            allocator.malloc(1024)


class TestFree:
    def test_free_makes_space_reusable(self):
        allocator = Allocator(BASE, 1024)
        addr = allocator.malloc(1024)
        allocator.free(addr)
        assert allocator.malloc(1024) == addr

    def test_double_free_detected(self, allocator):
        addr = allocator.malloc(64)
        allocator.free(addr)
        with pytest.raises(DoubleFree):
            allocator.free(addr)

    def test_invalid_free_detected(self, allocator):
        with pytest.raises(InvalidFree):
            allocator.free(BASE + 123)

    def test_coalescing(self):
        allocator = Allocator(BASE, 4096)
        a = allocator.malloc(1024)
        b = allocator.malloc(1024)
        c = allocator.malloc(1024)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)  # middle free must merge all three
        big = allocator.malloc(3072)
        assert big == a

    def test_was_freed_history(self, allocator):
        addr = allocator.malloc(64)
        assert not allocator.was_freed(addr)
        allocator.free(addr)
        assert allocator.was_freed(addr)

    def test_reallocating_same_address_clears_freed_history(self):
        allocator = Allocator(BASE, 1024)
        addr = allocator.malloc(1024)
        allocator.free(addr)
        again = allocator.malloc(1024)
        assert again == addr
        assert not allocator.was_freed(addr)
        allocator.free(addr)  # legal: it is live again


class TestRealloc:
    def test_grow_moves_or_extends(self, allocator):
        addr = allocator.malloc(64)
        new = allocator.realloc(addr, 4096)
        assert allocator.is_live(new)
        assert allocator.lookup(new).size >= 4096

    def test_shrink_in_place(self, allocator):
        addr = allocator.malloc(4096)
        assert allocator.realloc(addr, 64) == addr

    def test_realloc_none_is_malloc(self, allocator):
        addr = allocator.realloc(None, 128)
        assert allocator.is_live(addr)

    def test_realloc_invalid(self, allocator):
        with pytest.raises(InvalidFree):
            allocator.realloc(BASE + 5, 10)


class TestAccounting:
    def test_live_bytes_and_peak(self, allocator):
        a = allocator.malloc(1000)
        peak = allocator.live_bytes
        assert peak >= 1000
        allocator.free(a)
        assert allocator.live_bytes == 0
        assert allocator.peak_live_bytes == peak

    def test_counters(self, allocator):
        a = allocator.malloc(10)
        allocator.malloc(20)
        allocator.free(a)
        assert allocator.total_allocs == 2
        assert allocator.total_frees == 1

    def test_clock_charged(self):
        clock = VirtualClock()
        costs = default_cost_model()
        allocator = Allocator(BASE, SIZE, clock=clock, costs=costs)
        allocator.malloc(10)
        assert clock.cycles == costs.heap_op

    def test_block_containing(self, allocator):
        addr = allocator.malloc(100)
        block = allocator.block_containing(addr + 50)
        assert block.address == addr
        assert allocator.block_containing(BASE + SIZE - 1) is None


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=1, max_value=2048),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_all_restores_full_arena(self, sizes):
        allocator = Allocator(BASE, SIZE)
        addresses = [allocator.malloc(size) for size in sizes]
        for address in addresses:
            allocator.free(address)
        # Full coalescing: one free extent covering the whole arena.
        assert allocator.free_bytes() == SIZE
        assert allocator.malloc(SIZE) == BASE

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=512),
                              st.booleans()),
                    min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_live_bytes_invariant(self, operations):
        allocator = Allocator(BASE, SIZE)
        live = []
        for size, do_free in operations:
            if do_free and live:
                allocator.free(live.pop())
            else:
                live.append(allocator.malloc(size))
        expected = sum(allocator.lookup(a).size for a in live)
        assert allocator.live_bytes == expected
        assert allocator.free_bytes() + expected == SIZE


class TestCallStack:
    def test_signature_depends_on_order(self):
        assert call_stack_signature([1, 2, 3, 4]) != \
            call_stack_signature([4, 3, 2, 1])

    def test_signature_uses_only_last_four(self):
        deep = [9, 9, 9, 1, 2, 3, 4]
        assert call_stack_signature(deep) == call_stack_signature([1, 2, 3, 4])

    def test_signature_is_32_bit(self):
        sig = call_stack_signature([0xFFFF_FFFF_FFFF] * 4)
        assert 0 <= sig < 2 ** 32

    def test_stack_push_pop(self):
        stack = CallStack(entry_pc=0x400)
        stack.push(0x500)
        stack.push(0x600)
        assert stack.depth == 3
        assert stack.pop() == 0x600
        assert stack.frames() == (0x400, 0x500)

    def test_cannot_pop_entry_frame(self):
        stack = CallStack()
        with pytest.raises(IndexError):
            stack.pop()

    def test_different_sites_different_signatures(self):
        s1 = CallStack()
        s2 = CallStack()
        s1.push(0x1000)
        s2.push(0x2000)
        assert s1.signature() != s2.signature()
