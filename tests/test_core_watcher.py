"""Tests for the user-level ECC watch manager."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import MachinePanic
from repro.ecc.controller import EccMode
from repro.core.watcher import EccWatchManager, WatchTag
from repro.machine.machine import Machine

BASE = 0x4000_0000


@pytest.fixture
def machine():
    m = Machine(dram_size=8 * 1024 * 1024)
    m.kernel.mmap(BASE, 32 * PAGE_SIZE)
    return m


@pytest.fixture
def watcher(machine):
    return EccWatchManager(machine)


def make_hit_recorder(watcher, disarm=True, restore=True):
    hits = []

    def on_hit(watch, info):
        hits.append((watch, info))
        if disarm:
            watcher.unwatch(watch, restore=restore)
        return True

    return hits, on_hit


class TestArmDisarm:
    def test_watch_saves_original_and_scrambles(self, machine, watcher):
        machine.store(BASE, b"original")
        hits, on_hit = make_hit_recorder(watcher)
        watch = watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD, on_hit)
        assert watch.original[:8] == b"original"
        assert watcher.is_watched(BASE)
        assert watcher.is_watched(BASE + CACHE_LINE_SIZE - 1)
        assert not watcher.is_watched(BASE + CACHE_LINE_SIZE)

    def test_hit_dispatches_to_callback(self, machine, watcher):
        machine.store(BASE, b"data")
        hits, on_hit = make_hit_recorder(watcher)
        watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD, on_hit)
        assert machine.load(BASE, 4) == b"data"
        assert len(hits) == 1
        _watch, info = hits[0]
        assert info.access == "read"

    def test_write_hit_reports_write_access(self, machine, watcher):
        machine.store(BASE, b"data")
        hits, on_hit = make_hit_recorder(watcher)
        watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD, on_hit)
        machine.store(BASE, b"new!")
        assert hits[0][1].access == "write"

    def test_unwatch_restores_original(self, machine, watcher):
        machine.store(BASE, b"precious")
        watch = watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.FREED,
                              lambda w, i: True)
        watcher.unwatch(watch)
        assert machine.load(BASE, 8) == b"precious"

    def test_unwatch_twice_is_harmless(self, machine, watcher):
        machine.store(BASE, b"x")
        watch = watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.FREED,
                              lambda w, i: True)
        watcher.unwatch(watch)
        watcher.unwatch(watch)
        assert watcher.disarm_count == 1

    def test_overlapping_watch_returns_none(self, machine, watcher):
        machine.store(BASE, b"x")
        assert watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD,
                             lambda w, i: True) is not None
        assert watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD,
                             lambda w, i: True) is None

    def test_pin_exhaustion_returns_none(self):
        m = Machine(dram_size=8 * 1024 * 1024, max_pinned_pages=1)
        m.kernel.mmap(BASE, 8 * PAGE_SIZE)
        watcher = EccWatchManager(m)
        m.store(BASE, b"a")
        m.store(BASE + PAGE_SIZE, b"b")
        assert watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD,
                             lambda w, i: True) is not None
        assert watcher.watch(BASE + PAGE_SIZE, CACHE_LINE_SIZE,
                             WatchTag.PAD, lambda w, i: True) is None
        assert watcher.pin_failures == 1

    def test_unwatch_all(self, machine, watcher):
        machine.store(BASE, bytes(4 * CACHE_LINE_SIZE))
        for i in range(4):
            watcher.watch(BASE + i * CACHE_LINE_SIZE, CACHE_LINE_SIZE,
                          WatchTag.PAD, lambda w, i: True)
        watcher.unwatch_all()
        assert watcher.active_watches() == []
        machine.load(BASE, 4 * CACHE_LINE_SIZE)  # no faults


class TestHardwareErrorDiscrimination:
    def test_unwatched_hardware_error_declined(self, machine, watcher):
        machine.store(BASE, b"victim")
        paddr = machine.mmu.translate(BASE)
        machine.cache.flush_line(paddr)
        machine.dram.flip_data_bit(paddr, 0)
        machine.dram.flip_data_bit(paddr, 1)
        with pytest.raises(MachinePanic):
            machine.load(BASE, 1)
        assert watcher.unclaimed_faults == 1

    def test_hardware_error_in_watched_region_repaired(self, machine,
                                                       watcher):
        machine.store(BASE, b"guarded contents")
        hits, on_hit = make_hit_recorder(watcher)
        watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.LEAK_SUSPECT, on_hit)
        # A real hardware error strikes the scrambled line: flip TWO
        # more bits so the stored pattern no longer matches the
        # scramble signature.
        paddr = machine.mmu.translate(BASE)
        machine.dram.flip_data_bit(paddr, 6)
        machine.dram.flip_data_bit(paddr + 1, 7)
        data = machine.load(BASE, 16)
        # SafeMem repaired from its private copy and re-armed; the
        # load then hit the re-armed watchpoint and the callback fired.
        assert watcher.hardware_errors_repaired == 1
        assert len(hits) == 1
        assert data == b"guarded contents"


class TestScrubCoordination:
    def test_suspend_resume_roundtrip(self):
        m = Machine(dram_size=2 * 1024 * 1024,
                    ecc_mode=EccMode.CORRECT_AND_SCRUB)
        m.kernel.mmap(BASE, 4 * PAGE_SIZE)
        watcher = EccWatchManager(m)
        m.store(BASE, b"scrub me not")
        hits, on_hit = make_hit_recorder(watcher)
        watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.LEAK_SUSPECT, on_hit)
        faults = m.kernel.run_scrub_pass()
        assert faults == []          # suspended during the pass
        assert watcher.active_watches()  # re-armed afterwards
        assert m.load(BASE, 12) == b"scrub me not"
        assert len(hits) == 1        # still armed after resume


class TestAccounting:
    def test_arm_disarm_counts(self, machine, watcher):
        machine.store(BASE, b"x")
        watch = watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.PAD,
                              lambda w, i: True)
        watcher.unwatch(watch)
        assert watcher.arm_count == 1
        assert watcher.disarm_count == 1

    def test_watch_for_lookup(self, machine, watcher):
        machine.store(BASE, b"x")
        watch = watcher.watch(BASE, CACHE_LINE_SIZE, WatchTag.FREED,
                              lambda w, i: True)
        assert watcher.watch_for(BASE + 10) is watch
        assert watcher.watch_for(BASE + CACHE_LINE_SIZE) is None
