"""Tests for post-mortem forensics: bundles, replay, and diffing.

Covers bundle capture (contents, observation-only invariant, JSON
round-trip), the automatic :class:`ForensicRecorder` (panic and
firing-alert triggers, per-rule dedupe, the dump budget), deterministic
replay (full-run bit-exactness, ``--until-cycle`` / ``--break-on``
breakpoints, the differential verify), the inspection renderers, the
bundle/metrics diff engine, fleet auto-dump wiring, and the end-to-end
acceptance loop: an injected leak fires ``leak-suspect-growth`` under
``--dump-on-alert``, the auto-written bundle alone surfaces the leaking
``(size, call-stack)`` group, and replay reproduces the recorded event
stream bit-identically up to the dump cycle.
"""

import io
import json

import pytest

from repro.analysis import fleet
from repro.analysis.runner import (
    CACHE_SIZE,
    DRAM_SIZE,
    make_monitor,
    run_workload,
)
from repro.cli import main
from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.common.errors import (
    ConfigurationError,
    FleetError,
    MachinePanic,
)
from repro.common.events import EventKind
from repro.machine.machine import Machine
from repro.obs.alerts import AlertEngine, default_rules
from repro.obs.export import write_metrics_json
from repro.obs.forensics import (
    DUMP_SCHEMA,
    ForensicRecorder,
    capture_bundle,
    diff_documents,
    event_to_dict,
    load_bundle,
    load_document,
    machine_from_config,
    parse_breakpoint,
    render_bundle_events,
    render_bundle_groups,
    render_bundle_heap,
    render_bundle_summary,
    render_diff,
    render_stream_summary,
    replay_bundle,
    verify_replay,
    write_bundle,
)
from repro.obs.sampler import SamplingProfiler, leak_group_source
from repro.obs.stack import MonitorStackConfig


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _small_run(workload="gzip", monitor="safemem", requests=10, seed=7):
    """One cheap monitored run plus the run_info that makes it
    replayable."""
    result = run_workload(workload, monitor, buggy=False,
                          requests=requests, seed=seed)
    run_info = {"workload": workload, "monitor": monitor,
                "buggy": False, "requests": requests, "seed": seed}
    return result, run_info


def _monitored_leak_run(dump_dir, requests=400,
                        sample_every=30_000_000):
    """The acceptance scenario: buggy ypserv1 under safemem-ml with the
    production monitoring stack and a --dump-on-alert recorder.  At
    this sampling interval the growing leak-suspect count fires
    ``leak-suspect-growth`` mid-run."""
    machine = Machine(dram_size=DRAM_SIZE, cache_size=CACHE_SIZE,
                      cache_ways=16)
    monitor = make_monitor("safemem-ml")
    sampler = SamplingProfiler(machine, interval_cycles=sample_every,
                               group_source=leak_group_source(monitor))
    engine = AlertEngine(default_rules(), events=machine.events,
                         metrics=machine.metrics)
    sampler.add_listener(engine.evaluate)
    run_info = {
        "workload": "ypserv1", "monitor": "safemem-ml", "buggy": True,
        "requests": requests, "seed": 0,
        "monitoring": {
            "sample_every": sample_every,
            "rules": [rule.to_dict() for rule in default_rules()],
        },
    }
    recorder = ForensicRecorder(machine, monitor=monitor,
                                run_info=run_info, dump_dir=dump_dir,
                                label="ypserv1", on_alert=True)
    sampler.start()
    try:
        result = run_workload("ypserv1", "safemem-ml", buggy=True,
                              requests=requests, seed=0,
                              machine=machine, monitor=monitor)
    finally:
        sampler.stop()
        recorder.detach()
    return machine, monitor, recorder, result


def _armed_machine_without_handler():
    """A real kernel-panic recipe: armed watch, no user handler."""
    machine = Machine(dram_size=8 * 1024 * 1024)
    base = 0x4000_0000
    machine.kernel.mmap(base, 4 * PAGE_SIZE)
    machine.store(base, bytes(CACHE_LINE_SIZE))
    machine.kernel.watch_memory(base, CACHE_LINE_SIZE)
    return machine, base


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
class TestCaptureBundle:
    def test_bundle_contents(self):
        result, run_info = _small_run()
        machine = result.machine
        bundle = capture_bundle(machine, monitor=result.monitor,
                                run_info=run_info)
        assert bundle["schema"] == DUMP_SCHEMA
        assert bundle["reason"] == "manual"
        assert bundle["cycle"] == machine.clock.cycles
        assert bundle["run"] == run_info
        assert bundle["machine"] == machine.boot_config
        assert bundle["metrics"]["schema"] == "repro.metrics/v1"
        assert bundle["events"]["total"] == len(machine.events)
        assert bundle["events"]["tail"]
        assert bundle["events"]["tail"][-1] == event_to_dict(
            machine.events.query()[-1])
        heap = bundle["heap"]
        allocator = result.monitor.program.allocator
        assert heap["total_allocs"] == allocator.total_allocs
        assert heap["live_blocks"] == len(allocator.live_allocations())
        assert isinstance(bundle["groups"], list)
        assert isinstance(bundle["watches"], list)
        assert "delivered" in bundle["interrupts"]

    def test_capture_is_observation_only(self):
        result, run_info = _small_run()
        machine = result.machine
        before_cycles = machine.clock.cycles
        before_events = len(machine.events)
        capture_bundle(machine, monitor=result.monitor,
                       run_info=run_info)
        assert machine.clock.cycles == before_cycles
        assert len(machine.events) == before_events

    def test_write_load_round_trip(self, tmp_path):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        path = write_bundle(bundle, tmp_path / "a" / "b.dump.json")
        assert path.exists()  # parents created
        assert load_bundle(path) == json.loads(json.dumps(bundle))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/v9"}))
        with pytest.raises(ConfigurationError):
            load_bundle(path)

    def test_capture_without_monitor_has_no_heap(self):
        machine = Machine(dram_size=8 * 1024 * 1024)
        bundle = capture_bundle(machine)
        assert bundle["heap"] is None
        assert bundle["groups"] == []
        assert bundle["run"] == {}


# ----------------------------------------------------------------------
# the automatic recorder
# ----------------------------------------------------------------------
class TestForensicRecorder:
    def test_kernel_panic_auto_captures(self, tmp_path):
        machine, base = _armed_machine_without_handler()
        recorder = ForensicRecorder(machine, dump_dir=tmp_path,
                                    label="crash")
        with pytest.raises(MachinePanic):
            machine.load(base, 8)
        assert len(recorder.bundle_paths) == 1
        bundle = load_bundle(recorder.bundle_paths[0])
        assert bundle["reason"] == "panic"
        assert bundle["trigger"]["reason"] == \
            "no ECC fault handler registered"
        # The tracer's frozen panic dump rides along in the bundle.
        assert bundle["spans"]["panic"] is not None
        # The triggering PANIC event itself is in the captured tail.
        assert bundle["events"]["tail"][-1]["kind"] == "panic"

    def test_retry_exhaustion_panic_emits_event_and_dumps(self,
                                                          tmp_path):
        # Machine.load/store retry exhaustion must go through the same
        # PANIC-event path as the kernel's unhandled-fault panic.
        machine = Machine(dram_size=8 * 1024 * 1024)
        recorder = ForensicRecorder(machine, dump_dir=tmp_path)
        with pytest.raises(MachinePanic):
            machine._retry_panic(0x1234, 9)
        assert machine.events.last(EventKind.PANIC) is not None
        assert len(recorder.bundle_paths) == 1
        bundle = load_bundle(recorder.bundle_paths[0])
        assert bundle["trigger"]["address"] == 0x1234

    def test_alert_capture_dedupes_per_rule(self, tmp_path):
        machine = Machine(dram_size=8 * 1024 * 1024)
        recorder = ForensicRecorder(machine, dump_dir=tmp_path,
                                    on_alert=True)
        machine.events.emit(EventKind.ALERT, rule="hot",
                            severity="warning", state="firing", value=1)
        machine.events.emit(EventKind.ALERT, rule="hot",
                            severity="warning", state="firing", value=2)
        machine.events.emit(EventKind.ALERT, rule="hot",
                            severity="warning", state="resolved", value=0)
        assert len(recorder.bundle_paths) == 1
        machine.events.emit(EventKind.ALERT, rule="cold",
                            severity="critical", state="firing", value=9)
        assert len(recorder.bundle_paths) == 2
        second = load_bundle(recorder.bundle_paths[1])
        assert second["reason"] == "alert"
        assert second["trigger"]["rule"] == "cold"
        assert second["trigger"]["severity"] == "critical"

    def test_max_bundles_counts_skips(self, tmp_path):
        machine = Machine(dram_size=8 * 1024 * 1024)
        recorder = ForensicRecorder(machine, dump_dir=tmp_path,
                                    max_bundles=1)
        machine.events.emit(EventKind.PANIC, reason="one")
        machine.events.emit(EventKind.PANIC, reason="two")
        assert len(recorder.bundle_paths) == 1
        assert recorder.bundles_skipped == 1

    def test_context_manager_detaches(self, tmp_path):
        machine = Machine(dram_size=8 * 1024 * 1024)
        with ForensicRecorder(machine, dump_dir=tmp_path) as recorder:
            pass
        machine.events.emit(EventKind.PANIC, reason="after")
        assert recorder.bundle_paths == []


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
class TestReplay:
    def test_machine_from_config_round_trips(self):
        machine = Machine(dram_size=8 * 1024 * 1024,
                          cache_size=128 * 1024, cache_ways=4)
        rebooted = machine_from_config(dict(machine.boot_config))
        assert rebooted.boot_config == machine.boot_config

    def test_parse_breakpoint(self):
        assert parse_breakpoint("0x4000") == (None, 0x4000)
        assert parse_breakpoint("4096") == (None, 4096)
        assert parse_breakpoint("leak_report") == \
            (EventKind.LEAK_REPORT, None)
        with pytest.raises(ConfigurationError):
            parse_breakpoint("not_an_event")

    def test_full_replay_is_bit_exact(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        replay = replay_bundle(bundle)
        assert not replay.broke
        assert replay.panic is None
        assert replay.truth.requests_completed == \
            result.truth.requests_completed
        # Stronger than the tail check: the *entire* event stream of
        # the replay matches the original run, record for record.
        original = [event_to_dict(e)
                    for e in result.machine.events.query()]
        replayed = [event_to_dict(e) for e in replay.events]
        assert replayed == original
        ok, message = verify_replay(bundle, replay)
        assert ok, message

    def test_replay_requires_run_info(self):
        machine = Machine(dram_size=8 * 1024 * 1024)
        bundle = capture_bundle(machine)
        with pytest.raises(ConfigurationError):
            replay_bundle(bundle)

    def test_until_cycle_breaks_with_identical_prefix(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        until = bundle["cycle"] // 2
        replay = replay_bundle(bundle, until_cycle=until)
        assert replay.broke
        assert replay.break_cycle >= until
        assert replay.break_cycle < bundle["cycle"]
        ok, message = verify_replay(bundle, replay)
        assert ok, message
        # Differential pin: below the break cycle, the replayed prefix
        # equals the original stream exactly.
        cutoff = replay.break_cycle
        original = [event_to_dict(e)
                    for e in result.machine.events.query()
                    if e.cycle < cutoff]
        replayed = [event_to_dict(e) for e in replay.events
                    if e.cycle < cutoff]
        assert replayed == original

    def test_until_cycle_must_be_in_the_future(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        with pytest.raises(ConfigurationError):
            replay_bundle(bundle, until_cycle=0)

    def test_break_on_event_kind(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        replay = replay_bundle(bundle, break_on="watch")
        assert replay.broke
        first_watch = next(e for e in result.machine.events.query()
                           if e.kind is EventKind.WATCH)
        assert replay.break_cycle == first_watch.cycle

    def test_break_on_address(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        target = next(e for e in result.machine.events.query()
                      if e.kind is EventKind.WATCH)
        replay = replay_bundle(bundle, break_on=hex(target.address))
        assert replay.broke
        assert replay.break_cycle <= target.cycle

    def test_verify_detects_divergence(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        replay = replay_bundle(bundle)
        bundle["events"]["tail"][-1] = dict(
            bundle["events"]["tail"][-1], cycle=999_999_999_999)
        ok, message = verify_replay(bundle, replay)
        assert not ok
        assert "diverged" in message

    def test_verify_detects_missing_events(self):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        replay = replay_bundle(bundle)
        replay.events = replay.events[:-10]
        replay.broke = True
        replay.break_cycle = bundle["cycle"]
        ok, message = verify_replay(bundle, replay)
        assert not ok


# ----------------------------------------------------------------------
# inspection
# ----------------------------------------------------------------------
class TestInspection:
    def _bundle(self):
        result, run_info = _small_run()
        return capture_bundle(result.machine, monitor=result.monitor,
                              run_info=run_info)

    def test_summary_names_run_and_machine(self):
        rendered = render_bundle_summary(self._bundle())
        assert "gzip/safemem" in rendered
        assert "seed 7" in rendered
        assert "64 MiB DRAM" in rendered
        assert "events:" in rendered

    def test_groups_table_lists_size_and_callsig(self):
        bundle = self._bundle()
        rendered = render_bundle_groups(bundle)
        if bundle["groups"]:
            top = bundle["groups"][0]
            assert str(top["size"]) in rendered
            assert f"{top['call_signature']:#09x}" in rendered

    def test_heap_map_lists_blocks(self):
        rendered = render_bundle_heap(self._bundle())
        assert "live in" in rendered

    def test_event_tail_filters(self):
        bundle = self._bundle()
        rendered = render_bundle_events(bundle, kind="watch", limit=5)
        assert rendered.count("\n") <= 5
        assert "watch" in rendered
        nothing = render_bundle_events(bundle, kind="panic")
        assert nothing == "no matching events in the recorded tail"

    def test_load_document_dispatch(self, tmp_path):
        bundle = self._bundle()
        dump_path = write_bundle(bundle, tmp_path / "x.dump.json")
        assert load_document(dump_path)[0] == "dump"

        machine = Machine(dram_size=8 * 1024 * 1024)
        metrics_path = tmp_path / "m.json"
        write_metrics_json(metrics_path, machine.metrics.snapshot())
        assert load_document(metrics_path)[0] == "metrics"

        stream_path = tmp_path / "s.jsonl"
        stream_path.write_text(json.dumps(
            {"schema": "repro.events/v1", "type": "run", "cycle": 0,
             "run": {"marker": "start"}}) + "\n")
        kind, records = load_document(stream_path)
        assert kind == "stream"
        assert len(records) == 1

        garbage = tmp_path / "g.json"
        garbage.write_text("{\"schema\": \"wat/v0\"}")
        with pytest.raises(ConfigurationError):
            load_document(garbage)

    def test_stream_summary(self):
        records = [
            {"schema": "repro.events/v1", "type": "run", "cycle": 0,
             "run": {"marker": "start"}},
            {"schema": "repro.events/v1", "type": "sample", "cycle": 5,
             "sample": {}},
            {"schema": "repro.events/v1", "type": "alert", "cycle": 9,
             "alert": {"rule": "hot", "state": "firing"}},
        ]
        rendered = render_stream_summary(records)
        assert "3 record(s)" in rendered
        assert "alerts firing: hot" in rendered
        assert "run markers: start" in rendered


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def _metrics_doc(cycle, values, kinds):
    return {"schema": "repro.metrics/v1",
            "generated": {"cycle": cycle, "since_cycle": None},
            "metrics": values, "kinds": kinds}


class TestDiff:
    def test_counter_gauge_and_alert_changes(self):
        kinds = {"requests": "counter", "heap.live": "gauge",
                 "alerts.rule.hot.fired": "counter"}
        a = _metrics_doc(100, {"requests": 10, "heap.live": 640,
                               "alerts.rule.hot.fired": 0}, kinds)
        b = _metrics_doc(200, {"requests": 25, "heap.live": 320,
                               "alerts.rule.hot.fired": 2}, kinds)
        diff = diff_documents(a, b)
        assert diff["cycle_a"] == 100 and diff["cycle_b"] == 200
        requests = next(row for row in diff["counters"]
                        if row["name"] == "requests")
        assert requests["delta"] == 15
        assert diff["gauges"] == [{"name": "heap.live", "a": 640,
                                   "b": 320}]
        assert diff["alerts"]["appeared"] == ["hot"]
        assert diff["alerts"]["disappeared"] == []

    def test_histogram_shift_grouped_not_itemized(self):
        names = {f"lat{suffix}": "gauge" for suffix in
                 (".count", ".sum", ".min", ".max",
                  ".p50", ".p90", ".p99")}
        a = _metrics_doc(1, {"lat.count": 10, "lat.sum": 50,
                             "lat.min": 1, "lat.max": 9, "lat.p50": 5,
                             "lat.p90": 8, "lat.p99": 9}, names)
        b = _metrics_doc(2, {"lat.count": 20, "lat.sum": 300,
                             "lat.min": 1, "lat.max": 30, "lat.p50": 12,
                             "lat.p90": 25, "lat.p99": 30}, names)
        diff = diff_documents(a, b)
        assert diff["gauges"] == []  # folded into the histogram row
        assert len(diff["histograms"]) == 1
        row = diff["histograms"][0]
        assert row["name"] == "lat"
        assert row["a.p50"] == 5 and row["b.p50"] == 12

    def test_bundle_diff_includes_group_shifts(self):
        result, run_info = _small_run()
        a = capture_bundle(result.machine, monitor=result.monitor,
                           run_info=run_info)
        b = json.loads(json.dumps(a))
        if not b["groups"]:
            pytest.skip("run produced no allocation groups")
        b["groups"][0]["live_bytes"] += 4096
        diff = diff_documents(a, b)
        assert diff["groups"][0]["delta"] == 4096
        rendered = render_diff(diff)
        assert "leak-group live_bytes shifts:" in rendered

    def test_identical_documents_diff_empty(self):
        doc = _metrics_doc(5, {"x": 1}, {"x": "counter"})
        rendered = render_diff(diff_documents(doc, doc))
        assert "no differences" in rendered

    def test_rejects_unknown_schema(self):
        with pytest.raises(ConfigurationError):
            diff_documents({"schema": "nope/v1"}, {"schema": "nope/v1"})


# ----------------------------------------------------------------------
# fleet wiring
# ----------------------------------------------------------------------
class TestFleetForensics:
    def test_fleet_dump_on_alert_links_bundles(self, tmp_path):
        result = fleet.run_fleet(
            "ypserv1", machines=1, buggy=True, requests=400, jobs=1,
            stack=MonitorStackConfig(monitor="safemem-ml",
                                     sample_every=30_000_000,
                                     dump_dir=str(tmp_path),
                                     dump_on_alert=True),
        )
        report = result.reports[0]
        assert report.bundles, "no forensic bundle written"
        bundle = load_bundle(report.bundles[0])
        assert bundle["reason"] == "alert"
        assert bundle["trigger"]["rule"] == "leak-suspect-growth"
        # Fleet machines record their monitoring stack, so the bundle
        # is replayable with the same alert behaviour.
        assert bundle["run"]["monitoring"]["sample_every"] == 30_000_000
        rendered = result.render()
        assert "forensic dumps:" in rendered
        assert report.bundles[0] in rendered

    def test_fleet_without_dump_dir_writes_nothing(self):
        result = fleet.run_fleet("gzip", machines=1, monitor="native",
                                 requests=5, jobs=1)
        assert result.reports[0].bundles == []
        assert "forensic dumps:" not in result.render()

    def test_panicking_machine_becomes_report_row(self, tmp_path,
                                                  monkeypatch):
        def boom(*args, machine=None, monitor=None, **kwargs):
            # Mirror the boot-tap call the real run_workload makes, so
            # the job's ForensicRecorder attaches before the crash.
            from repro.analysis import runner
            for tap in list(runner._BOOT_TAPS):
                tap(machine, monitor,
                    {"workload": "gzip", "monitor": "native"})
            machine.events.emit(EventKind.PANIC, address=0x40,
                                reason="injected")
            raise MachinePanic("injected")

        monkeypatch.setattr(fleet, "run_workload", boom)
        spec = ("fleet-machine", "fleet:gzip:0",
                {"workload": "gzip", "monitor": "native", "buggy": False,
                 "requests": 5, "seed": 0, "index": 0,
                 "sample_every": None, "rules": "default",
                 "forensics": True})
        outcome = fleet.run_jobs([spec], jobs=1, dump_dir=tmp_path)
        report = outcome.payloads["fleet:gzip:0"]
        assert report.detection == "panic: injected"
        assert report.requests_completed == 0
        assert report.bundles and outcome.bundles == report.bundles
        assert load_bundle(report.bundles[0])["reason"] == "panic"

    def test_fleet_error_carries_bundles(self):
        spec = ("fleet-machine", "fleet:bad:0",
                {"workload": "no-such-workload", "monitor": "native",
                 "buggy": False, "requests": 1, "seed": 0, "index": 0,
                 "sample_every": None, "rules": "default"})
        with pytest.raises(FleetError) as exc_info:
            fleet.run_jobs([spec], jobs=1)
        assert exc_info.value.bundles == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestForensicsCli:
    def test_monitor_dump_on_alert_writes_bundle(self, tmp_path):
        dump_dir = tmp_path / "dumps"
        code, output = run_cli(
            "monitor", "ypserv1", "--monitor", "safemem-ml", "--buggy",
            "--requests", "400", "--sample-every", "30000000",
            "--dump-on-alert", "--dump-dir", str(dump_dir))
        assert code == 0
        assert "dump:" in output
        paths = sorted(dump_dir.glob("*.dump.json"))
        assert paths
        assert load_bundle(paths[0])["reason"] == "alert"

    def test_inspect_bundle(self, tmp_path):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        path = write_bundle(bundle, tmp_path / "x.dump.json")
        code, output = run_cli("inspect", str(path))
        assert code == 0
        assert "gzip/safemem" in output
        code, output = run_cli("inspect", str(path), "--events",
                               "--kind", "watch")
        assert code == 0
        assert "watch" in output
        code, output = run_cli("inspect", str(path), "--metrics",
                               "--prefix", "machine.")
        assert code == 0
        assert "machine.load.slow" in output

    def test_inspect_metrics_and_stream(self, tmp_path):
        machine = Machine(dram_size=8 * 1024 * 1024)
        metrics_path = tmp_path / "m.json"
        write_metrics_json(metrics_path, machine.metrics.snapshot())
        code, output = run_cli("inspect", str(metrics_path))
        assert code == 0
        stream_path = tmp_path / "s.jsonl"
        stream_path.write_text(json.dumps(
            {"schema": "repro.events/v1", "type": "run", "cycle": 0,
             "run": {"marker": "start"}}) + "\n")
        code, output = run_cli("inspect", str(stream_path))
        assert code == 0
        assert "events stream" in output

    def test_replay_cli_verifies(self, tmp_path):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        path = write_bundle(bundle, tmp_path / "x.dump.json")
        code, output = run_cli("replay", str(path))
        assert code == 0
        assert "verify:    OK" in output
        code, output = run_cli(
            "replay", str(path), "--until-cycle",
            str(bundle["cycle"] // 2))
        assert code == 0
        assert "break:" in output
        assert "verify:    OK" in output

    def test_replay_cli_flags_divergence(self, tmp_path):
        result, run_info = _small_run()
        bundle = capture_bundle(result.machine, monitor=result.monitor,
                                run_info=run_info)
        bundle["events"]["tail"][-1]["cycle"] = 999_999_999_999
        path = write_bundle(bundle, tmp_path / "x.dump.json")
        code, output = run_cli("replay", str(path))
        assert code == 1
        assert "DIVERGED" in output

    def test_diff_cli(self, tmp_path):
        machine = Machine(dram_size=8 * 1024 * 1024)
        a = tmp_path / "a.json"
        write_metrics_json(a, machine.metrics.snapshot())
        machine.clock.tick(1000)
        machine.events.emit(EventKind.ALLOC, address=0x40, size=64)
        b = tmp_path / "b.json"
        write_metrics_json(b, machine.metrics.snapshot())
        code, output = run_cli("diff", str(a), str(b))
        assert code == 0
        assert "machine.events" in output

    def test_validate_parser_accepts_dump_dir(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["validate", "--dump-dir", "/tmp/d"])
        assert args.dump_dir == "/tmp/d"


# ----------------------------------------------------------------------
# the end-to-end acceptance loop
# ----------------------------------------------------------------------
class TestEndToEndForensics:
    def test_leak_alert_dump_inspect_replay(self, tmp_path):
        machine, monitor, recorder, result = _monitored_leak_run(
            tmp_path)

        # 1. the injected leak fired leak-suspect-growth and the
        #    recorder auto-wrote a repro.dump/v1 bundle.
        assert recorder.bundle_paths, "alert never fired"
        bundle = load_bundle(recorder.bundle_paths[0])
        assert bundle["schema"] == DUMP_SCHEMA
        assert bundle["reason"] == "alert"
        assert bundle["trigger"]["rule"] == "leak-suspect-growth"

        # 2. the bundle ALONE surfaces the leaking (size, call-stack)
        #    group: ypserv1 leaks 48-byte TCP connection structs.
        top = bundle["groups"][0]
        assert top["size"] == 48
        assert top["live_count"] > top["total_freed"]
        rendered = render_bundle_summary(bundle)
        assert "alerts fired: leak-suspect-growth" in rendered
        assert f"size {top['size']}" in rendered
        groups_view = render_bundle_groups(bundle)
        assert f"{top['call_signature']:#09x}" in groups_view

        # 3. deterministic replay up to the dump cycle reproduces the
        #    original event stream bit-identically (the monitoring
        #    stack is recreated from the bundle, so ALERT events line
        #    up too).
        replay = replay_bundle(bundle, until_cycle=bundle["cycle"])
        ok, message = verify_replay(bundle, replay)
        assert ok, message
        cutoff = min(replay.break_cycle, bundle["cycle"])
        original = [event_to_dict(e) for e in machine.events.query()
                    if e.cycle < cutoff]
        replayed = [event_to_dict(e) for e in replay.events
                    if e.cycle < cutoff]
        assert replayed == original
        # The firing ALERT event itself replays identically (it lands
        # at the dump cycle, so look at the whole replayed stream).
        assert any(e.kind is EventKind.ALERT
                   and e.detail.get("rule") == "leak-suspect-growth"
                   for e in replay.events)
