"""Differential testing: the same trace under every monitor.

A dynamic monitor must be *transparent*: identical program behaviour,
identical data, different only in time and in what gets reported.
Replaying one recorded trace under each monitor and diffing the
outcomes is the strongest transparency check we have.
"""

import pytest

from repro.baselines.pageprot import PageProtGuard
from repro.baselines.purify import Purify, PurifyConfig
from repro.core.config import full_config
from repro.core.safemem import SafeMem
from repro.machine.machine import Machine
from repro.machine.monitor import NullMonitor
from repro.machine.program import Program
from repro.workloads.traces import (
    GroupSpec,
    SyntheticTraceGenerator,
    TraceReplayer,
)


def build_trace(seed=21, events=1500):
    groups = [
        GroupSpec(site=0x11, size=64, mean_lifetime_events=5),
        GroupSpec(site=0x22, size=256, mean_lifetime_events=20),
        GroupSpec(site=0x33, size=1024, mean_lifetime_events=60,
                  residents=2, touch_period=10),
    ]
    generator = SyntheticTraceGenerator(groups=groups, events=events,
                                        compute_per_event=10_000,
                                        seed=seed)
    trace, leaked = generator.generate()
    assert not leaked  # transparency traces are leak-free
    return trace


def replay_under(monitor, trace, heap=16 * 1024 * 1024):
    machine = Machine(dram_size=64 * 1024 * 1024,
                      cache_size=2 * 1024 * 1024, cache_ways=16)
    program = Program(machine, monitor=monitor, heap_size=heap)
    replayer = TraceReplayer(trace)
    addresses = replayer.run(program)
    return machine, program, addresses, replayer


MONITORS = {
    "native": lambda: NullMonitor(),
    "safemem": lambda: SafeMem(full_config()),
    "purify": lambda: Purify(PurifyConfig(detect_uninit=False)),
    "pageprot": lambda: PageProtGuard(),
}


@pytest.fixture(scope="module")
def trace():
    return build_trace()


class TestTransparency:
    @pytest.mark.parametrize("name", sorted(MONITORS))
    def test_trace_replays_cleanly(self, trace, name):
        monitor = MONITORS[name]()
        machine, program, addresses, replayer = replay_under(
            monitor, trace,
            heap=64 * 1024 * 1024 if name == "pageprot"
            else 16 * 1024 * 1024,
        )
        assert replayer.skipped == 0
        # No monitor may report anything on a clean trace.
        for attribute in ("corruption_reports",):
            if hasattr(monitor, attribute):
                assert getattr(monitor, attribute) == [], name

    def test_allocation_counts_identical(self, trace):
        counts = {}
        for name, factory in MONITORS.items():
            _m, program, addresses, _r = replay_under(
                factory(), trace,
                heap=64 * 1024 * 1024 if name == "pageprot"
                else 16 * 1024 * 1024,
            )
            counts[name] = len(addresses)
        assert len(set(counts.values())) == 1, counts

    def test_surviving_object_contents_identical(self, trace):
        """Whatever the replayer last stored into each surviving object
        must read back identically under every monitor (addresses
        differ; contents must not)."""
        images = {}
        for name, factory in MONITORS.items():
            machine, _program, addresses, _r = replay_under(
                factory(), trace,
                heap=64 * 1024 * 1024 if name == "pageprot"
                else 16 * 1024 * 1024,
            )
            snapshot = []
            for obj in sorted(addresses):
                address = addresses[obj]
                snapshot.append(machine.read_virtual_raw(address, 32))
            images[name] = snapshot
        reference = images.pop("native")
        for name, snapshot in images.items():
            assert snapshot == reference, name

    def test_cycle_ordering_native_safemem_purify(self, trace):
        cycles = {}
        for name in ("native", "safemem", "purify"):
            machine, _p, _a, _r = replay_under(MONITORS[name](), trace)
            cycles[name] = machine.clock.cycles
        assert cycles["native"] < cycles["safemem"] < cycles["purify"]
